//! The drop-in BLIF flow: model a third-party netlist from a `.blif` file.
//!
//! Parses a BLIF model (pass a path as the first argument, or use the
//! built-in 4-bit carry-select demo), decomposes `.names` covers onto the
//! test gate library, back-annotates pin capacitances, builds both an
//! average-accurate and an upper-bound power model, and prints a short
//! power datasheet for the macro.
//!
//! ```text
//! cargo run --release --example blif_flow [-- path/to/circuit.blif]
//! ```

use charfree::netlist::{blif, Library};
use charfree::sim::{MarkovSource, ZeroDelaySim};
use charfree::{ApproxStrategy, ModelBuilder, PowerModel};

const DEMO_BLIF: &str = "\
# 4-bit ripple-carry adder, sum + carry out
.model add4
.inputs a0 a1 a2 a3 b0 b1 b2 b3 cin
.outputs s0 s1 s2 s3 cout
.names a0 b0 cin s0
100 1
010 1
001 1
111 1
.names a0 b0 cin c1
11- 1
1-1 1
-11 1
.names a1 b1 c1 s1
100 1
010 1
001 1
111 1
.names a1 b1 c1 c2
11- 1
1-1 1
-11 1
.names a2 b2 c2 s2
100 1
010 1
001 1
111 1
.names a2 b2 c2 c3
11- 1
1-1 1
-11 1
.names a3 b3 c3 s3
100 1
010 1
001 1
111 1
.names a3 b3 c3 cout
11- 1
1-1 1
-11 1
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO_BLIF.to_owned(),
    };
    let library = Library::test_library();
    let mut netlist = blif::parse(&text)?;
    netlist.annotate_loads(&library);
    println!(
        "parsed `{}`: {} inputs, {} outputs, {} mapped gates, depth {}",
        netlist.name(),
        netlist.num_inputs(),
        netlist.outputs().len(),
        netlist.num_gates(),
        netlist.depth()
    );
    println!("total load capacitance: {}", netlist.total_load());

    // Power datasheet: average model + conservative bound.
    let avg = ModelBuilder::new(&netlist).max_nodes(2000).build();
    let bound = ModelBuilder::new(&netlist)
        .max_nodes(2000)
        .strategy(ApproxStrategy::UpperBound)
        .build();
    println!("\npower models ({} / {} nodes):", avg.size(), bound.size());
    println!(
        "  average switched capacitance (all transitions): {:.1} fF",
        avg.average_capacitance().femtofarads()
    );
    println!(
        "  worst-case switched capacitance: {:.1} fF at {:?}",
        bound.max_capacitance().femtofarads(),
        bound.worst_case_transition()
    );

    // Spot-check on a random workload.
    let sim = ZeroDelaySim::new(&netlist);
    let mut source = MarkovSource::new(netlist.num_inputs(), 0.5, 0.3, 23)?;
    let patterns = source.sequence(1000);
    let golden = sim.switching_trace(&patterns);
    let mut model_sum = 0.0;
    let mut bound_ok = true;
    for t in 0..patterns.len() - 1 {
        model_sum += avg
            .capacitance(&patterns[t], &patterns[t + 1])
            .femtofarads();
        bound_ok &= bound
            .capacitance(&patterns[t], &patterns[t + 1])
            .femtofarads()
            >= golden[t].femtofarads() - 1e-9;
    }
    let golden_avg = golden.iter().map(|c| c.femtofarads()).sum::<f64>() / golden.len() as f64;
    println!("\nworkload spot check (1000 vectors, sp=0.5, st=0.3):");
    println!(
        "  golden average {:.1} fF, model average {:.1} fF ({:+.1}%)",
        golden_avg,
        model_sum / golden.len() as f64,
        (model_sum / golden.len() as f64 - golden_avg) / golden_avg * 100.0
    );
    println!("  bound conservative on every cycle: {bound_ok}");
    Ok(())
}
