//! RT-level power budgeting with composed pattern-dependent upper bounds
//! (the paper's Section 1.2 argument).
//!
//! Builds a small RTL datapath — an ALU, an operand comparator and an
//! address decoder sharing a 16-bit input bus — with a conservative
//! upper-bound model per macro, and contrasts three worst-case estimates
//! over a realistic workload:
//!
//! 1. the naive sum of per-macro worst cases (pattern-independent),
//! 2. the composed pattern-dependent upper bound per cycle,
//! 3. the true gate-level per-cycle energy.
//!
//! ```text
//! cargo run --release --example rtl_power_budget
//! ```

use charfree::netlist::units::Voltage;
use charfree::netlist::{benchmarks, Library};
use charfree::sim::{MarkovSource, ZeroDelaySim};
use charfree::{ApproxStrategy, ModelBuilder, RtlDesign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::test_library();
    let alu = benchmarks::alu2(&library); // 10 inputs
    let comp_unit = benchmarks::cm85(&library); // 11 inputs
    let dec = benchmarks::decod(&library); // 5 inputs

    // Conservative per-macro models.
    let bound = |netlist: &charfree::netlist::Netlist, max: usize| {
        ModelBuilder::new(netlist)
            .max_nodes(max)
            .strategy(ApproxStrategy::UpperBound)
            .build()
    };

    // A 16-bit bus: ALU reads bits 0..10, comparator bits 5..16, decoder
    // bits 11..16 — deliberately overlapping, as RTL operands do.
    let mut design = RtlDesign::new(16);
    design.add_instance("alu0", bound(&alu, 2000), (0..10).collect())?;
    design.add_instance("cmp0", bound(&comp_unit, 2000), (5..16).collect())?;
    design.add_instance("dec0", bound(&dec, 500), (11..16).collect())?;

    let worst_sum = design.worst_case_sum();
    println!(
        "datapath: {} macros on a 16-bit bus",
        design.instances().len()
    );
    println!("naive worst-case budget (sum of per-macro maxima): {worst_sum}");

    // A realistic bus workload: moderate activity.
    let mut source = MarkovSource::new(16, 0.5, 0.2, 11)?;
    let patterns = source.sequence(2_000);

    // Golden per-cycle energies, macro by macro.
    let sims = [
        (ZeroDelaySim::new(&alu), 0usize..10),
        (ZeroDelaySim::new(&comp_unit), 5..16),
        (ZeroDelaySim::new(&dec), 11..16),
    ];

    let vdd = Voltage::VDD_3V3;
    let mut peak_bound = 0.0f64;
    let mut peak_true = 0.0f64;
    let mut sum_bound = 0.0f64;
    let mut sum_true = 0.0f64;
    let mut violations = 0usize;
    for t in 0..patterns.len() - 1 {
        let (xi, xf) = (&patterns[t], &patterns[t + 1]);
        let b = design.capacitance(xi, xf).femtofarads();
        let truth: f64 = sims
            .iter()
            .map(|(sim, range)| {
                sim.switching_capacitance(&xi[range.clone()], &xf[range.clone()])
                    .femtofarads()
            })
            .sum();
        if b < truth - 1e-9 {
            violations += 1;
        }
        peak_bound = peak_bound.max(b);
        peak_true = peak_true.max(truth);
        sum_bound += b;
        sum_true += truth;
    }
    let cycles = (patterns.len() - 1) as f64;

    println!("\nover a 2000-cycle workload (sp = 0.5, st = 0.2):");
    println!("  true peak switched capacitance:           {peak_true:>9.1} fF");
    println!("  composed pattern-dependent bound (peak):  {peak_bound:>9.1} fF");
    println!(
        "  naive worst-case budget:                   {:>9.1} fF",
        worst_sum.femtofarads()
    );
    println!(
        "  -> the pattern-dependent budget is {:.1}x tighter than the naive one",
        worst_sum.femtofarads() / peak_bound
    );
    println!(
        "  average energy/cycle: true {:.1} fJ, bound {:.1} fJ (Vdd = {vdd})",
        sum_true / cycles * vdd.volts() * vdd.volts(),
        sum_bound / cycles * vdd.volts() * vdd.volts()
    );
    println!("  conservativeness violations: {violations} (must be 0)");
    assert_eq!(violations, 0, "upper bounds must never under-estimate");
    Ok(())
}
