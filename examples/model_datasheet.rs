//! IP-safe power datasheets: persist a model without the netlist.
//!
//! The paper's Section 2 argument: a direct representation of `C(xⁱ,xᶠ)`
//! can back-annotate a macro's functional view without exposing its
//! gate-level implementation. This example builds models for a macro,
//! saves them as `charfree-model v1` artifacts, reloads them *without any
//! netlist in scope*, and answers datasheet queries — average, worst case,
//! peak spectrum, "what can exceed X fF?" — from the artifact alone.
//!
//! ```text
//! cargo run --release --example model_datasheet
//! ```

use charfree::netlist::units::Capacitance;
use charfree::netlist::{benchmarks, Library};
use charfree::{AddPowerModel, ApproxStrategy, ModelBuilder, PowerModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- vendor side: the netlist is visible here only -----------------
    let artifact: Vec<u8> = {
        let library = Library::test_library();
        let macro_netlist = benchmarks::alu2(&library);
        let model = ModelBuilder::new(&macro_netlist).max_nodes(3000).build();
        println!(
            "vendor built `{}` power model: {} nodes, {:.2}s, exact: {}",
            macro_netlist.name(),
            model.size(),
            model.report().cpu.as_secs_f64(),
            model.report().exact
        );
        let mut buf = Vec::new();
        model.save(&mut buf)?;
        println!("artifact size: {} bytes (no netlist inside)\n", buf.len());
        buf
    };

    // ---- integrator side: only the artifact ----------------------------
    let model = AddPowerModel::load(artifact.as_slice())?;
    println!(
        "integrator loaded `{}` ({} inputs)",
        model.name(),
        model.num_inputs()
    );
    println!(
        "  average switched capacitance: {:.1} fF",
        model.average_capacitance().femtofarads()
    );
    println!(
        "  worst case: {:.1} fF",
        model.max_capacitance().femtofarads()
    );

    println!("\n  peak spectrum (top 5 levels):");
    for level in model.peak_spectrum(5) {
        println!(
            "    {:>7.1} fF  x{:<10} e.g. {:?} -> {:?}",
            level.capacitance.femtofarads(),
            level.count,
            level
                .witness
                .0
                .iter()
                .map(|&b| u8::from(b))
                .collect::<Vec<_>>(),
            level
                .witness
                .1
                .iter()
                .map(|&b| u8::from(b))
                .collect::<Vec<_>>()
        );
    }

    let threshold = Capacitance(model.max_capacitance().femtofarads() * 0.8);
    let (count, _) = model.transitions_above(threshold, 0);
    println!(
        "\n  transitions above 80% of peak ({threshold}): {count} of {} ({:.3}%)",
        4f64.powi(model.num_inputs() as i32),
        count / 4f64.powi(model.num_inputs() as i32) * 100.0
    );

    // The integrator can also derive smaller variants without the vendor.
    let compact = AddPowerModel::load(artifact.as_slice())?.shrink(200, ApproxStrategy::Average);
    println!(
        "\n  derived 200-node variant locally: {} nodes, avg {:.1} fF",
        compact.size(),
        compact.average_capacitance().femtofarads()
    );
    let xi = vec![false; model.num_inputs()];
    let xf = vec![true; model.num_inputs()];
    println!(
        "  spot transition: full model {:.1} fF, compact {:.1} fF",
        model.capacitance(&xi, &xf).femtofarads(),
        compact.capacitance(&xi, &xf).femtofarads()
    );
    Ok(())
}
