//! Out-of-sample accuracy: why characterization is fragile and the
//! analytical model is not (the paper's Section 1.1 / Fig. 7a story).
//!
//! Characterizes a constant (`Con`) and a linear (`Lin`) model at the
//! paper's standard operating point (`sp = st = 0.5`), builds a 500-node
//! analytical ADD model of the same macro, and sweeps the input transition
//! probability. `Con`/`Lin` are fine in-sample and explode out-of-sample;
//! the analytical model's accuracy barely moves.
//!
//! ```text
//! cargo run --release --example accuracy_sweep
//! ```

use charfree::netlist::Library;
use charfree::pipeline::{BuildOptions, PipelineCtx, Source};
use charfree::sim::ZeroDelaySim;
use charfree::{evaluate, fig7a_grid, ConstantModel, LinearModel, Protocol, TrainingSet};

fn main() {
    let mut ctx = PipelineCtx::new(Library::test_library()).with_options(BuildOptions {
        max_nodes: Some(500),
        ..BuildOptions::default()
    });
    let cm85 = ctx
        .load_netlist(&Source::Bench("cm85".to_owned()))
        .expect("built-in benchmark");
    let sim = ZeroDelaySim::new(&cm85);

    // Simulation-based characterization, exactly as the paper does for its
    // baselines: one random sequence at sp = st = 0.5.
    println!("characterizing Con and Lin at (sp, st) = (0.5, 0.5) ...");
    let training = TrainingSet::sample(&sim, 10_000, 42);
    let con = ConstantModel::fit(&training);
    let lin = LinearModel::fit(&training);
    println!(
        "  Con = {:.1} fF constant; Lin has {} coefficients",
        con.value().femtofarads(),
        lin.coefficients().len()
    );

    // The analytical model needs no simulation at all.
    let add = ctx.build_model(&cm85).expect("cm85 builds");
    println!(
        "  ADD model: {} nodes, built in {:.2}s — no characterization\n",
        add.size(),
        add.report().cpu.as_secs_f64()
    );

    let eval = evaluate(
        &[&con, &lin, &add],
        &sim,
        &fig7a_grid(),
        5_000,
        Protocol::AveragePower,
        7,
    );
    println!("relative error of average-power estimates vs st (sp = 0.5):");
    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>10}",
        "st", "golden (fF)", "Con RE%", "Lin RE%", "ADD RE%"
    );
    for p in &eval.points {
        println!(
            "{:>5.2} {:>12.2} {:>10.1} {:>10.1} {:>10.1}",
            p.st,
            p.reference,
            p.relative_errors[0] * 100.0,
            p.relative_errors[1] * 100.0,
            p.relative_errors[2] * 100.0
        );
    }
    println!(
        "\nARE: Con = {:.1}%, Lin = {:.1}%, ADD = {:.1}%",
        eval.are_percent(0).expect("model column"),
        eval.are_percent(1).expect("model column"),
        eval.are_percent(2).expect("model column")
    );
    println!("(the in-sample point st = 0.5 is where Con/Lin look deceptively good)");
}
