//! Quantifying the parasitic gap: what the zero-delay model cannot see.
//!
//! The paper deliberately models only the *structural* power of a
//! zero-delay golden model; glitches are classified as parasitic phenomena
//! (Section 2). This example measures that gap with the unit-delay
//! simulator: per benchmark circuit, how much switched capacitance is
//! attributable to spurious transitions on a random workload.
//!
//! ```text
//! cargo run --release --example glitch_gap
//! ```

use charfree::netlist::{benchmarks, Library};
use charfree::sim::{MarkovSource, UnitDelaySim, ZeroDelaySim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::test_library();
    println!(
        "{:8} {:>6} {:>6} | {:>14} {:>14} {:>9} {:>8}",
        "circuit", "n", "depth", "zero-delay fF", "unit-delay fF", "glitch %", "settle"
    );
    for netlist in [
        benchmarks::parity(&library),
        benchmarks::decod(&library),
        benchmarks::cm85(&library),
        benchmarks::mux(&library),
        benchmarks::cm150(&library),
        benchmarks::comp(&library),
        benchmarks::alu2(&library),
        benchmarks::mult(4, &library),
    ] {
        let zd = ZeroDelaySim::new(&netlist);
        let ud = UnitDelaySim::new(&netlist);
        let mut source = MarkovSource::new(netlist.num_inputs(), 0.5, 0.5, 5)?;
        let patterns = source.sequence(500);

        let mut zero_total = 0.0f64;
        let mut unit_total = 0.0f64;
        let mut max_settle = 0u32;
        for t in 0..patterns.len() - 1 {
            let z = zd.switching_capacitance(&patterns[t], &patterns[t + 1]);
            let report = ud.simulate_transition(&patterns[t], &patterns[t + 1]);
            zero_total += z.femtofarads();
            unit_total += report.switched.femtofarads();
            max_settle = max_settle.max(report.settle_time);
            assert!(report.switched >= z, "unit delay dominates zero delay");
        }
        println!(
            "{:8} {:>6} {:>6} | {:>14.0} {:>14.0} {:>8.1}% {:>8}",
            netlist.name(),
            netlist.num_inputs(),
            netlist.depth(),
            zero_total,
            unit_total,
            (unit_total - zero_total) / unit_total * 100.0,
            max_settle
        );
    }
    println!(
        "\nThe glitch fraction is the energy share the analytical model cannot\n\
         attribute — the paper's argument for characterizing only this (smooth)\n\
         residual if absolute accuracy is needed."
    );
    Ok(())
}
