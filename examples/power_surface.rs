//! The analytic power surface: average power as a *closed-form* function
//! of input statistics, straight from the model — no simulation.
//!
//! With `C(xⁱ,xᶠ)` as an ADD, the expected switched capacitance under any
//! `(sp, st)` operating point is one weighted diagram traversal
//! ([`AddPowerModel::expected_capacitance`]). This example prints the
//! surface for cm85 and spot-checks three points against 20 000-vector
//! Monte-Carlo simulation — the symbolic numbers land inside the sampling
//! noise.
//!
//! ```text
//! cargo run --release --example power_surface
//! ```

use charfree::netlist::{benchmarks, Library};
use charfree::sim::{MarkovSource, ZeroDelaySim};
use charfree::ModelBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = Library::test_library();
    let netlist = benchmarks::cm85(&library);
    let model = ModelBuilder::new(&netlist).build(); // exact

    let sps: [f64; 5] = [0.2, 0.35, 0.5, 0.65, 0.8];
    let sts = [0.1, 0.2, 0.3, 0.4];
    println!("analytic average switched capacitance (fF/cycle) for cm85:");
    print!("{:>6}", "sp\\st");
    for st in sts {
        print!("{st:>9.2}");
    }
    println!();
    for sp in sps {
        print!("{sp:>6.2}");
        for st in sts {
            if st <= 2.0 * sp.min(1.0 - sp) {
                print!("{:>9.2}", model.expected_capacitance(sp, st).femtofarads());
            } else {
                print!("{:>9}", "-");
            }
        }
        println!();
    }

    println!("\nMonte-Carlo spot checks (20000 vectors each):");
    let sim = ZeroDelaySim::new(&netlist);
    for (sp, st) in [(0.5, 0.1), (0.35, 0.3), (0.8, 0.2)] {
        let analytic = model.expected_capacitance(sp, st).femtofarads();
        let mut source = MarkovSource::new(netlist.num_inputs(), sp, st, 77)?;
        let patterns = source.sequence(20_000);
        let trace = sim.switching_trace(&patterns);
        let simulated = trace.iter().map(|c| c.femtofarads()).sum::<f64>() / trace.len() as f64;
        println!(
            "  (sp={sp}, st={st}): analytic {analytic:8.3} fF, simulated {simulated:8.3} fF ({:+.2}%)",
            (analytic - simulated) / simulated * 100.0
        );
    }
    println!("\nThe analytic numbers need no vectors at all — this is what the");
    println!("paper means by a model whose accuracy does not depend on input");
    println!("statistics: the statistics are an *argument*, not an assumption.");
    Ok(())
}
