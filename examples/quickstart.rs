//! Quickstart: the paper's running example (Figs. 2–5) end to end.
//!
//! Builds the 3-gate example unit, constructs the exact switching-
//! capacitance ADD, reproduces the Fig. 2b look-up table, and shows the two
//! approximation strategies (average-accurate and conservative upper
//! bound) degrading the model gracefully.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use charfree::netlist::benchmarks::paper_unit;
use charfree::sim::{ExhaustivePairs, ZeroDelaySim};
use charfree::{ApproxStrategy, ModelBuilder, PowerModel};

fn main() {
    let unit = paper_unit();
    println!(
        "Unit U (Fig. 2a): {} inputs, {} gates, total load {}",
        unit.num_inputs(),
        unit.num_gates(),
        unit.total_load()
    );

    // The exact analytical model — no simulation, no characterization.
    let model = ModelBuilder::new(&unit).build();
    println!(
        "exact ADD model: {} nodes ({})\n",
        model.size(),
        model.report()
    );

    // Fig. 2b: the full LUT of C(x^i, x^f), cross-checked against the
    // golden-model simulator.
    let sim = ZeroDelaySim::new(&unit);
    println!("Fig. 2b — switching-capacitance LUT (fF):");
    println!(
        "{:>6} {:>6} {:>8} {:>10}",
        "x^i", "x^f", "model", "gate-level"
    );
    for (xi, xf) in ExhaustivePairs::new(2) {
        let predicted = model.capacitance(&xi, &xf);
        let simulated = sim.switching_capacitance(&xi, &xf);
        assert_eq!(predicted, simulated, "exact model must match the simulator");
        println!(
            "{:>6} {:>6} {:>8.1} {:>10.1}",
            format!("{}{}", u8::from(xi[0]), u8::from(xi[1])),
            format!("{}{}", u8::from(xf[0]), u8::from(xf[1])),
            predicted.femtofarads(),
            simulated.femtofarads()
        );
    }

    println!(
        "\nExample 1: C(11 -> 00) = {} (paper: 90 fF)",
        model.capacitance(&[true, true], &[false, false])
    );
    println!(
        "symbolic average over all transitions: {:.2} fF",
        model.average_capacitance().femtofarads()
    );
    println!(
        "symbolic worst case: {} at transition {:?}",
        model.max_capacitance(),
        model.worst_case_transition()
    );

    // Accuracy/size trade-off: collapse the model to ever-smaller ADDs.
    println!("\naverage-strategy collapse (Fig. 4 flavor):");
    for budget in [7usize, 5, 3, 1] {
        let small = ModelBuilder::new(&unit)
            .build()
            .shrink(budget, ApproxStrategy::Average);
        println!(
            "  budget {:>2}: size {:>2}, avg {:>6.2} fF (exact avg preserved under the paper's plain config)",
            budget,
            small.size(),
            small.average_capacitance().femtofarads(),
        );
    }

    // Conservative collapse (Fig. 5 flavor): never under-estimates.
    println!("\nupper-bound collapse (Fig. 5 flavor):");
    let bound = ModelBuilder::new(&unit)
        .build()
        .shrink(5, ApproxStrategy::UpperBound);
    let mut worst_slack = 0.0f64;
    let mut true_max = 0.0f64;
    for (xi, xf) in ExhaustivePairs::new(2) {
        let b = bound.capacitance(&xi, &xf).femtofarads();
        let t = sim.switching_capacitance(&xi, &xf).femtofarads();
        assert!(b >= t - 1e-9, "bound must be conservative");
        worst_slack = worst_slack.max(b - t);
        true_max = true_max.max(t);
    }
    println!(
        "  5-node bound: global max {} (true max {true_max} fF), worst per-pattern slack {worst_slack:.1} fF",
        bound.max_capacitance(),
    );
}
