//! Workload-level integration: bursty traffic, trace analytics, Verilog
//! and library-spec flows through the full modeling pipeline.

use charfree::netlist::units::{Energy, Voltage};
use charfree::netlist::{benchmarks, libspec, verilog, Library};
use charfree::sim::{BurstSource, EnergyTrace, MarkovSource, ZeroDelaySim};
use charfree::{ApproxStrategy, ModelBuilder, PowerModel};

#[test]
fn bursty_workload_stresses_out_of_sample_accuracy() {
    // The analytical model has never seen any workload; on a bimodal
    // burst/idle source it must track the golden model closely even though
    // no single (sp, st) describes the traffic.
    let library = Library::test_library();
    let netlist = benchmarks::cm85(&library);
    let sim = ZeroDelaySim::new(&netlist);
    let model = ModelBuilder::new(&netlist).max_nodes(500).build();

    let mut source =
        BurstSource::new(11, (0.5, 0.04), (0.5, 0.7), 0.02, 0.08, 5).expect("feasible regimes");
    let patterns = source.sequence(6000);
    let golden = sim.switching_trace(&patterns);
    let golden_avg = golden.iter().map(|c| c.femtofarads()).sum::<f64>() / golden.len() as f64;
    let model_avg = (0..patterns.len() - 1)
        .map(|t| {
            model
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads()
        })
        .sum::<f64>()
        / (patterns.len() - 1) as f64;
    let re = (model_avg - golden_avg).abs() / golden_avg;
    assert!(
        re < 0.15,
        "bursty-workload RE should stay small, got {re:.3}"
    );
}

#[test]
fn upper_bound_dominates_on_bursts_too() {
    let library = Library::test_library();
    let netlist = benchmarks::decod(&library);
    let sim = ZeroDelaySim::new(&netlist);
    let bound = ModelBuilder::new(&netlist)
        .max_nodes(300)
        .strategy(ApproxStrategy::UpperBound)
        .build();
    let mut source = BurstSource::new(5, (0.5, 0.1), (0.5, 0.9), 0.05, 0.2, 9).expect("feasible");
    let patterns = source.sequence(3000);
    for t in 0..patterns.len() - 1 {
        let b = bound.capacitance(&patterns[t], &patterns[t + 1]);
        let truth = sim.switching_capacitance(&patterns[t], &patterns[t + 1]);
        assert!(b >= truth, "cycle {t}");
    }
}

#[test]
fn trace_analytics_agree_between_model_and_golden() {
    let library = Library::test_library();
    let netlist = benchmarks::parity(&library);
    let sim = ZeroDelaySim::new(&netlist);
    let model = ModelBuilder::new(&netlist).build(); // exact
    let mut source = MarkovSource::new(16, 0.5, 0.3, 3).expect("feasible");
    let patterns = source.sequence(2000);

    let golden_caps = sim.switching_trace(&patterns);
    let model_caps: Vec<_> = (0..patterns.len() - 1)
        .map(|t| model.capacitance(&patterns[t], &patterns[t + 1]))
        .collect();
    let vdd = Voltage::VDD_3V3;
    let golden = EnergyTrace::from_switched(&golden_caps, vdd, 10.0);
    let predicted = EnergyTrace::from_switched(&model_caps, vdd, 10.0);

    // Exact model => identical traces => identical analytics.
    assert_eq!(golden.total_energy(), predicted.total_energy());
    assert_eq!(
        golden.windowed_peak_energy(16),
        predicted.windowed_peak_energy(16)
    );
    assert_eq!(
        golden.duty_above(Energy(golden.average_energy().femtojoules())),
        predicted.duty_above(Energy(predicted.average_energy().femtojoules()))
    );
    let gh = golden.histogram(8);
    let ph = predicted.histogram(8);
    assert_eq!(gh.iter().map(|&(_, c)| c).sum::<usize>(), golden.len());
    assert_eq!(gh, ph);
}

#[test]
fn verilog_and_libspec_flow_end_to_end() {
    // Emit a benchmark as Verilog, re-parse it, annotate with a custom
    // library spec, and verify the model scales with the library.
    let default_library = Library::test_library();
    let netlist = benchmarks::decod(&default_library);
    let text = verilog::write(&netlist);
    let reparsed = verilog::parse(&text).expect("round-trips");

    let fat =
        libspec::parse("library fat\nwire 10.0\ncell inv 20.0\ncell and2 20.0\ncell and3 20.0\n")
            .expect("valid spec");
    let mut with_fat = reparsed.clone();
    with_fat.annotate_loads(&fat);
    let mut with_thin = reparsed;
    with_thin.annotate_loads(&default_library);

    let model_fat = ModelBuilder::new(&with_fat).build();
    let model_thin = ModelBuilder::new(&with_thin).build();
    assert!(
        model_fat.average_capacitance() > model_thin.average_capacitance(),
        "heavier library must raise modeled power"
    );
    // Both stay exact and consistent with their own golden model.
    let sim_fat = ZeroDelaySim::new(&with_fat);
    for trial in 0..32u32 {
        let xi: Vec<bool> = (0..5).map(|i| trial >> i & 1 == 1).collect();
        let xf: Vec<bool> = (0..5).map(|i| trial >> (4 - i) & 1 == 1).collect();
        assert_eq!(
            model_fat.capacitance(&xi, &xf),
            sim_fat.switching_capacitance(&xi, &xf)
        );
    }
}

#[test]
fn analytic_expectation_matches_monte_carlo_across_circuits() {
    // The symbolic expected capacitance under a (sp, st) measure must land
    // within sampling noise of a long Markov simulation — for any circuit
    // and any feasible operating point.
    let library = Library::test_library();
    for netlist in [
        benchmarks::decod(&library),
        benchmarks::parity(&library),
        benchmarks::cm150(&library),
    ] {
        let sim = ZeroDelaySim::new(&netlist);
        let model = ModelBuilder::new(&netlist).build(); // exact
        for (sp, st) in [(0.5, 0.3), (0.3, 0.25), (0.7, 0.15)] {
            let analytic = model.expected_capacitance(sp, st).femtofarads();
            let mut source = MarkovSource::new(netlist.num_inputs(), sp, st, 31).expect("feasible");
            let patterns = source.sequence(30_000);
            let trace = sim.switching_trace(&patterns);
            let simulated = trace.iter().map(|c| c.femtofarads()).sum::<f64>() / trace.len() as f64;
            let re = (analytic - simulated).abs() / simulated;
            assert!(
                re < 0.04,
                "{} at (sp={sp}, st={st}): analytic {analytic:.2} vs MC {simulated:.2} (re {re:.3})",
                netlist.name()
            );
        }
    }
}
