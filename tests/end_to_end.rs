//! End-to-end pipelines: BLIF → mapped netlist → power models → accuracy
//! evaluation → RTL composition, mirroring how a downstream user would
//! adopt the library.

use charfree::netlist::{benchmarks, blif, Library};
use charfree::sim::{statistics_grid, MarkovSource, ZeroDelaySim};
use charfree::{
    evaluate, ApproxStrategy, ConstantModel, LinearModel, ModelBuilder, PowerModel, Protocol,
    RtlDesign, TrainingSet,
};

const MAJ_BLIF: &str = "\
.model maj5
.inputs a b c d e
.outputs m
.names a b c d e m
111-- 1
11-1- 1
11--1 1
1-11- 1
1-1-1 1
1--11 1
-111- 1
-11-1 1
-1-11 1
--111 1
.end
";

#[test]
fn blif_to_power_model_pipeline() {
    let library = Library::test_library();
    let mut netlist = blif::parse(MAJ_BLIF).expect("valid blif");
    netlist.annotate_loads(&library);
    assert!(netlist.num_gates() > 5);

    let sim = ZeroDelaySim::new(&netlist);
    let model = ModelBuilder::new(&netlist).build();
    assert!(model.report().exact);

    // Every pair over 5 inputs.
    for (xi, xf) in charfree::sim::ExhaustivePairs::new(5) {
        assert_eq!(
            model.capacitance(&xi, &xf),
            sim.switching_capacitance(&xi, &xf)
        );
    }

    // Round-trip through the writer and re-model: same power behavior.
    let text = blif::write(&netlist);
    let mut back = blif::parse(&text).expect("round-trips");
    back.annotate_loads(&library);
    let sim2 = ZeroDelaySim::new(&back);
    for (xi, xf) in charfree::sim::ExhaustivePairs::new(5) {
        assert_eq!(
            sim.switching_capacitance(&xi, &xf),
            sim2.switching_capacitance(&xi, &xf)
        );
    }
}

#[test]
fn accuracy_ordering_matches_the_paper() {
    // The paper's headline (Table 1): ADD ≪ Lin < Con on out-of-sample ARE.
    let library = Library::test_library();
    let netlist = benchmarks::cm85(&library);
    let sim = ZeroDelaySim::new(&netlist);
    let training = TrainingSet::sample(&sim, 4000, 3);
    let con = ConstantModel::fit(&training);
    let lin = LinearModel::fit(&training);
    let add = ModelBuilder::new(&netlist).max_nodes(500).build();
    let eval = evaluate(
        &[&con, &lin, &add],
        &sim,
        &statistics_grid(),
        2000,
        Protocol::AveragePower,
        5,
    );
    let (con_are, lin_are, add_are) = (eval.are[0], eval.are[1], eval.are[2]);
    assert!(add_are < 0.10, "ADD ARE should be small, got {add_are}");
    assert!(
        lin_are > 2.0 * add_are,
        "Lin ({lin_are}) should be well above ADD ({add_are})"
    );
    assert!(con_are > lin_are, "Con ({con_are}) worst of all");
}

#[test]
fn upper_bound_protocol_is_conservative_on_runs() {
    let library = Library::test_library();
    let netlist = benchmarks::mux(&library);
    let sim = ZeroDelaySim::new(&netlist);
    let bound = ModelBuilder::new(&netlist)
        .max_nodes(2000)
        .strategy(ApproxStrategy::UpperBound)
        .build();
    let con_max = ConstantModel::from_capacitance(bound.max_capacitance(), "Con");
    let eval = evaluate(
        &[&con_max, &bound],
        &sim,
        &statistics_grid(),
        1500,
        Protocol::MaximumPower,
        6,
    );
    for p in &eval.points {
        assert!(p.estimates[0] >= p.reference - 1e-9, "constant bound");
        assert!(p.estimates[1] >= p.reference - 1e-9, "ADD bound");
        assert!(p.estimates[1] <= p.estimates[0] + 1e-9, "ADD ≤ its own max");
    }
    assert!(eval.are[1] <= eval.are[0] + 1e-12);
}

#[test]
fn rtl_composition_bounds_a_two_macro_design() {
    let library = Library::test_library();
    let dec = benchmarks::decod(&library);
    let par = benchmarks::parity(&library);

    let mut design = RtlDesign::new(21);
    design
        .add_instance(
            "dec",
            ModelBuilder::new(&dec)
                .max_nodes(400)
                .strategy(ApproxStrategy::UpperBound)
                .build(),
            (0..5).collect(),
        )
        .expect("ok");
    design
        .add_instance(
            "par",
            ModelBuilder::new(&par)
                .max_nodes(2000)
                .strategy(ApproxStrategy::UpperBound)
                .build(),
            (5..21).collect(),
        )
        .expect("ok");

    let dec_sim = ZeroDelaySim::new(&dec);
    let par_sim = ZeroDelaySim::new(&par);
    let mut source = MarkovSource::new(21, 0.5, 0.3, 8).expect("feasible");
    let patterns = source.sequence(500);
    let worst = design.worst_case_sum().femtofarads();
    let mut peak_bound = 0.0f64;
    for t in 0..patterns.len() - 1 {
        let (xi, xf) = (&patterns[t], &patterns[t + 1]);
        let b = design.capacitance(xi, xf).femtofarads();
        let truth = dec_sim
            .switching_capacitance(&xi[..5], &xf[..5])
            .femtofarads()
            + par_sim
                .switching_capacitance(&xi[5..], &xf[5..])
                .femtofarads();
        assert!(b >= truth - 1e-9, "composed bound must dominate");
        assert!(b <= worst + 1e-9, "and stay below the worst-case sum");
        peak_bound = peak_bound.max(b);
    }
    assert!(
        peak_bound < worst,
        "pattern dependence must buy something: {peak_bound} vs {worst}"
    );
}

#[test]
fn characterization_free_means_no_simulation_for_the_add_model() {
    // Build models for every Table 1 circuit except the two largest; no
    // TrainingSet / simulator is ever constructed on this path.
    let library = Library::test_library();
    for name in [
        "cmb", "cm150", "cm85", "decod", "mux", "parity", "pcle", "x2",
    ] {
        let netlist = benchmarks::by_name(name, &library).expect("known");
        let model = ModelBuilder::new(&netlist).max_nodes(500).build();
        assert!(model.size() <= 500, "{name}");
        assert!(model.average_capacitance().femtofarads() > 0.0, "{name}");
        assert!(model.max_capacitance() <= netlist.total_load(), "{name}");
    }
}
