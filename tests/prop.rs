//! Workspace-level property tests: random circuits through the whole
//! pipeline, with the paper's invariants checked on every sample.

use charfree::netlist::{benchmarks, Library};
use charfree::sim::{ExhaustivePairs, MarkovSource, ZeroDelaySim};
use charfree::{ApproxStrategy, ModelBuilder, PowerModel};
use proptest::prelude::*;

fn random_circuit(inputs: usize, gates: usize, seed: u64) -> charfree::netlist::Netlist {
    let library = Library::test_library();
    benchmarks::random_logic("prop", inputs, gates, seed, &library)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact model ≡ golden simulation on random circuits (exhaustive for
    /// ≤ 7 inputs).
    #[test]
    fn exact_model_equals_simulation(
        inputs in 3usize..8,
        gates in 5usize..30,
        seed in 0u64..1000,
    ) {
        let netlist = random_circuit(inputs, gates, seed);
        let sim = ZeroDelaySim::new(&netlist);
        let model = ModelBuilder::new(&netlist).build();
        prop_assert!(model.report().exact);
        for (xi, xf) in ExhaustivePairs::new(inputs as u32) {
            prop_assert_eq!(
                model.capacitance(&xi, &xf),
                sim.switching_capacitance(&xi, &xf)
            );
        }
    }

    /// Upper-bound models dominate the golden model everywhere, at any
    /// budget, and their symbolic max dominates the true max.
    #[test]
    fn bounded_upper_bound_is_sound(
        inputs in 3usize..7,
        gates in 5usize..25,
        seed in 0u64..1000,
        budget in 5usize..80,
    ) {
        let netlist = random_circuit(inputs, gates, seed);
        let sim = ZeroDelaySim::new(&netlist);
        let bound = ModelBuilder::new(&netlist)
            .max_nodes(budget)
            .strategy(ApproxStrategy::UpperBound)
            .build();
        prop_assert!(bound.size() <= budget);
        let mut true_max = 0.0f64;
        for (xi, xf) in ExhaustivePairs::new(inputs as u32) {
            let b = bound.capacitance(&xi, &xf).femtofarads();
            let t = sim.switching_capacitance(&xi, &xf).femtofarads();
            prop_assert!(b >= t - 1e-9, "bound {b} < truth {t}");
            true_max = true_max.max(t);
        }
        prop_assert!(bound.max_capacitance().femtofarads() >= true_max - 1e-9);
    }

    /// The paper-plain configuration preserves the global average exactly
    /// through any amount of collapsing (Section 3.1).
    #[test]
    fn plain_average_collapse_preserves_global_average(
        inputs in 3usize..7,
        gates in 5usize..25,
        seed in 0u64..1000,
        budget in 4usize..60,
    ) {
        let netlist = random_circuit(inputs, gates, seed);
        let exact = ModelBuilder::new(&netlist).build();
        let rough = ModelBuilder::new(&netlist)
            .max_nodes(budget)
            .collapse_toggles(&[0.5])
            .leaf_recalibration(false)
            .diagonal_gating(false)
            .build();
        // Exact up to the builder's terminal-quantization grid.
        let tolerance = netlist.total_load().femtofarads() / 8192.0;
        prop_assert!(
            (exact.average_capacitance().femtofarads()
                - rough.average_capacitance().femtofarads())
            .abs() < tolerance
        );
    }

    /// Bounded average models stay within physical limits and zero the
    /// diagonal whenever the gating budget allows it.
    #[test]
    fn bounded_average_model_is_physical(
        inputs in 3usize..7,
        gates in 5usize..25,
        seed in 0u64..1000,
        budget in 30usize..120,
    ) {
        let netlist = random_circuit(inputs, gates, seed);
        let model = ModelBuilder::new(&netlist).max_nodes(budget).build();
        let total = netlist.total_load().femtofarads();
        for (xi, xf) in ExhaustivePairs::new(inputs as u32) {
            let c = model.capacitance(&xi, &xf).femtofarads();
            prop_assert!(c >= 0.0);
            prop_assert!(c <= total + 1e-9);
        }
        if budget >= 4 * inputs + 8 && !model.report().exact {
            let xi: Vec<bool> = (0..inputs).map(|i| i % 2 == 0).collect();
            prop_assert_eq!(model.capacitance(&xi, &xi).femtofarads(), 0.0);
        }
    }

    /// Markov sources respect requested statistics for arbitrary feasible
    /// targets.
    #[test]
    fn markov_statistics_hit_targets(
        sp in 0.15f64..0.85,
        st_frac in 0.1f64..0.95,
        seed in 0u64..1000,
    ) {
        let st = st_frac * 2.0 * sp.min(1.0 - sp);
        prop_assume!(st > 0.01);
        let mut source = MarkovSource::new(24, sp, st, seed).expect("feasible");
        let seq = source.sequence(8000);
        let (msp, mst) = charfree::sim::measure_statistics(&seq);
        prop_assert!((msp - sp).abs() < 0.04, "sp {sp} measured {msp}");
        prop_assert!((mst - st).abs() < 0.04, "st {st} measured {mst}");
    }

    /// The simulator's word-parallel trace equals pairwise evaluation on
    /// random circuits and workloads.
    #[test]
    fn trace_equals_pairwise(
        inputs in 3usize..9,
        gates in 5usize..40,
        seed in 0u64..1000,
        len in 2usize..200,
    ) {
        let netlist = random_circuit(inputs, gates, seed);
        let sim = ZeroDelaySim::new(&netlist);
        let mut source = MarkovSource::new(inputs, 0.5, 0.4, seed).expect("feasible");
        let patterns = source.sequence(len);
        let trace = sim.switching_trace(&patterns);
        for t in 0..len - 1 {
            prop_assert_eq!(
                trace[t],
                sim.switching_capacitance(&patterns[t], &patterns[t + 1])
            );
        }
    }
}
