//! Cross-crate integration: analytical models against the golden-model
//! simulator, exhaustively where feasible.

use charfree::netlist::{benchmarks, testutil, Library, Netlist};
use charfree::sim::{ExhaustivePairs, ZeroDelaySim};
use charfree::{ApproxStrategy, InputOrder, ModelBuilder, PowerModel, VariableOrdering};

fn exhaustive_equal(netlist: &Netlist) {
    let sim = ZeroDelaySim::new(netlist);
    let model = ModelBuilder::new(netlist).build();
    assert!(
        model.report().exact,
        "{} must build exactly",
        netlist.name()
    );
    for (xi, xf) in ExhaustivePairs::new(netlist.num_inputs() as u32) {
        assert_eq!(
            model.capacitance(&xi, &xf),
            sim.switching_capacitance(&xi, &xf),
            "{}: xi={xi:?} xf={xf:?}",
            netlist.name()
        );
    }
}

#[test]
fn exact_models_equal_gate_level_simulation_exhaustively() {
    let library = Library::test_library();
    exhaustive_equal(&benchmarks::paper_unit());
    exhaustive_equal(&benchmarks::decod(&library)); // 5 inputs, 4^5 pairs
    exhaustive_equal(&benchmarks::mult(3, &library)); // 6 inputs
    exhaustive_equal(&benchmarks::x2(&library)); // 10 inputs, ~1M pairs
}

#[test]
fn exact_model_is_order_invariant() {
    let library = Library::test_library();
    let netlist = benchmarks::decod(&library);
    let sim = ZeroDelaySim::new(&netlist);
    for (ordering, input_order) in [
        (VariableOrdering::Interleaved, InputOrder::FaninDfs),
        (VariableOrdering::Interleaved, InputOrder::Natural),
        (VariableOrdering::Grouped, InputOrder::FaninDfs),
        (VariableOrdering::Grouped, InputOrder::Natural),
    ] {
        let model = ModelBuilder::new(&netlist)
            .ordering(ordering)
            .input_order(input_order.clone())
            .build();
        for (xi, xf) in ExhaustivePairs::new(5) {
            assert_eq!(
                model.capacitance(&xi, &xf),
                sim.switching_capacitance(&xi, &xf),
                "{ordering:?}/{input_order:?}"
            );
        }
    }
}

#[test]
fn custom_input_order_round_trips() {
    let library = Library::test_library();
    let netlist = benchmarks::decod(&library);
    let sim = ZeroDelaySim::new(&netlist);
    let model = ModelBuilder::new(&netlist)
        .input_order(InputOrder::Custom(vec![4, 3, 2, 1, 0]))
        .build();
    for (xi, xf) in ExhaustivePairs::new(5) {
        assert_eq!(
            model.capacitance(&xi, &xf),
            sim.switching_capacitance(&xi, &xf)
        );
    }
}

#[test]
fn bounded_upper_bounds_are_sound_exhaustively() {
    let library = Library::test_library();
    for netlist in [benchmarks::decod(&library), benchmarks::mult(3, &library)] {
        let sim = ZeroDelaySim::new(&netlist);
        for max in [8usize, 40, 120] {
            let bound = ModelBuilder::new(&netlist)
                .max_nodes(max)
                .strategy(ApproxStrategy::UpperBound)
                .build();
            assert!(bound.size() <= max);
            for (xi, xf) in ExhaustivePairs::new(netlist.num_inputs() as u32) {
                let b = bound.capacitance(&xi, &xf).femtofarads();
                let t = sim.switching_capacitance(&xi, &xf).femtofarads();
                assert!(
                    b >= t - 1e-9,
                    "{} MAX={max}: bound {b} < truth {t} at xi={xi:?} xf={xf:?}",
                    netlist.name()
                );
            }
        }
    }
}

#[test]
fn average_models_never_negative() {
    // Recalibration clamps at zero; check across an exhaustive space.
    let library = Library::test_library();
    let netlist = benchmarks::decod(&library);
    for max in [30usize, 100] {
        let model = ModelBuilder::new(&netlist).max_nodes(max).build();
        for (xi, xf) in ExhaustivePairs::new(5) {
            assert!(model.capacitance(&xi, &xf).femtofarads() >= 0.0);
        }
    }
}

#[test]
fn diagonal_is_exactly_zero_after_gating() {
    let library = Library::test_library();
    let netlist = benchmarks::cm85(&library);
    let model = ModelBuilder::new(&netlist).max_nodes(300).build();
    // Any xi = xf transition must read exactly 0.
    for seed in 0..64u32 {
        let xi: Vec<bool> = (0..11).map(|b| seed >> (b % 6) & 1 == 1).collect();
        assert_eq!(model.capacitance(&xi, &xi).femtofarads(), 0.0);
    }
}

#[test]
fn shrink_families_are_monotone_in_size() {
    let library = Library::test_library();
    let netlist = benchmarks::decod(&library);
    let mother = ModelBuilder::new(&netlist).build();
    let mut last = usize::MAX;
    for budget in [200usize, 60, 20, 8] {
        let child = ModelBuilder::new(&netlist)
            .build()
            .shrink(budget, ApproxStrategy::Average);
        assert!(child.size() <= budget.min(last));
        last = child.size();
    }
    assert!(mother.size() >= last);
}

#[test]
fn worst_case_transition_is_simulatable() {
    let library = Library::test_library();
    for netlist in [benchmarks::decod(&library), benchmarks::parity(&library)] {
        let model = ModelBuilder::new(&netlist).build();
        let sim = ZeroDelaySim::new(&netlist);
        let (xi, xf) = model.worst_case_transition();
        assert_eq!(
            sim.switching_capacitance(&xi, &xf),
            model.max_capacitance(),
            "{}",
            netlist.name()
        );
    }
}

#[test]
fn hand_built_netlist_full_flow() {
    // The shared hand-built fixture exercises every structural API
    // (multi-fanout, a complex cell, load annotation, validation).
    let library = Library::test_library();
    let n = testutil::hand_unit(&library);

    let sim = ZeroDelaySim::new(&n);
    let model = ModelBuilder::new(&n).build();
    for (xi, xf) in ExhaustivePairs::new(3) {
        assert_eq!(
            model.capacitance(&xi, &xf),
            sim.switching_capacitance(&xi, &xf)
        );
    }
}
