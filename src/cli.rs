//! The `charfree` command-line interface.
//!
//! Thin, dependency-free argument handling around the library: every
//! subcommand is a pure function from parsed options to a printable
//! report, so the whole CLI is unit-testable without spawning processes.
//!
//! ```text
//! charfree model <netlist.{blif,v}> [-o M.cfm] [--kernel] [--max N]
//!                [--upper-bound] [--library L.lib] [--paper-plain]
//!                [--node-budget N] [--time-budget SECS] [--strict]
//! charfree eval <M.{cfm,cfk}> [--vectors N] [--sp P] [--st P] [--vdd V]
//!                [--period NS] [--seed S] [--jobs N]
//! charfree datasheet <M.cfm> [--top K]
//! charfree sim <netlist.{blif,v}> [--vectors N] [--sp P] [--st P]
//!                [--library L.lib] [--seed S]
//! charfree bench <name> [--format blif|verilog]
//! charfree throughput <bench|netlist|M.cfm> [--vectors N] [--jobs N]
//!                [--max N] [-o BENCH_engine.json]
//! ```
//!
//! The trace-shaped subcommands (`eval`, `trace`, `throughput`) compile
//! the model's decision diagram into a flat `charfree-engine` kernel and
//! evaluate transitions in packed batches across `--jobs` workers; the
//! arena-backed model remains the reference oracle (`throughput`
//! cross-checks the two on every run). `eval`, `trace` and `expected`
//! also accept a compiled `.cfk` kernel (written by `model --kernel`)
//! directly — no diagram arena is built at all in that case.

use charfree_core::{AddPowerModel, ApproxStrategy, ModelBuilder, PowerModel};
use charfree_engine::{throughput, Kernel, TraceEngine};
use charfree_netlist::units::Voltage;
use charfree_netlist::{benchmarks, blif, libspec, verilog, Library, Netlist};
use charfree_sim::{MarkovSource, ZeroDelaySim};
use std::fmt::Write as _;
use std::fs;

/// A CLI failure, printed to stderr with exit code 1.
pub type CliError = String;

/// Entry point: runs the subcommand in `args` (without the program name)
/// and returns the report to print.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, I/O
/// failures and malformed inputs.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| usage("missing subcommand"))?;
    match command.as_str() {
        "model" => cmd_model(rest),
        "eval" => cmd_eval(rest),
        "datasheet" => cmd_datasheet(rest),
        "expected" => cmd_expected(rest),
        "trace" => cmd_trace(rest),
        "sim" => cmd_sim(rest),
        "bench" => cmd_bench(rest),
        "throughput" => cmd_throughput(rest),
        "--help" | "-h" | "help" => Ok(usage("")),
        other => Err(usage(&format!("unknown subcommand `{other}`"))),
    }
}

fn usage(prefix: &str) -> String {
    let mut out = String::new();
    if !prefix.is_empty() {
        let _ = writeln!(out, "error: {prefix}\n");
    }
    out.push_str(
        "charfree — characterization-free behavioral power modeling\n\
         \n\
         usage:\n\
         \x20 charfree model <netlist.{blif,v}> [-o M.cfm] [--kernel] [--max N]\n\
         \x20                [--upper-bound] [--library L.lib] [--paper-plain]\n\
         \x20                [--node-budget N] [--time-budget SECS] [--strict]\n\
         \x20 charfree eval <M.{cfm,cfk}> [--vectors N] [--sp P] [--st P] [--vdd V]\n\
         \x20                [--period NS] [--seed S] [--jobs N]\n\
         \x20 charfree datasheet <M.cfm> [--top K]\n\
         \x20 charfree expected <M.{cfm,cfk}> [--sp P] [--st P]\n\
         \x20 charfree trace <M.{cfm,cfk}> [--vectors N] [--sp P] [--st P] [--vdd V]\n\
         \x20                [--period NS] [--seed S] [--jobs N] [-o out.csv]\n\
         \x20 charfree sim <netlist.{blif,v}> [--vectors N] [--sp P] [--st P]\n\
         \x20                [--library L.lib] [--seed S]\n\
         \x20 charfree bench <name> [--format blif|verilog]\n\
         \x20 charfree throughput <bench|netlist|M.cfm> [--vectors N] [--jobs N]\n\
         \x20                [--max N] [--sp P] [--st P] [--seed S]\n\
         \x20                [--library L.lib] [-o BENCH_engine.json]\n\
         \n\
         `--jobs 0` (the default) uses one worker per available core;\n\
         results are bit-identical for every worker count.\n",
    );
    out
}

/// Minimal flag cursor over the argument list.
struct Flags<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags {
            args,
            used: vec![false; args.len()],
        }
    }

    /// The first unused non-flag argument (the positional operand).
    fn positional(&mut self) -> Result<&'a str, CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && !a.starts_with('-') {
                self.used[i] = true;
                return Ok(a);
            }
        }
        Err("missing required operand".to_owned())
    }

    fn flag(&mut self, name: &str) -> bool {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                let v = self
                    .args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag `{name}` needs a value"))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value `{v}` for `{name}`")),
        }
    }

    fn finish(self) -> Result<(), CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(())
    }
}

fn load_library(flags: &mut Flags<'_>) -> Result<Library, CliError> {
    match flags.value("--library")? {
        None => Ok(Library::test_library()),
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            libspec::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn load_netlist(path: &str, library: &Library) -> Result<Netlist, CliError> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut netlist = if path.ends_with(".v") || path.ends_with(".sv") {
        verilog::parse(&text).map_err(|e| format!("{path}: {e}"))?
    } else {
        blif::parse(&text).map_err(|e| format!("{path}: {e}"))?
    };
    netlist.annotate_loads(library);
    Ok(netlist)
}

fn load_model(path: &str) -> Result<AddPowerModel, CliError> {
    let text = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    AddPowerModel::load(text.as_slice()).map_err(|e| format!("{path}: {e}"))
}

/// An evaluation kernel from either artifact kind: a compiled `.cfk`
/// kernel is loaded directly (no arena is ever built); anything else is
/// treated as a `.cfm` model and compiled on the fly.
fn load_kernel_input(path: &str) -> Result<Kernel, CliError> {
    if path.ends_with(".cfk") {
        let text = fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        Kernel::load(text.as_slice()).map_err(|e| format!("{path}: {e}"))
    } else {
        Ok(Kernel::compile(&load_model(path)?))
    }
}

fn cmd_model(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let library = load_library(&mut flags)?;
    let netlist_path = flags.positional()?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    let max: usize = flags.parse("--max", 0)?;
    let node_budget: u64 = flags.parse("--node-budget", 0)?;
    let time_budget: f64 = flags.parse("--time-budget", 0.0)?;
    let strict = flags.flag("--strict");
    let upper_bound = flags.flag("--upper-bound");
    let paper_plain = flags.flag("--paper-plain");
    let emit_kernel = flags.flag("--kernel");
    flags.finish()?;
    if emit_kernel && out_path.is_none() {
        return Err("`--kernel` needs `-o` (the kernel is written next to the model)".to_owned());
    }
    if time_budget < 0.0 || !time_budget.is_finite() {
        return Err(format!("bad value `{time_budget}` for `--time-budget`"));
    }

    let netlist = load_netlist(netlist_path, &library)?;
    let mut builder = ModelBuilder::new(&netlist);
    if max > 0 {
        builder = builder.max_nodes(max);
    }
    if node_budget > 0 {
        builder = builder.node_budget(node_budget);
    }
    if time_budget > 0.0 {
        builder = builder.time_budget(std::time::Duration::from_secs_f64(time_budget));
    }
    builder = builder.strict(strict);
    if upper_bound {
        builder = builder.strategy(ApproxStrategy::UpperBound);
    }
    if paper_plain {
        builder = builder
            .collapse_toggles(&[0.5])
            .leaf_recalibration(false)
            .diagonal_gating(false);
    }
    let mut model = builder.try_build().map_err(|e| e.to_string())?;
    model.set_name(netlist.name());

    let mut report = String::new();
    let _ = writeln!(
        report,
        "built power model for `{}`: n={} N={} -> {} nodes in {:.2}s{}",
        netlist.name(),
        netlist.num_inputs(),
        netlist.num_gates(),
        model.size(),
        model.report().cpu.as_secs_f64(),
        if model.report().exact { " (exact)" } else { "" }
    );
    let _ = writeln!(
        report,
        "avg {:.2} fF, max {:.2} fF",
        model.average_capacitance().femtofarads(),
        model.max_capacitance().femtofarads()
    );
    if let Some(degradation) = model.degradation() {
        let _ = writeln!(report, "warning: {degradation}");
    }
    match out_path {
        Some(path) => {
            let mut buf = Vec::new();
            model.save(&mut buf).map_err(|e| e.to_string())?;
            fs::write(&path, buf).map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(report, "wrote {path}");
            if emit_kernel {
                let kpath = std::path::Path::new(&path)
                    .with_extension("cfk")
                    .to_string_lossy()
                    .into_owned();
                let kernel = Kernel::compile(&model);
                let mut buf = Vec::new();
                kernel.save(&mut buf).map_err(|e| e.to_string())?;
                fs::write(&kpath, buf).map_err(|e| format!("{kpath}: {e}"))?;
                let _ = writeln!(
                    report,
                    "wrote kernel {kpath} ({} instrs, {} terminals, {} bytes)",
                    kernel.num_instrs(),
                    kernel.num_terminals(),
                    kernel.bytes()
                );
            }
        }
        None => {
            let _ = writeln!(report, "(no -o given; model not persisted)");
        }
    }
    Ok(report)
}

fn cmd_eval(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let model_path = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 10_000)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let vdd: f64 = flags.parse("--vdd", 3.3)?;
    let period: f64 = flags.parse("--period", 10.0)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let jobs: usize = flags.parse("--jobs", 0)?;
    flags.finish()?;

    let kernel = load_kernel_input(model_path)?;
    let mut source = MarkovSource::new(kernel.num_inputs(), sp, st, seed)
        .map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let vdd = Voltage(vdd);
    // Compiled-kernel fast path: batch-evaluate the switched capacitance
    // of the whole stream, then scale by Vdd² (energy is monotone in C,
    // so the summary's max is the energy peak too).
    let summary = TraceEngine::new(&kernel).jobs(jobs).evaluate(&patterns);
    let sum = vdd.volts() * vdd.volts() * summary.sum_ff;
    let peak = (vdd.volts() * vdd.volts() * summary.max_ff).max(0.0);
    let cycles = summary.transitions as f64;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "model `{}` on {} vectors (sp={sp}, st={st}, Vdd={} V, T={period} ns):",
        kernel.name(),
        patterns.len(),
        vdd.volts()
    );
    let _ = writeln!(report, "  average energy/cycle: {:.2} fJ", sum / cycles);
    let _ = writeln!(report, "  average power:        {:.3} uW", sum / cycles / period);
    let _ = writeln!(report, "  peak energy/cycle:    {peak:.2} fJ");
    let _ = writeln!(report, "  peak power:           {:.3} uW", peak / period);
    Ok(report)
}

fn cmd_datasheet(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let model_path = flags.positional()?;
    let top: usize = flags.parse("--top", 5)?;
    flags.finish()?;

    let model = load_model(model_path)?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "power datasheet for `{}` ({} inputs, {} nodes{})",
        model.name(),
        model.num_inputs(),
        model.size(),
        if model.report().exact { ", exact" } else { "" }
    );
    let _ = writeln!(
        report,
        "  average switched capacitance: {:.2} fF",
        model.average_capacitance().femtofarads()
    );
    let _ = writeln!(
        report,
        "  worst-case switched capacitance: {:.2} fF",
        model.max_capacitance().femtofarads()
    );
    let _ = writeln!(report, "  top {top} capacitance levels:");
    for level in model.peak_spectrum(top) {
        let fmt_bits = |bits: &[bool]| -> String {
            bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
        };
        let _ = writeln!(
            report,
            "    {:>9.2} fF  x{:<12} {} -> {}",
            level.capacitance.femtofarads(),
            level.count,
            fmt_bits(&level.witness.0),
            fmt_bits(&level.witness.1)
        );
    }
    Ok(report)
}

fn cmd_expected(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let model_path = flags.positional()?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    flags.finish()?;
    // The flat kernel evaluates the expectation without touching the
    // manager arena; grouped-ordering models (whose pair correlation is
    // not chain-expressible on the kernel) fall back to the arena path,
    // which needs the `.cfm` artifact.
    let kernel = load_kernel_input(model_path)?;
    let c = if kernel.is_interleaved() {
        kernel.expected_capacitance(sp, st)
    } else if model_path.ends_with(".cfk") {
        return Err(
            "grouped-ordering kernels cannot evaluate expectations; \
             pass the `.cfm` model instead"
                .to_owned(),
        );
    } else {
        load_model(model_path)?.expected_capacitance(sp, st).femtofarads()
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "analytic expected switched capacitance of `{}` at (sp={sp}, st={st}): {:.3} fF/cycle",
        kernel.name(),
        c
    );
    let _ = writeln!(report, "(symbolic — no simulation vectors involved)");
    Ok(report)
}

fn cmd_trace(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let model_path = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 1000)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let vdd: f64 = flags.parse("--vdd", 3.3)?;
    let period: f64 = flags.parse("--period", 10.0)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let jobs: usize = flags.parse("--jobs", 0)?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    flags.finish()?;

    let kernel = load_kernel_input(model_path)?;
    let mut source = MarkovSource::new(kernel.num_inputs(), sp, st, seed)
        .map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let caps: Vec<_> = TraceEngine::new(&kernel)
        .jobs(jobs)
        .trace(&patterns)
        .into_iter()
        .map(charfree_netlist::units::Capacitance)
        .collect();
    let trace = charfree_sim::EnergyTrace::from_switched(&caps, Voltage(vdd), period);

    let mut csv = Vec::new();
    trace.write_csv(&mut csv).map_err(|e| e.to_string())?;
    match out_path {
        Some(path) => {
            fs::write(&path, csv).map_err(|e| format!("{path}: {e}"))?;
            let mut report = String::new();
            let _ = writeln!(
                report,
                "wrote {} cycles to {path} (avg {:.3} uW, windowed-16 peak {:.2} fJ)",
                trace.len(),
                trace.average_power().microwatts(),
                trace.windowed_peak_energy(16).femtojoules()
            );
            Ok(report)
        }
        None => Ok(String::from_utf8(csv).map_err(|e| e.to_string())?),
    }
}

fn cmd_sim(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let library = load_library(&mut flags)?;
    let netlist_path = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 10_000)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    flags.finish()?;

    let netlist = load_netlist(netlist_path, &library)?;
    let sim = ZeroDelaySim::new(&netlist);
    let mut source =
        MarkovSource::new(netlist.num_inputs(), sp, st, seed).map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let trace = sim.switching_trace(&patterns);
    let avg = trace.iter().map(|c| c.femtofarads()).sum::<f64>() / trace.len() as f64;
    let peak = trace
        .iter()
        .map(|c| c.femtofarads())
        .fold(f64::NEG_INFINITY, f64::max);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "gate-level simulation of `{}`: {} vectors (sp={sp}, st={st})",
        netlist.name(),
        patterns.len()
    );
    let _ = writeln!(report, "  average switched capacitance: {avg:.2} fF/cycle");
    let _ = writeln!(report, "  peak switched capacitance:    {peak:.2} fF");
    Ok(report)
}

fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let name = flags.positional()?;
    let format = flags.value("--format")?.unwrap_or("blif").to_owned();
    flags.finish()?;

    let library = Library::test_library();
    let netlist = benchmarks::by_name(name, &library)
        .ok_or_else(|| format!("unknown benchmark `{name}` (see DESIGN.md §4 for the set)"))?;
    match format.as_str() {
        "blif" => Ok(blif::write(&netlist)),
        "verilog" | "v" => Ok(verilog::write(&netlist)),
        other => Err(format!("unknown format `{other}` (blif|verilog)")),
    }
}

fn cmd_throughput(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let library = load_library(&mut flags)?;
    let target = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 20_000)?;
    let jobs: usize = flags.parse("--jobs", 0)?;
    let max: usize = flags.parse("--max", 0)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    flags.finish()?;

    // The operand is a saved model, a netlist file, or a benchmark name.
    let model = if target.ends_with(".cfm") {
        load_model(target)?
    } else {
        let netlist = if std::path::Path::new(target).exists() {
            load_netlist(target, &library)?
        } else {
            benchmarks::by_name(target, &library).ok_or_else(|| {
                format!("`{target}` is neither a file nor a known benchmark")
            })?
        };
        let mut builder = ModelBuilder::new(&netlist);
        if max > 0 {
            builder = builder.max_nodes(max);
        }
        let mut model = builder.build();
        model.set_name(netlist.name());
        model
    };

    let mut source =
        MarkovSource::new(model.num_inputs(), sp, st, seed).map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let record = throughput::measure(&model, &patterns, jobs);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "throughput of `{}` ({} inputs, {} ADD nodes) over {} transitions:",
        record.circuit, record.inputs, record.add_nodes, record.transitions
    );
    let _ = writeln!(
        report,
        "  kernel: {} instrs, {} terminals, {} bytes, compiled in {:.3} ms",
        record.kernel_instrs,
        record.kernel_terminals,
        record.kernel_bytes,
        record.compile_seconds * 1e3
    );
    let _ = writeln!(
        report,
        "  arena walk (1 thread):     {:>12.0} patterns/s",
        record.arena_pps
    );
    let _ = writeln!(
        report,
        "  compiled batch (1 thread): {:>12.0} patterns/s  ({:.1}x arena)",
        record.batch_pps,
        record.speedup_batch()
    );
    let _ = writeln!(
        report,
        "  compiled batch ({} threads): {:>10.0} patterns/s  ({:.1}x arena, {:.2}x batch)",
        record.jobs,
        record.parallel_pps,
        record.speedup_parallel(),
        record.scaling()
    );
    let _ = writeln!(
        report,
        "  parity with arena oracle: {}",
        if record.parity { "ok" } else { "FAILED" }
    );
    if let Some(path) = out_path {
        fs::write(&path, throughput::records_to_json(&[record]))
            .map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(report, "wrote {path}");
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&s(&["help"])).expect("help works").contains("usage"));
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn bench_emits_parseable_netlists() {
        let text = run(&s(&["bench", "cm85"])).expect("bench works");
        assert!(blif::parse(&text).is_ok());
        let text = run(&s(&["bench", "decod", "--format", "verilog"])).expect("verilog");
        assert!(verilog::parse(&text).is_ok());
        assert!(run(&s(&["bench", "nope"])).is_err());
    }

    #[test]
    fn end_to_end_model_eval_datasheet() {
        let dir = std::env::temp_dir().join("charfree-cli-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        let model_path = dir.join("decod.cfm");
        let blif_text = run(&s(&["bench", "decod"])).expect("bench");
        fs::write(&netlist_path, blif_text).expect("write blif");

        let report = run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--max",
            "300",
        ]))
        .expect("model builds");
        assert!(report.contains("built power model"));
        assert!(report.contains("wrote"));

        let report = run(&s(&[
            "eval",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "500",
            "--st",
            "0.3",
        ]))
        .expect("eval runs");
        assert!(report.contains("average power"));

        let report = run(&s(&[
            "datasheet",
            model_path.to_str().expect("utf8"),
            "--top",
            "3",
        ]))
        .expect("datasheet runs");
        assert!(report.contains("worst-case"));

        let report =
            run(&s(&["sim", netlist_path.to_str().expect("utf8"), "--vectors", "500"]))
                .expect("sim runs");
        assert!(report.contains("gate-level simulation"));
    }

    #[test]
    fn node_budget_degrades_and_strict_fails() {
        let dir = std::env::temp_dir().join("charfree-cli-test-budget");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("cm150.blif");
        fs::write(&netlist_path, run(&s(&["bench", "cm150"])).expect("bench")).expect("write");
        let path = netlist_path.to_str().expect("utf8");

        // Over-budget build degrades with a warning instead of failing.
        let report = run(&s(&["model", path, "--node-budget", "300", "--upper-bound"]))
            .expect("degraded build still succeeds");
        assert!(report.contains("built power model"), "{report}");
        assert!(report.contains("warning: degraded build"), "{report}");

        // The same budget in strict mode surfaces the trip as an error.
        let err = run(&s(&["model", path, "--node-budget", "300", "--strict"]))
            .expect_err("strict build fails");
        assert!(err.contains("budget exceeded"), "{err}");

        // An unbudgeted bounded build stays warning-free.
        let report = run(&s(&["model", path, "--max", "300"])).expect("builds");
        assert!(!report.contains("warning"), "{report}");
    }

    #[test]
    fn time_budget_flag_is_validated() {
        let dir = std::env::temp_dir().join("charfree-cli-test-budget");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        fs::write(&netlist_path, run(&s(&["bench", "decod"])).expect("bench")).expect("write");
        let path = netlist_path.to_str().expect("utf8");
        assert!(run(&s(&["model", path, "--time-budget", "-1"])).is_err());
        assert!(run(&s(&["model", path, "--time-budget", "abc"])).is_err());
        // A generous deadline leaves a small build untouched.
        let report = run(&s(&["model", path, "--time-budget", "120"])).expect("builds");
        assert!(report.contains("(exact)"), "{report}");
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(run(&s(&["eval"])).is_err());
        assert!(run(&s(&["model", "/nonexistent.blif"])).is_err());
        let dir = std::env::temp_dir().join("charfree-cli-test2");
        fs::create_dir_all(&dir).expect("tmp dir");
        let p = dir.join("x.blif");
        fs::write(&p, run(&s(&["bench", "parity"])).expect("bench")).expect("write");
        assert!(run(&s(&["model", p.to_str().expect("utf8"), "--max", "abc"])).is_err());
        assert!(run(&s(&["model", p.to_str().expect("utf8"), "--bogus"])).is_err());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    fn model_file() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("charfree-cli-test3");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("cm85.blif");
        let model_path = dir.join("cm85.cfm");
        fs::write(&netlist_path, run(&s(&["bench", "cm85"])).expect("bench")).expect("write");
        run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--max",
            "200",
        ]))
        .expect("model builds");
        model_path
    }

    #[test]
    fn expected_subcommand_is_monotone_in_activity() {
        let model_path = model_file();
        let low = run(&s(&["expected", model_path.to_str().expect("utf8"), "--st", "0.1"]))
            .expect("expected runs");
        let high = run(&s(&["expected", model_path.to_str().expect("utf8"), "--st", "0.8"]))
            .expect("expected runs");
        let grab = |text: &str| -> f64 {
            text.split(':')
                .nth(1)
                .expect("value present")
                .split_whitespace()
                .next()
                .expect("number")
                .parse()
                .expect("parses")
        };
        assert!(grab(&high) > grab(&low), "more activity, more power");
    }

    #[test]
    fn throughput_subcommand_reports_and_writes_json() {
        let dir = std::env::temp_dir().join("charfree-cli-test-throughput");
        fs::create_dir_all(&dir).expect("tmp dir");
        let json_path = dir.join("BENCH_engine.json");
        let report = run(&s(&[
            "throughput",
            "decod",
            "--vectors",
            "300",
            "--jobs",
            "2",
            "-o",
            json_path.to_str().expect("utf8"),
        ]))
        .expect("throughput runs");
        assert!(report.contains("compiled batch"), "{report}");
        assert!(report.contains("parity with arena oracle: ok"), "{report}");
        let json = fs::read_to_string(&json_path).expect("json written");
        assert!(json.contains("\"parity\": true"), "{json}");
        assert!(json.contains("\"batch_patterns_per_sec\""), "{json}");

        // A saved .cfm works as the operand too.
        let model_path = model_file();
        let report = run(&s(&[
            "throughput",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "300",
        ]))
        .expect("throughput on .cfm runs");
        assert!(report.contains("throughput of `cm85`"), "{report}");

        assert!(run(&s(&["throughput", "no-such-bench"])).is_err());
    }

    #[test]
    fn model_kernel_flag_writes_loadable_kernel() {
        let dir = std::env::temp_dir().join("charfree-cli-test-kernel");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        let model_path = dir.join("decod.cfm");
        fs::write(&netlist_path, run(&s(&["bench", "decod"])).expect("bench")).expect("write");
        let report = run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--kernel",
        ]))
        .expect("model --kernel runs");
        assert!(report.contains("wrote kernel"), "{report}");
        let kernel_path = dir.join("decod.cfk");
        let text = fs::read(&kernel_path).expect("kernel written");
        let kernel = charfree_engine::Kernel::load(text.as_slice()).expect("kernel loads");
        assert_eq!(kernel.num_inputs(), 5);

        // The `.cfk` is a first-class evaluation input: eval/trace/expected
        // produce the same reports from the kernel as from the model.
        let kpath = kernel_path.to_str().expect("utf8");
        let mpath = model_path.to_str().expect("utf8");
        for cmd in [
            &["eval", "--vectors", "400"][..],
            &["trace", "--vectors", "200"][..],
            &["expected", "--st", "0.3"][..],
        ] {
            let (name, flags) = cmd.split_first().expect("non-empty");
            let mut from_kernel = vec![name.to_string(), kpath.to_owned()];
            let mut from_model = vec![name.to_string(), mpath.to_owned()];
            from_kernel.extend(flags.iter().map(|f| f.to_string()));
            from_model.extend(flags.iter().map(|f| f.to_string()));
            assert_eq!(
                run(&from_kernel).expect("kernel input runs"),
                run(&from_model).expect("model input runs"),
                "`{name}` diverged between .cfk and .cfm inputs"
            );
        }

        // --kernel without -o is rejected.
        assert!(run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "--kernel",
        ]))
        .is_err());
    }

    #[test]
    fn trace_is_deterministic_across_jobs() {
        let model_path = model_file();
        let path = model_path.to_str().expect("utf8");
        let one = run(&s(&["trace", path, "--vectors", "600", "--jobs", "1"]))
            .expect("trace -j1");
        let eight = run(&s(&["trace", path, "--vectors", "600", "--jobs", "8"]))
            .expect("trace -j8");
        assert_eq!(one, eight, "worker count must not change the trace");
    }

    #[test]
    fn trace_subcommand_emits_csv() {
        let model_path = model_file();
        let csv = run(&s(&[
            "trace",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "64",
        ]))
        .expect("trace runs");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 64); // header + 63 transitions
        assert!(lines[0].starts_with("cycle,"));

        // File output variant.
        let out = std::env::temp_dir().join("charfree-cli-test3/trace.csv");
        let report = run(&s(&[
            "trace",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "64",
            "-o",
            out.to_str().expect("utf8"),
        ]))
        .expect("trace writes");
        assert!(report.contains("wrote"));
        assert!(fs::read_to_string(&out).expect("written").starts_with("cycle,"));
    }
}
