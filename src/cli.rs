//! The `charfree` command-line interface.
//!
//! Thin, dependency-free argument handling around the library: every
//! subcommand routes through the one typed build/eval path in
//! `charfree-pipeline` and is a pure function from parsed options to a
//! printable report, so the whole CLI is unit-testable without spawning
//! processes.
//!
//! ```text
//! charfree model <netlist|bench> [-o M.cfm] [--kernel] [--max N]
//!                [--upper-bound] [--library L.lib] [--paper-plain]
//!                [--node-budget N] [--time-budget SECS] [--strict]
//! charfree eval <model|kernel|netlist|bench> [--vectors N] [--sp P]
//!                [--st P] [--vdd V] [--period NS] [--seed S] [--jobs N]
//! charfree datasheet <model|netlist|bench> [--top K]
//! charfree sim <netlist.{blif,v}> [--vectors N] [--sp P] [--st P]
//!                [--library L.lib] [--seed S]
//! charfree bench <name> [--format blif|verilog]
//! charfree throughput <bench|netlist|M.cfm> [--vectors N] [--jobs N]
//!                [--max N] [-o BENCH_engine.json]
//! ```
//!
//! Every subcommand that builds or evaluates also accepts:
//!
//! * `--cache-dir DIR` — a content-addressed artifact store; identical
//!   (netlist, library, options) runs warm-load the compiled kernel and
//!   perform zero ADD apply steps, with byte-identical stdout.
//! * `--telemetry json` — the pipeline's per-stage event stream (wall
//!   time, node counts, degradation rungs, cache hits/misses), printed
//!   to **stderr** so stdout stays stable across cold and warm runs.
//!
//! Operands are classified by [`Source::infer`]: `.cfk` loads a compiled
//! kernel (no diagram arena is built at all), `.cfm` a saved model,
//! netlist files parse as BLIF/Verilog, and anything else names a
//! built-in benchmark.

use charfree_core::PowerModel;
use charfree_engine::throughput;
use charfree_netlist::units::Voltage;
use charfree_netlist::{blif, libspec, verilog, Library};
use charfree_pipeline::{ArtifactStore, BuildOptions, PipelineCtx, Source};
use charfree_sim::{MarkovSource, ZeroDelaySim};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A CLI failure, printed to stderr with exit code 1.
pub type CliError = String;

/// Entry point: runs the subcommand in `args` (without the program name)
/// and returns the report to print.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, I/O
/// failures and malformed inputs.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| usage("missing subcommand"))?;
    match command.as_str() {
        "model" => cmd_model(rest),
        "eval" => cmd_eval(rest),
        "datasheet" => cmd_datasheet(rest),
        "expected" => cmd_expected(rest),
        "trace" => cmd_trace(rest),
        "sim" => cmd_sim(rest),
        "bench" => cmd_bench(rest),
        "throughput" => cmd_throughput(rest),
        "--help" | "-h" | "help" => Ok(usage("")),
        other => Err(usage(&format!("unknown subcommand `{other}`"))),
    }
}

fn usage(prefix: &str) -> String {
    let mut out = String::new();
    if !prefix.is_empty() {
        let _ = writeln!(out, "error: {prefix}\n");
    }
    out.push_str(
        "charfree — characterization-free behavioral power modeling\n\
         \n\
         usage:\n\
         \x20 charfree model <netlist|bench> [-o M.cfm] [--kernel] [--max N]\n\
         \x20                [--upper-bound] [--library L.lib] [--paper-plain]\n\
         \x20                [--node-budget N] [--time-budget SECS] [--strict]\n\
         \x20 charfree eval <model|kernel|netlist|bench> [--vectors N] [--sp P]\n\
         \x20                [--st P] [--vdd V] [--period NS] [--seed S] [--jobs N]\n\
         \x20 charfree datasheet <model|netlist|bench> [--top K]\n\
         \x20 charfree expected <model|kernel|netlist|bench> [--sp P] [--st P]\n\
         \x20 charfree trace <model|kernel|netlist|bench> [--vectors N] [--sp P]\n\
         \x20                [--st P] [--vdd V] [--period NS] [--seed S] [--jobs N]\n\
         \x20                [-o out.csv]\n\
         \x20 charfree sim <netlist.{blif,v}> [--vectors N] [--sp P] [--st P]\n\
         \x20                [--library L.lib] [--seed S]\n\
         \x20 charfree bench <name> [--format blif|verilog]\n\
         \x20 charfree throughput <bench|netlist|M.cfm> [--vectors N] [--jobs N]\n\
         \x20                [--max N] [--sp P] [--st P] [--seed S]\n\
         \x20                [--library L.lib] [-o BENCH_engine.json]\n\
         \n\
         every building/evaluating subcommand also takes\n\
         \x20                [--cache-dir DIR] [--telemetry json]\n\
         (`--cache-dir` warm-loads identical builds from a content-addressed\n\
         artifact store; `--telemetry json` streams per-stage events to stderr)\n\
         \n\
         `--jobs 0` (the default) uses one worker per available core;\n\
         results are bit-identical for every worker count.\n",
    );
    out
}

/// Minimal flag cursor over the argument list.
struct Flags<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags {
            args,
            used: vec![false; args.len()],
        }
    }

    /// The first unused non-flag argument (the positional operand).
    fn positional(&mut self) -> Result<&'a str, CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && !a.starts_with('-') {
                self.used[i] = true;
                return Ok(a);
            }
        }
        Err("missing required operand".to_owned())
    }

    fn flag(&mut self, name: &str) -> bool {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                let v = self
                    .args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag `{name}` needs a value"))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value `{v}` for `{name}`")),
        }
    }

    fn finish(self) -> Result<(), CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(())
    }
}

fn load_library(flags: &mut Flags<'_>) -> Result<Library, CliError> {
    match flags.value("--library")? {
        None => Ok(Library::test_library()),
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            libspec::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

/// The per-invocation pipeline session every subcommand shares: library
/// selection, optional artifact store and telemetry rendering are parsed
/// once, here, instead of per-command.
struct Session {
    ctx: PipelineCtx,
    telemetry_json: bool,
}

impl Session {
    /// Parses the shared `--library`, `--cache-dir` and `--telemetry`
    /// flags into a ready pipeline context.
    fn from_flags(flags: &mut Flags<'_>) -> Result<Session, CliError> {
        let library = load_library(flags)?;
        let mut ctx = PipelineCtx::new(library);
        if let Some(dir) = flags.value("--cache-dir")? {
            ctx = ctx.with_store(ArtifactStore::new(dir));
        }
        let telemetry_json = match flags.value("--telemetry")? {
            None => false,
            Some("json") => true,
            Some(other) => {
                return Err(format!(
                    "unknown telemetry format `{other}` (expected `json`)"
                ))
            }
        };
        Ok(Session {
            ctx,
            telemetry_json,
        })
    }

    /// Applies the run's build options to the context.
    fn with_options(mut self, options: BuildOptions) -> Self {
        self.ctx = self.ctx.with_options(options);
        self
    }

    /// Emits the telemetry stream (stderr, so stdout stays byte-identical
    /// between cold and warm runs) and returns the report unchanged.
    fn finish(&self, report: String) -> Result<String, CliError> {
        if self.telemetry_json {
            eprintln!("{}", self.ctx.telemetry.to_json());
        }
        Ok(report)
    }
}

/// The evaluation parameters shared by the trace-shaped subcommands.
struct EvalParams {
    vectors: usize,
    sp: f64,
    st: f64,
    vdd: f64,
    period: f64,
    seed: u64,
    jobs: usize,
}

impl EvalParams {
    fn parse(flags: &mut Flags<'_>, default_vectors: usize) -> Result<EvalParams, CliError> {
        Ok(EvalParams {
            vectors: flags.parse("--vectors", default_vectors)?,
            sp: flags.parse("--sp", 0.5)?,
            st: flags.parse("--st", 0.5)?,
            vdd: flags.parse("--vdd", 3.3)?,
            period: flags.parse("--period", 10.0)?,
            seed: flags.parse("--seed", 1)?,
            jobs: flags.parse("--jobs", 0)?,
        })
    }

    /// The Markov-source pattern sequence these parameters describe.
    fn patterns(&self, num_inputs: usize) -> Result<Vec<Vec<bool>>, CliError> {
        let mut source = MarkovSource::new(num_inputs, self.sp, self.st, self.seed)
            .map_err(|e| e.to_string())?;
        Ok(source.sequence(self.vectors.max(2)))
    }
}

fn cmd_model(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    let max: usize = flags.parse("--max", 0)?;
    let node_budget: u64 = flags.parse("--node-budget", 0)?;
    let time_budget: f64 = flags.parse("--time-budget", 0.0)?;
    let strict = flags.flag("--strict");
    let upper_bound = flags.flag("--upper-bound");
    let paper_plain = flags.flag("--paper-plain");
    let emit_kernel = flags.flag("--kernel");
    flags.finish()?;
    if emit_kernel && out_path.is_none() {
        return Err("`--kernel` needs `-o` (the kernel is written next to the model)".to_owned());
    }
    if time_budget < 0.0 || !time_budget.is_finite() {
        return Err(format!("bad value `{time_budget}` for `--time-budget`"));
    }

    let mut options = if paper_plain {
        BuildOptions::paper_plain()
    } else {
        BuildOptions::default()
    };
    if max > 0 {
        options.max_nodes = Some(max);
    }
    if node_budget > 0 {
        options.node_budget = Some(node_budget);
    }
    if time_budget > 0.0 {
        options.time_budget = Some(std::time::Duration::from_secs_f64(time_budget));
    }
    options.strict = strict;
    options.upper_bound = upper_bound;
    session = session.with_options(options);

    let netlist = session
        .ctx
        .load_netlist(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let model = session
        .ctx
        .build_model(&netlist)
        .map_err(|e| e.to_string())?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "built power model for `{}`: n={} N={} -> {} nodes in {:.2}s{}",
        netlist.name(),
        netlist.num_inputs(),
        netlist.num_gates(),
        model.size(),
        model.report().cpu.as_secs_f64(),
        if model.report().exact { " (exact)" } else { "" }
    );
    let _ = writeln!(
        report,
        "avg {:.2} fF, max {:.2} fF",
        model.average_capacitance().femtofarads(),
        model.max_capacitance().femtofarads()
    );
    if let Some(degradation) = model.degradation() {
        let _ = writeln!(report, "warning: {degradation}");
    }
    match out_path {
        Some(path) => {
            let mut buf = Vec::new();
            model.save(&mut buf).map_err(|e| e.to_string())?;
            fs::write(&path, buf).map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(report, "wrote {path}");
            if emit_kernel {
                let kpath = Path::new(&path)
                    .with_extension("cfk")
                    .to_string_lossy()
                    .into_owned();
                let kernel = session.ctx.compile_kernel_from(&model);
                let mut buf = Vec::new();
                kernel.save(&mut buf).map_err(|e| e.to_string())?;
                fs::write(&kpath, buf).map_err(|e| format!("{kpath}: {e}"))?;
                let _ = writeln!(
                    report,
                    "wrote kernel {kpath} ({} instrs, {} terminals, {} bytes)",
                    kernel.num_instrs(),
                    kernel.num_terminals(),
                    kernel.bytes()
                );
            }
        }
        None => {
            let _ = writeln!(report, "(no -o given; model not persisted)");
        }
    }
    session.finish(report)
}

fn cmd_eval(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let params = EvalParams::parse(&mut flags, 10_000)?;
    flags.finish()?;

    let kernel = session
        .ctx
        .kernel_for(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let patterns = params.patterns(kernel.num_inputs())?;
    let vdd = Voltage(params.vdd);
    // Compiled-kernel fast path: batch-evaluate the switched capacitance
    // of the whole stream, then scale by Vdd² (energy is monotone in C,
    // so the summary's max is the energy peak too).
    let summary = session.ctx.evaluate(&kernel, &patterns, params.jobs);
    let sum = vdd.volts() * vdd.volts() * summary.sum_ff;
    let peak = (vdd.volts() * vdd.volts() * summary.max_ff).max(0.0);
    let cycles = summary.transitions as f64;
    let (sp, st, period) = (params.sp, params.st, params.period);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "model `{}` on {} vectors (sp={sp}, st={st}, Vdd={} V, T={period} ns):",
        kernel.name(),
        patterns.len(),
        vdd.volts()
    );
    let _ = writeln!(report, "  average energy/cycle: {:.2} fJ", sum / cycles);
    let _ = writeln!(
        report,
        "  average power:        {:.3} uW",
        sum / cycles / period
    );
    let _ = writeln!(report, "  peak energy/cycle:    {peak:.2} fJ");
    let _ = writeln!(report, "  peak power:           {:.3} uW", peak / period);
    session.finish(report)
}

fn cmd_datasheet(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let top: usize = flags.parse("--top", 5)?;
    flags.finish()?;

    let model = session
        .ctx
        .model_for(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "power datasheet for `{}` ({} inputs, {} nodes{})",
        model.name(),
        model.num_inputs(),
        model.size(),
        if model.report().exact { ", exact" } else { "" }
    );
    let _ = writeln!(
        report,
        "  average switched capacitance: {:.2} fF",
        model.average_capacitance().femtofarads()
    );
    let _ = writeln!(
        report,
        "  worst-case switched capacitance: {:.2} fF",
        model.max_capacitance().femtofarads()
    );
    let _ = writeln!(report, "  top {top} capacitance levels:");
    for level in model.peak_spectrum(top) {
        let fmt_bits =
            |bits: &[bool]| -> String { bits.iter().map(|&b| if b { '1' } else { '0' }).collect() };
        let _ = writeln!(
            report,
            "    {:>9.2} fF  x{:<12} {} -> {}",
            level.capacitance.femtofarads(),
            level.count,
            fmt_bits(&level.witness.0),
            fmt_bits(&level.witness.1)
        );
    }
    session.finish(report)
}

fn cmd_expected(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    flags.finish()?;
    // The flat kernel evaluates the expectation without touching the
    // manager arena; grouped-ordering models (whose pair correlation is
    // not chain-expressible on the kernel) fall back to the arena path,
    // which needs a model-carrying source.
    let source = Source::infer(operand);
    let kernel = session.ctx.kernel_for(&source).map_err(|e| e.to_string())?;
    let c = if kernel.is_interleaved() {
        kernel.expected_capacitance(sp, st)
    } else if matches!(source, Source::KernelFile(_)) {
        return Err("grouped-ordering kernels cannot evaluate expectations; \
             pass the `.cfm` model instead"
            .to_owned());
    } else {
        // Cache-friendly fallback: with a store attached the model this
        // re-derives is a warm artifact hit, not a second build.
        session
            .ctx
            .model_for(&source)
            .map_err(|e| e.to_string())?
            .expected_capacitance(sp, st)
            .femtofarads()
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "analytic expected switched capacitance of `{}` at (sp={sp}, st={st}): {:.3} fF/cycle",
        kernel.name(),
        c
    );
    let _ = writeln!(report, "(symbolic — no simulation vectors involved)");
    session.finish(report)
}

fn cmd_trace(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let params = EvalParams::parse(&mut flags, 1000)?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    flags.finish()?;

    let kernel = session
        .ctx
        .kernel_for(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let patterns = params.patterns(kernel.num_inputs())?;
    let caps: Vec<_> = session
        .ctx
        .trace(&kernel, &patterns, params.jobs)
        .into_iter()
        .map(charfree_netlist::units::Capacitance)
        .collect();
    let trace = charfree_sim::EnergyTrace::from_switched(&caps, Voltage(params.vdd), params.period);

    let mut csv = Vec::new();
    trace.write_csv(&mut csv).map_err(|e| e.to_string())?;
    match out_path {
        Some(path) => {
            fs::write(&path, csv).map_err(|e| format!("{path}: {e}"))?;
            let mut report = String::new();
            let _ = writeln!(
                report,
                "wrote {} cycles to {path} (avg {:.3} uW, windowed-16 peak {:.2} fJ)",
                trace.len(),
                trace.average_power().microwatts(),
                trace.windowed_peak_energy(16).femtojoules()
            );
            session.finish(report)
        }
        None => session.finish(String::from_utf8(csv).map_err(|e| e.to_string())?),
    }
}

fn cmd_sim(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let netlist_path = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 10_000)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    flags.finish()?;

    let netlist = session
        .ctx
        .load_netlist(&Source::infer(netlist_path))
        .map_err(|e| e.to_string())?;
    let sim = ZeroDelaySim::new(&netlist);
    let mut source =
        MarkovSource::new(netlist.num_inputs(), sp, st, seed).map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let trace = sim.switching_trace(&patterns);
    let avg = trace.iter().map(|c| c.femtofarads()).sum::<f64>() / trace.len() as f64;
    let peak = trace
        .iter()
        .map(|c| c.femtofarads())
        .fold(f64::NEG_INFINITY, f64::max);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "gate-level simulation of `{}`: {} vectors (sp={sp}, st={st})",
        netlist.name(),
        patterns.len()
    );
    let _ = writeln!(report, "  average switched capacitance: {avg:.2} fF/cycle");
    let _ = writeln!(report, "  peak switched capacitance:    {peak:.2} fF");
    session.finish(report)
}

fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let name = flags.positional()?;
    let format = flags.value("--format")?.unwrap_or("blif").to_owned();
    flags.finish()?;

    let mut ctx = PipelineCtx::new(Library::test_library());
    let netlist = ctx
        .parse_netlist(&Source::Bench(name.to_owned()))
        .map_err(|e| e.to_string())?;
    match format.as_str() {
        "blif" => Ok(blif::write(&netlist)),
        "verilog" | "v" => Ok(verilog::write(&netlist)),
        other => Err(format!("unknown format `{other}` (blif|verilog)")),
    }
}

fn cmd_throughput(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let target = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 20_000)?;
    let jobs: usize = flags.parse("--jobs", 0)?;
    let max: usize = flags.parse("--max", 0)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    flags.finish()?;

    if max > 0 {
        session = session.with_options(BuildOptions {
            max_nodes: Some(max),
            ..BuildOptions::default()
        });
    }
    // The operand is a saved model, a netlist file, or a benchmark name.
    let model = session
        .ctx
        .model_for(&Source::infer(target))
        .map_err(|e| e.to_string())?;

    let mut source =
        MarkovSource::new(model.num_inputs(), sp, st, seed).map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let record = throughput::measure(&model, &patterns, jobs);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "throughput of `{}` ({} inputs, {} ADD nodes) over {} transitions:",
        record.circuit, record.inputs, record.add_nodes, record.transitions
    );
    let _ = writeln!(
        report,
        "  kernel: {} instrs, {} terminals, {} bytes, compiled in {:.3} ms",
        record.kernel_instrs,
        record.kernel_terminals,
        record.kernel_bytes,
        record.compile_seconds * 1e3
    );
    let _ = writeln!(
        report,
        "  arena walk (1 thread):     {:>12.0} patterns/s",
        record.arena_pps
    );
    let _ = writeln!(
        report,
        "  compiled batch (1 thread): {:>12.0} patterns/s  ({:.1}x arena)",
        record.batch_pps,
        record.speedup_batch()
    );
    let _ = writeln!(
        report,
        "  compiled batch ({} threads): {:>10.0} patterns/s  ({:.1}x arena, {:.2}x batch)",
        record.jobs,
        record.parallel_pps,
        record.speedup_parallel(),
        record.scaling()
    );
    let _ = writeln!(
        report,
        "  parity with arena oracle: {}",
        if record.parity { "ok" } else { "FAILED" }
    );
    match session.ctx.store() {
        Some(store) => {
            let _ = writeln!(
                report,
                "  artifact cache: {} hit(s), {} miss(es) at {}",
                session.ctx.telemetry.cache_hits(),
                session.ctx.telemetry.cache_misses(),
                store.dir().display()
            );
        }
        None => {
            let _ = writeln!(
                report,
                "  artifact cache: off (enable with --cache-dir DIR)"
            );
        }
    }
    if let Some(path) = out_path {
        fs::write(&path, throughput::records_to_json(&[record]))
            .map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(report, "wrote {path}");
    }
    session.finish(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&s(&["help"])).expect("help works").contains("usage"));
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn bench_emits_parseable_netlists() {
        let text = run(&s(&["bench", "cm85"])).expect("bench works");
        assert!(blif::parse(&text).is_ok());
        let text = run(&s(&["bench", "decod", "--format", "verilog"])).expect("verilog");
        assert!(verilog::parse(&text).is_ok());
        assert!(run(&s(&["bench", "nope"])).is_err());
    }

    #[test]
    fn end_to_end_model_eval_datasheet() {
        let dir = std::env::temp_dir().join("charfree-cli-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        let model_path = dir.join("decod.cfm");
        let blif_text = run(&s(&["bench", "decod"])).expect("bench");
        fs::write(&netlist_path, blif_text).expect("write blif");

        let report = run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--max",
            "300",
        ]))
        .expect("model builds");
        assert!(report.contains("built power model"));
        assert!(report.contains("wrote"));

        let report = run(&s(&[
            "eval",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "500",
            "--st",
            "0.3",
        ]))
        .expect("eval runs");
        assert!(report.contains("average power"));

        let report = run(&s(&[
            "datasheet",
            model_path.to_str().expect("utf8"),
            "--top",
            "3",
        ]))
        .expect("datasheet runs");
        assert!(report.contains("worst-case"));

        let report = run(&s(&[
            "sim",
            netlist_path.to_str().expect("utf8"),
            "--vectors",
            "500",
        ]))
        .expect("sim runs");
        assert!(report.contains("gate-level simulation"));
    }

    #[test]
    fn node_budget_degrades_and_strict_fails() {
        let dir = std::env::temp_dir().join("charfree-cli-test-budget");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("cm150.blif");
        fs::write(&netlist_path, run(&s(&["bench", "cm150"])).expect("bench")).expect("write");
        let path = netlist_path.to_str().expect("utf8");

        // Over-budget build degrades with a warning instead of failing.
        let report = run(&s(&[
            "model",
            path,
            "--node-budget",
            "300",
            "--upper-bound",
        ]))
        .expect("degraded build still succeeds");
        assert!(report.contains("built power model"), "{report}");
        assert!(report.contains("warning: degraded build"), "{report}");

        // The same budget in strict mode surfaces the trip as an error.
        let err = run(&s(&["model", path, "--node-budget", "300", "--strict"]))
            .expect_err("strict build fails");
        assert!(err.contains("budget exceeded"), "{err}");

        // An unbudgeted bounded build stays warning-free.
        let report = run(&s(&["model", path, "--max", "300"])).expect("builds");
        assert!(!report.contains("warning"), "{report}");
    }

    #[test]
    fn time_budget_flag_is_validated() {
        let dir = std::env::temp_dir().join("charfree-cli-test-budget");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        fs::write(&netlist_path, run(&s(&["bench", "decod"])).expect("bench")).expect("write");
        let path = netlist_path.to_str().expect("utf8");
        assert!(run(&s(&["model", path, "--time-budget", "-1"])).is_err());
        assert!(run(&s(&["model", path, "--time-budget", "abc"])).is_err());
        // A generous deadline leaves a small build untouched.
        let report = run(&s(&["model", path, "--time-budget", "120"])).expect("builds");
        assert!(report.contains("(exact)"), "{report}");
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(run(&s(&["eval"])).is_err());
        assert!(run(&s(&["model", "/nonexistent.blif"])).is_err());
        let dir = std::env::temp_dir().join("charfree-cli-test2");
        fs::create_dir_all(&dir).expect("tmp dir");
        let p = dir.join("x.blif");
        fs::write(&p, run(&s(&["bench", "parity"])).expect("bench")).expect("write");
        assert!(run(&s(&["model", p.to_str().expect("utf8"), "--max", "abc"])).is_err());
        assert!(run(&s(&["model", p.to_str().expect("utf8"), "--bogus"])).is_err());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    fn model_file() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("charfree-cli-test3");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("cm85.blif");
        let model_path = dir.join("cm85.cfm");
        fs::write(&netlist_path, run(&s(&["bench", "cm85"])).expect("bench")).expect("write");
        run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--max",
            "200",
        ]))
        .expect("model builds");
        model_path
    }

    #[test]
    fn expected_subcommand_is_monotone_in_activity() {
        let model_path = model_file();
        let low = run(&s(&[
            "expected",
            model_path.to_str().expect("utf8"),
            "--st",
            "0.1",
        ]))
        .expect("expected runs");
        let high = run(&s(&[
            "expected",
            model_path.to_str().expect("utf8"),
            "--st",
            "0.8",
        ]))
        .expect("expected runs");
        let grab = |text: &str| -> f64 {
            text.split(':')
                .nth(1)
                .expect("value present")
                .split_whitespace()
                .next()
                .expect("number")
                .parse()
                .expect("parses")
        };
        assert!(grab(&high) > grab(&low), "more activity, more power");
    }

    #[test]
    fn throughput_subcommand_reports_and_writes_json() {
        let dir = std::env::temp_dir().join("charfree-cli-test-throughput");
        fs::create_dir_all(&dir).expect("tmp dir");
        let json_path = dir.join("BENCH_engine.json");
        let report = run(&s(&[
            "throughput",
            "decod",
            "--vectors",
            "300",
            "--jobs",
            "2",
            "-o",
            json_path.to_str().expect("utf8"),
        ]))
        .expect("throughput runs");
        assert!(report.contains("compiled batch"), "{report}");
        assert!(report.contains("parity with arena oracle: ok"), "{report}");
        let json = fs::read_to_string(&json_path).expect("json written");
        assert!(json.contains("\"parity\": true"), "{json}");
        assert!(json.contains("\"batch_patterns_per_sec\""), "{json}");

        // A saved .cfm works as the operand too.
        let model_path = model_file();
        let report = run(&s(&[
            "throughput",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "300",
        ]))
        .expect("throughput on .cfm runs");
        assert!(report.contains("throughput of `cm85`"), "{report}");

        assert!(run(&s(&["throughput", "no-such-bench"])).is_err());
    }

    #[test]
    fn model_kernel_flag_writes_loadable_kernel() {
        let dir = std::env::temp_dir().join("charfree-cli-test-kernel");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        let model_path = dir.join("decod.cfm");
        fs::write(&netlist_path, run(&s(&["bench", "decod"])).expect("bench")).expect("write");
        let report = run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--kernel",
        ]))
        .expect("model --kernel runs");
        assert!(report.contains("wrote kernel"), "{report}");
        let kernel_path = dir.join("decod.cfk");
        let text = fs::read(&kernel_path).expect("kernel written");
        let kernel = charfree_engine::Kernel::load(text.as_slice()).expect("kernel loads");
        assert_eq!(kernel.num_inputs(), 5);

        // The `.cfk` is a first-class evaluation input: eval/trace/expected
        // produce the same reports from the kernel as from the model.
        let kpath = kernel_path.to_str().expect("utf8");
        let mpath = model_path.to_str().expect("utf8");
        for cmd in [
            &["eval", "--vectors", "400"][..],
            &["trace", "--vectors", "200"][..],
            &["expected", "--st", "0.3"][..],
        ] {
            let (name, flags) = cmd.split_first().expect("non-empty");
            let mut from_kernel = vec![name.to_string(), kpath.to_owned()];
            let mut from_model = vec![name.to_string(), mpath.to_owned()];
            from_kernel.extend(flags.iter().map(|f| f.to_string()));
            from_model.extend(flags.iter().map(|f| f.to_string()));
            assert_eq!(
                run(&from_kernel).expect("kernel input runs"),
                run(&from_model).expect("model input runs"),
                "`{name}` diverged between .cfk and .cfm inputs"
            );
        }

        // --kernel without -o is rejected.
        assert!(run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "--kernel",
        ]))
        .is_err());
    }

    #[test]
    fn trace_is_deterministic_across_jobs() {
        let model_path = model_file();
        let path = model_path.to_str().expect("utf8");
        let one = run(&s(&["trace", path, "--vectors", "600", "--jobs", "1"])).expect("trace -j1");
        let eight =
            run(&s(&["trace", path, "--vectors", "600", "--jobs", "8"])).expect("trace -j8");
        assert_eq!(one, eight, "worker count must not change the trace");
    }

    #[test]
    fn operands_accept_bench_names_directly() {
        // The pipeline's source inference makes every build/eval command
        // take netlists and benchmark names, not just saved artifacts.
        let report = run(&s(&["eval", "decod", "--vectors", "200"])).expect("eval on bench");
        assert!(report.contains("model `decod`"), "{report}");
        let report = run(&s(&["datasheet", "decod"])).expect("datasheet on bench");
        assert!(report.contains("worst-case"), "{report}");
        let report = run(&s(&["expected", "decod", "--st", "0.4"])).expect("expected on bench");
        assert!(report.contains("fF/cycle"), "{report}");
    }

    #[test]
    fn cache_dir_makes_warm_runs_byte_identical() {
        let dir = std::env::temp_dir().join("charfree-cli-test-cache");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tmp dir");
        let cache = dir.join("store");
        let cache = cache.to_str().expect("utf8");

        let eval = |tag: &str| {
            run(&s(&[
                "eval",
                "decod",
                "--vectors",
                "300",
                "--cache-dir",
                cache,
            ]))
            .unwrap_or_else(|e| panic!("{tag} eval: {e}"))
        };
        let cold = eval("cold");
        // The store now holds both artifacts...
        let entries: Vec<_> = fs::read_dir(cache)
            .expect("store created")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        assert!(entries
            .iter()
            .any(|p| p.extension().is_some_and(|e| e == "cfm")));
        assert!(entries
            .iter()
            .any(|p| p.extension().is_some_and(|e| e == "cfk")));
        // ...and a warm run reproduces stdout byte for byte.
        assert_eq!(cold, eval("warm"));

        // The throughput report surfaces the cache counters.
        let report = run(&s(&[
            "throughput",
            "decod",
            "--vectors",
            "200",
            "--cache-dir",
            cache,
            "--max",
            "300",
        ]))
        .expect("throughput with cache");
        assert!(report.contains("artifact cache:"), "{report}");
        let report = run(&s(&["throughput", "decod", "--vectors", "200"])).expect("throughput");
        assert!(report.contains("artifact cache: off"), "{report}");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_flag_is_validated() {
        assert!(run(&s(&[
            "eval",
            "decod",
            "--vectors",
            "200",
            "--telemetry",
            "json"
        ]))
        .is_ok());
        let err = run(&s(&["eval", "decod", "--telemetry", "xml"])).expect_err("bad format");
        assert!(err.contains("telemetry"), "{err}");
    }

    #[test]
    fn trace_subcommand_emits_csv() {
        let model_path = model_file();
        let csv = run(&s(&[
            "trace",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "64",
        ]))
        .expect("trace runs");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 64); // header + 63 transitions
        assert!(lines[0].starts_with("cycle,"));

        // File output variant.
        let out = std::env::temp_dir().join("charfree-cli-test3/trace.csv");
        let report = run(&s(&[
            "trace",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "64",
            "-o",
            out.to_str().expect("utf8"),
        ]))
        .expect("trace writes");
        assert!(report.contains("wrote"));
        assert!(fs::read_to_string(&out)
            .expect("written")
            .starts_with("cycle,"));
    }
}
