//! The `charfree` command-line interface.
//!
//! Thin, dependency-free argument handling around the library: every
//! subcommand routes through the one typed build/eval path in
//! `charfree-pipeline` and is a pure function from parsed options to a
//! printable report, so the whole CLI is unit-testable without spawning
//! processes.
//!
//! ```text
//! charfree model <netlist|bench> [-o M.cfm] [--kernel] [--max N]
//!                [--upper-bound] [--library L.lib] [--paper-plain]
//!                [--node-budget N] [--time-budget SECS] [--strict]
//! charfree eval <model|kernel|netlist|bench> [--vectors N] [--sp P]
//!                [--st P] [--vdd V] [--period NS] [--seed S] [--jobs N]
//! charfree datasheet <model|netlist|bench> [--top K]
//! charfree sim <netlist.{blif,v}> [--vectors N] [--sp P] [--st P]
//!                [--library L.lib] [--seed S]
//! charfree bench <name> [--format blif|verilog]
//! charfree throughput <bench|netlist|M.cfm> [--vectors N] [--jobs N]
//!                [--max N] [-o BENCH_engine.json]
//! ```
//!
//! Every subcommand that builds or evaluates also accepts:
//!
//! * `--cache-dir DIR` — a content-addressed artifact store; identical
//!   (netlist, library, options) runs warm-load the compiled kernel and
//!   perform zero ADD apply steps, with byte-identical stdout.
//! * `--telemetry json` — the pipeline's per-stage event stream (wall
//!   time, node counts, degradation rungs, cache hits/misses), printed
//!   to **stderr** so stdout stays stable across cold and warm runs.
//!
//! Operands are classified by [`Source::infer`]: `.cfk` loads a compiled
//! kernel (no diagram arena is built at all), `.cfm` a saved model,
//! netlist files parse as BLIF/Verilog, and anything else names a
//! built-in benchmark.

use charfree_core::PowerModel;
use charfree_engine::throughput;
use charfree_netlist::units::Voltage;
use charfree_netlist::{blif, libspec, verilog, Library};
use charfree_pipeline::{ArtifactStore, BuildOptions, PipelineCtx, Source};
use charfree_sim::{MarkovSource, ZeroDelaySim};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// A CLI failure, printed to stderr with exit code 1.
pub type CliError = String;

/// Entry point: runs the subcommand in `args` (without the program name)
/// and returns the report to print.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands, bad flags, I/O
/// failures and malformed inputs.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| usage("missing subcommand"))?;
    match command.as_str() {
        "model" => cmd_model(rest),
        "eval" => cmd_eval(rest),
        "datasheet" => cmd_datasheet(rest),
        "expected" => cmd_expected(rest),
        "trace" => cmd_trace(rest),
        "sim" => cmd_sim(rest),
        "bench" => cmd_bench(rest),
        "throughput" => cmd_throughput(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "conform" => cmd_conform(rest),
        "--help" | "-h" | "help" => Ok(usage("")),
        other => Err(usage(&format!("unknown subcommand `{other}`"))),
    }
}

fn usage(prefix: &str) -> String {
    let mut out = String::new();
    if !prefix.is_empty() {
        let _ = writeln!(out, "error: {prefix}\n");
    }
    out.push_str(
        "charfree — characterization-free behavioral power modeling\n\
         \n\
         usage:\n\
         \x20 charfree model <netlist|bench> [-o M.cfm] [--kernel] [--max N]\n\
         \x20                [--upper-bound] [--library L.lib] [--paper-plain]\n\
         \x20                [--node-budget N] [--time-budget SECS] [--strict]\n\
         \x20 charfree eval <model|kernel|netlist|bench> [--vectors N] [--sp P]\n\
         \x20                [--st P] [--vdd V] [--period NS] [--seed S] [--jobs N]\n\
         \x20 charfree datasheet <model|netlist|bench> [--top K]\n\
         \x20 charfree expected <model|kernel|netlist|bench> [--sp P] [--st P]\n\
         \x20 charfree trace <model|kernel|netlist|bench> [--vectors N] [--sp P]\n\
         \x20                [--st P] [--vdd V] [--period NS] [--seed S] [--jobs N]\n\
         \x20                [-o out.csv]\n\
         \x20 charfree sim <netlist.{blif,v}> [--vectors N] [--sp P] [--st P]\n\
         \x20                [--library L.lib] [--seed S]\n\
         \x20 charfree bench <name> [--format blif|verilog]\n\
         \x20 charfree throughput <bench|netlist|M.cfm> [--vectors N] [--jobs N]\n\
         \x20                [--max N] [--sp P] [--st P] [--seed S]\n\
         \x20                [--library L.lib] [-o BENCH_engine.json]\n\
         \x20 charfree serve [--addr HOST:PORT] [--jobs N] [--batch-window DUR]\n\
         \x20                [--max-inflight N] [--max-vectors N]\n\
         \x20                [--model-bytes-budget BYTES]\n\
         \x20                [--reactor-threads N] [--idle-timeout-ms MS]\n\
         \x20                [--metrics-addr HOST:PORT]\n\
         \x20                [--library L.lib] [--cache-dir DIR] [--quiet]\n\
         \x20                [--breaker-failures K] [--breaker-open-ms MS]\n\
         \x20 charfree client <load|eval|trace|expected|stats|metrics|shutdown>\n\
         \x20                [operand] [--addr HOST:PORT] [--proto json|binary]\n\
         \x20                [--deadline-ms N] [--retries N]\n\
         \x20                [eval/trace flags]\n\
         \x20                [build flags: --max N --node-budget N --strict --upper-bound]\n\
         \x20 charfree conform [--cases N] [--seed S] [--vectors N] [--corpus DIR]\n\
         \x20                [--shrink] [--no-serve] [--no-campaigns]\n\
         \x20                [--campaign standard|chaos|all] [--chaos-faults N]\n\
         \n\
         every building/evaluating subcommand also takes\n\
         \x20                [--cache-dir DIR] [--telemetry json]\n\
         (`--cache-dir` warm-loads identical builds from a content-addressed\n\
         artifact store; `--telemetry json` streams per-stage events to stderr)\n\
         \n\
         `--jobs N` needs N >= 1; omit the flag to use one worker per\n\
         available core. results are bit-identical for every worker count.\n\
         `--batch-window` takes `0`, `200us`, `5ms` or `1s`;\n\
         `--model-bytes-budget` takes plain bytes or a K/M/G suffix.\n\
         `serve` drains gracefully on SIGTERM/SIGINT and exits 0; `client\n\
         --retries N` retries shed or retriable responses (and reconnects\n\
         after drops) with capped, jittered exponential backoff honoring\n\
         the server's retry_after_ms hint.\n",
    );
    out
}

/// Minimal flag cursor over the argument list.
struct Flags<'a> {
    args: &'a [String],
    used: Vec<bool>,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags {
            args,
            used: vec![false; args.len()],
        }
    }

    /// The first unused non-flag argument (the positional operand).
    fn positional(&mut self) -> Result<&'a str, CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && !a.starts_with('-') {
                self.used[i] = true;
                return Ok(a);
            }
        }
        Err("missing required operand".to_owned())
    }

    fn flag(&mut self, name: &str) -> bool {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    fn value(&mut self, name: &str) -> Result<Option<&'a str>, CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] && a == name {
                self.used[i] = true;
                let v = self
                    .args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag `{name}` needs a value"))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn parse<T: std::str::FromStr>(&mut self, name: &str, default: T) -> Result<T, CliError> {
        match self.value(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("bad value `{v}` for `{name}`")),
        }
    }

    fn finish(self) -> Result<(), CliError> {
        for (i, a) in self.args.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("unexpected argument `{a}`"));
            }
        }
        Ok(())
    }
}

/// Parses a `--jobs` flag. `0` used to fall through to the engine as a
/// degenerate worker count; it is now rejected at parse time. Omitting
/// the flag still means "one worker per available core" (returned as
/// `0`, the engine's auto sentinel).
fn parse_jobs(flags: &mut Flags<'_>) -> Result<usize, CliError> {
    match flags.value("--jobs")? {
        None => Ok(0),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err(
                "`--jobs 0` is not a valid worker count; pass `--jobs N` with N >= 1, \
                 or omit the flag to use one worker per available core"
                    .to_owned(),
            ),
            Ok(n) => Ok(n),
            Err(_) => Err(format!("bad value `{v}` for `--jobs`")),
        },
    }
}

fn load_library(flags: &mut Flags<'_>) -> Result<Library, CliError> {
    match flags.value("--library")? {
        None => Ok(Library::test_library()),
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            libspec::parse(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

/// The per-invocation pipeline session every subcommand shares: library
/// selection, optional artifact store and telemetry rendering are parsed
/// once, here, instead of per-command.
struct Session {
    ctx: PipelineCtx,
    telemetry_json: bool,
}

impl Session {
    /// Parses the shared `--library`, `--cache-dir` and `--telemetry`
    /// flags into a ready pipeline context.
    fn from_flags(flags: &mut Flags<'_>) -> Result<Session, CliError> {
        let library = load_library(flags)?;
        let mut ctx = PipelineCtx::new(library);
        if let Some(dir) = flags.value("--cache-dir")? {
            ctx = ctx.with_store(ArtifactStore::new(dir));
        }
        let telemetry_json = match flags.value("--telemetry")? {
            None => false,
            Some("json") => true,
            Some(other) => {
                return Err(format!(
                    "unknown telemetry format `{other}` (expected `json`)"
                ))
            }
        };
        Ok(Session {
            ctx,
            telemetry_json,
        })
    }

    /// Applies the run's build options to the context.
    fn with_options(mut self, options: BuildOptions) -> Self {
        self.ctx = self.ctx.with_options(options);
        self
    }

    /// Emits the telemetry stream (stderr, so stdout stays byte-identical
    /// between cold and warm runs) and returns the report unchanged.
    fn finish(&self, report: String) -> Result<String, CliError> {
        if self.telemetry_json {
            eprintln!("{}", self.ctx.telemetry.to_json());
        }
        Ok(report)
    }
}

/// The evaluation parameters shared by the trace-shaped subcommands.
struct EvalParams {
    vectors: usize,
    sp: f64,
    st: f64,
    vdd: f64,
    period: f64,
    seed: u64,
    jobs: usize,
}

impl EvalParams {
    fn parse(flags: &mut Flags<'_>, default_vectors: usize) -> Result<EvalParams, CliError> {
        Ok(EvalParams {
            vectors: flags.parse("--vectors", default_vectors)?,
            sp: flags.parse("--sp", 0.5)?,
            st: flags.parse("--st", 0.5)?,
            vdd: flags.parse("--vdd", 3.3)?,
            period: flags.parse("--period", 10.0)?,
            seed: flags.parse("--seed", 1)?,
            jobs: parse_jobs(flags)?,
        })
    }

    /// The Markov-source pattern sequence these parameters describe.
    fn patterns(&self, num_inputs: usize) -> Result<Vec<Vec<bool>>, CliError> {
        let mut source = MarkovSource::new(num_inputs, self.sp, self.st, self.seed)
            .map_err(|e| e.to_string())?;
        Ok(source.sequence(self.vectors.max(2)))
    }
}

fn cmd_model(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    let max: usize = flags.parse("--max", 0)?;
    let node_budget: u64 = flags.parse("--node-budget", 0)?;
    let time_budget: f64 = flags.parse("--time-budget", 0.0)?;
    let strict = flags.flag("--strict");
    let upper_bound = flags.flag("--upper-bound");
    let paper_plain = flags.flag("--paper-plain");
    let emit_kernel = flags.flag("--kernel");
    flags.finish()?;
    if emit_kernel && out_path.is_none() {
        return Err("`--kernel` needs `-o` (the kernel is written next to the model)".to_owned());
    }
    if time_budget < 0.0 || !time_budget.is_finite() {
        return Err(format!("bad value `{time_budget}` for `--time-budget`"));
    }

    let mut options = if paper_plain {
        BuildOptions::paper_plain()
    } else {
        BuildOptions::default()
    };
    if max > 0 {
        options.max_nodes = Some(max);
    }
    if node_budget > 0 {
        options.node_budget = Some(node_budget);
    }
    if time_budget > 0.0 {
        options.time_budget = Some(std::time::Duration::from_secs_f64(time_budget));
    }
    options.strict = strict;
    options.upper_bound = upper_bound;
    session = session.with_options(options);

    let netlist = session
        .ctx
        .load_netlist(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let model = session
        .ctx
        .build_model(&netlist)
        .map_err(|e| e.to_string())?;

    let mut report = String::new();
    let _ = writeln!(
        report,
        "built power model for `{}`: n={} N={} -> {} nodes in {:.2}s{}",
        netlist.name(),
        netlist.num_inputs(),
        netlist.num_gates(),
        model.size(),
        model.report().cpu.as_secs_f64(),
        if model.report().exact { " (exact)" } else { "" }
    );
    let _ = writeln!(
        report,
        "avg {:.2} fF, max {:.2} fF",
        model.average_capacitance().femtofarads(),
        model.max_capacitance().femtofarads()
    );
    if let Some(degradation) = model.degradation() {
        let _ = writeln!(report, "warning: {degradation}");
    }
    match out_path {
        Some(path) => {
            let mut buf = Vec::new();
            model.save(&mut buf).map_err(|e| e.to_string())?;
            fs::write(&path, buf).map_err(|e| format!("{path}: {e}"))?;
            let _ = writeln!(report, "wrote {path}");
            if emit_kernel {
                let kpath = Path::new(&path)
                    .with_extension("cfk")
                    .to_string_lossy()
                    .into_owned();
                let kernel = session.ctx.compile_kernel_from(&model);
                let mut buf = Vec::new();
                kernel.save(&mut buf).map_err(|e| e.to_string())?;
                fs::write(&kpath, buf).map_err(|e| format!("{kpath}: {e}"))?;
                let _ = writeln!(
                    report,
                    "wrote kernel {kpath} ({} instrs, {} terminals, {} bytes)",
                    kernel.num_instrs(),
                    kernel.num_terminals(),
                    kernel.bytes()
                );
            }
        }
        None => {
            let _ = writeln!(report, "(no -o given; model not persisted)");
        }
    }
    session.finish(report)
}

fn cmd_eval(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let params = EvalParams::parse(&mut flags, 10_000)?;
    flags.finish()?;

    let kernel = session
        .ctx
        .kernel_for(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let patterns = params.patterns(kernel.num_inputs())?;
    // Compiled-kernel fast path: batch-evaluate the switched capacitance
    // of the whole stream, then scale by Vdd² (energy is monotone in C,
    // so the summary's max is the energy peak too).
    let summary = session.ctx.evaluate(&kernel, &patterns, params.jobs);
    session.finish(eval_report(
        kernel.name(),
        patterns.len(),
        &params,
        &summary,
    ))
}

/// Renders the `eval` report from a capacitance-domain summary. Shared
/// by the offline path and `charfree client eval` (the summary crosses
/// the wire bit-exactly), which is what keeps the two outputs
/// byte-identical.
fn eval_report(
    name: &str,
    vectors: usize,
    params: &EvalParams,
    summary: &charfree_engine::TraceSummary,
) -> String {
    let vdd = Voltage(params.vdd);
    let sum = vdd.volts() * vdd.volts() * summary.sum_ff;
    let peak = (vdd.volts() * vdd.volts() * summary.max_ff).max(0.0);
    let cycles = summary.transitions as f64;
    let (sp, st, period) = (params.sp, params.st, params.period);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "model `{name}` on {vectors} vectors (sp={sp}, st={st}, Vdd={} V, T={period} ns):",
        vdd.volts()
    );
    let _ = writeln!(report, "  average energy/cycle: {:.2} fJ", sum / cycles);
    let _ = writeln!(
        report,
        "  average power:        {:.3} uW",
        sum / cycles / period
    );
    let _ = writeln!(report, "  peak energy/cycle:    {peak:.2} fJ");
    let _ = writeln!(report, "  peak power:           {:.3} uW", peak / period);
    report
}

fn cmd_datasheet(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let top: usize = flags.parse("--top", 5)?;
    flags.finish()?;

    let model = session
        .ctx
        .model_for(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "power datasheet for `{}` ({} inputs, {} nodes{})",
        model.name(),
        model.num_inputs(),
        model.size(),
        if model.report().exact { ", exact" } else { "" }
    );
    let _ = writeln!(
        report,
        "  average switched capacitance: {:.2} fF",
        model.average_capacitance().femtofarads()
    );
    let _ = writeln!(
        report,
        "  worst-case switched capacitance: {:.2} fF",
        model.max_capacitance().femtofarads()
    );
    let _ = writeln!(report, "  top {top} capacitance levels:");
    for level in model.peak_spectrum(top) {
        let fmt_bits =
            |bits: &[bool]| -> String { bits.iter().map(|&b| if b { '1' } else { '0' }).collect() };
        let _ = writeln!(
            report,
            "    {:>9.2} fF  x{:<12} {} -> {}",
            level.capacitance.femtofarads(),
            level.count,
            fmt_bits(&level.witness.0),
            fmt_bits(&level.witness.1)
        );
    }
    session.finish(report)
}

fn cmd_expected(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    flags.finish()?;
    // The flat kernel evaluates the expectation without touching the
    // manager arena; grouped-ordering models (whose pair correlation is
    // not chain-expressible on the kernel) fall back to the arena path,
    // which needs a model-carrying source.
    let source = Source::infer(operand);
    let kernel = session.ctx.kernel_for(&source).map_err(|e| e.to_string())?;
    let c = if kernel.is_interleaved() {
        kernel.expected_capacitance(sp, st)
    } else if matches!(source, Source::KernelFile(_)) {
        return Err("grouped-ordering kernels cannot evaluate expectations; \
             pass the `.cfm` model instead"
            .to_owned());
    } else {
        // Cache-friendly fallback: with a store attached the model this
        // re-derives is a warm artifact hit, not a second build.
        session
            .ctx
            .model_for(&source)
            .map_err(|e| e.to_string())?
            .expected_capacitance(sp, st)
            .femtofarads()
    };
    session.finish(expected_report(kernel.name(), sp, st, c))
}

/// Renders the `expected` report (shared with `charfree client
/// expected`; `c` crosses the wire bit-exactly).
fn expected_report(name: &str, sp: f64, st: f64, c: f64) -> String {
    let mut report = String::new();
    let _ = writeln!(
        report,
        "analytic expected switched capacitance of `{name}` at (sp={sp}, st={st}): {c:.3} fF/cycle"
    );
    let _ = writeln!(report, "(symbolic — no simulation vectors involved)");
    report
}

fn cmd_trace(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let operand = flags.positional()?;
    let params = EvalParams::parse(&mut flags, 1000)?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    flags.finish()?;

    let kernel = session
        .ctx
        .kernel_for(&Source::infer(operand))
        .map_err(|e| e.to_string())?;
    let patterns = params.patterns(kernel.num_inputs())?;
    let values = session.ctx.trace(&kernel, &patterns, params.jobs);
    session.finish(trace_report(&values, &params, out_path.as_deref())?)
}

/// Renders the `trace` output (CSV to stdout, or a summary line after
/// writing `-o`) from per-transition switched capacitance. Shared with
/// `charfree client trace`, whose values cross the wire bit-exactly.
fn trace_report(
    values_ff: &[f64],
    params: &EvalParams,
    out_path: Option<&str>,
) -> Result<String, CliError> {
    let caps: Vec<_> = values_ff
        .iter()
        .copied()
        .map(charfree_netlist::units::Capacitance)
        .collect();
    let trace = charfree_sim::EnergyTrace::from_switched(&caps, Voltage(params.vdd), params.period);

    let mut csv = Vec::new();
    trace.write_csv(&mut csv).map_err(|e| e.to_string())?;
    match out_path {
        Some(path) => {
            fs::write(path, csv).map_err(|e| format!("{path}: {e}"))?;
            let mut report = String::new();
            let _ = writeln!(
                report,
                "wrote {} cycles to {path} (avg {:.3} uW, windowed-16 peak {:.2} fJ)",
                trace.len(),
                trace.average_power().microwatts(),
                trace.windowed_peak_energy(16).femtojoules()
            );
            Ok(report)
        }
        None => String::from_utf8(csv).map_err(|e| e.to_string()),
    }
}

fn cmd_sim(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let netlist_path = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 10_000)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    flags.finish()?;

    let netlist = session
        .ctx
        .load_netlist(&Source::infer(netlist_path))
        .map_err(|e| e.to_string())?;
    let sim = ZeroDelaySim::new(&netlist);
    let mut source =
        MarkovSource::new(netlist.num_inputs(), sp, st, seed).map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let trace = sim.switching_trace(&patterns);
    let avg = trace.iter().map(|c| c.femtofarads()).sum::<f64>() / trace.len() as f64;
    let peak = trace
        .iter()
        .map(|c| c.femtofarads())
        .fold(f64::NEG_INFINITY, f64::max);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "gate-level simulation of `{}`: {} vectors (sp={sp}, st={st})",
        netlist.name(),
        patterns.len()
    );
    let _ = writeln!(report, "  average switched capacitance: {avg:.2} fF/cycle");
    let _ = writeln!(report, "  peak switched capacitance:    {peak:.2} fF");
    session.finish(report)
}

fn cmd_bench(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let name = flags.positional()?;
    let format = flags.value("--format")?.unwrap_or("blif").to_owned();
    flags.finish()?;

    let mut ctx = PipelineCtx::new(Library::test_library());
    let netlist = ctx
        .parse_netlist(&Source::Bench(name.to_owned()))
        .map_err(|e| e.to_string())?;
    match format.as_str() {
        "blif" => Ok(blif::write(&netlist)),
        "verilog" | "v" => Ok(verilog::write(&netlist)),
        other => Err(format!("unknown format `{other}` (blif|verilog)")),
    }
}

fn cmd_throughput(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let mut session = Session::from_flags(&mut flags)?;
    let target = flags.positional()?;
    let vectors: usize = flags.parse("--vectors", 20_000)?;
    let jobs: usize = parse_jobs(&mut flags)?;
    let max: usize = flags.parse("--max", 0)?;
    let sp: f64 = flags.parse("--sp", 0.5)?;
    let st: f64 = flags.parse("--st", 0.5)?;
    let seed: u64 = flags.parse("--seed", 1)?;
    let out_path = flags.value("-o")?.map(str::to_owned);
    flags.finish()?;

    if max > 0 {
        session = session.with_options(BuildOptions {
            max_nodes: Some(max),
            ..BuildOptions::default()
        });
    }
    // The operand is a saved model, a netlist file, or a benchmark name.
    let model = session
        .ctx
        .model_for(&Source::infer(target))
        .map_err(|e| e.to_string())?;

    let mut source =
        MarkovSource::new(model.num_inputs(), sp, st, seed).map_err(|e| e.to_string())?;
    let patterns = source.sequence(vectors.max(2));
    let record = throughput::measure(&model, &patterns, jobs);

    let mut report = String::new();
    let _ = writeln!(
        report,
        "throughput of `{}` ({} inputs, {} ADD nodes) over {} transitions:",
        record.circuit, record.inputs, record.add_nodes, record.transitions
    );
    let _ = writeln!(
        report,
        "  kernel: {} instrs, {} terminals, {} bytes, compiled in {:.3} ms",
        record.kernel_instrs,
        record.kernel_terminals,
        record.kernel_bytes,
        record.compile_seconds * 1e3
    );
    let _ = writeln!(
        report,
        "  arena walk (1 thread):     {:>12.0} patterns/s",
        record.arena_pps
    );
    let _ = writeln!(
        report,
        "  compiled batch (1 thread): {:>12.0} patterns/s  ({:.1}x arena)",
        record.batch_pps,
        record.speedup_batch()
    );
    let _ = writeln!(
        report,
        "  compiled batch ({} threads): {:>10.0} patterns/s  ({:.1}x arena, {:.2}x batch)",
        record.jobs,
        record.parallel_pps,
        record.speedup_parallel(),
        record.scaling()
    );
    let _ = writeln!(
        report,
        "  parity with arena oracle: {}",
        if record.parity { "ok" } else { "FAILED" }
    );
    match session.ctx.store() {
        Some(store) => {
            let _ = writeln!(
                report,
                "  artifact cache: {} hit(s), {} miss(es) at {}",
                session.ctx.telemetry.cache_hits(),
                session.ctx.telemetry.cache_misses(),
                store.dir().display()
            );
        }
        None => {
            let _ = writeln!(
                report,
                "  artifact cache: off (enable with --cache-dir DIR)"
            );
        }
    }
    if let Some(path) = out_path {
        fs::write(&path, throughput::records_to_json(&[record]))
            .map_err(|e| format!("{path}: {e}"))?;
        let _ = writeln!(report, "wrote {path}");
    }
    session.finish(report)
}

/// Parses a `--batch-window` duration: `0` (no coalescing delay) or an
/// integer with a `us`/`ms`/`s` suffix.
fn parse_window(text: &str) -> Result<std::time::Duration, CliError> {
    let t = text.trim();
    if t == "0" {
        return Ok(std::time::Duration::ZERO);
    }
    let bad = || format!("bad duration `{text}` for `--batch-window` (use 0, 200us, 5ms or 1s)");
    let (digits, micros_per_unit) = if let Some(n) = t.strip_suffix("us") {
        (n, 1u64)
    } else if let Some(n) = t.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = t.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        return Err(bad());
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    n.checked_mul(micros_per_unit)
        .map(std::time::Duration::from_micros)
        .ok_or_else(bad)
}

/// Parses a byte size: plain bytes or an integer with a binary `K`/`M`/
/// `G` suffix.
fn parse_byte_size(text: &str) -> Result<usize, CliError> {
    let t = text.trim();
    let bad = || format!("bad byte size `{text}` (use plain bytes or a K/M/G suffix)");
    let (digits, mult) = match t.chars().last() {
        Some('K' | 'k') => (&t[..t.len() - 1], 1usize << 10),
        Some('M' | 'm') => (&t[..t.len() - 1], 1usize << 20),
        Some('G' | 'g') => (&t[..t.len() - 1], 1usize << 30),
        _ => (t, 1),
    };
    let n: usize = digits.parse().map_err(|_| bad())?;
    n.checked_mul(mult).ok_or_else(bad)
}

fn cmd_serve(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let library = load_library(&mut flags)?;
    let addr = flags
        .value("--addr")?
        .unwrap_or("127.0.0.1:7878")
        .to_owned();
    let jobs = parse_jobs(&mut flags)?;
    let batch_window = parse_window(flags.value("--batch-window")?.unwrap_or("200us"))?;
    let max_inflight: usize = flags.parse("--max-inflight", 64)?;
    let max_vectors: usize = flags.parse("--max-vectors", 4_000_000)?;
    let model_bytes_budget =
        parse_byte_size(flags.value("--model-bytes-budget")?.unwrap_or("64M"))?;
    let cache_dir = flags.value("--cache-dir")?.map(std::path::PathBuf::from);
    let quiet = flags.flag("--quiet");
    let breaker_failures: u32 = flags.parse("--breaker-failures", 3)?;
    let breaker_open_ms: u64 = flags.parse("--breaker-open-ms", 500)?;
    let reactor_threads: usize = flags.parse("--reactor-threads", 2)?;
    let idle_timeout_ms: u64 = flags.parse("--idle-timeout-ms", 30_000)?;
    let metrics_addr = flags.value("--metrics-addr")?.map(str::to_owned);
    flags.finish()?;
    if reactor_threads == 0 {
        return Err("`--reactor-threads` must be at least 1".to_owned());
    }
    if idle_timeout_ms == 0 {
        return Err("`--idle-timeout-ms` must be at least 1".to_owned());
    }
    if max_inflight == 0 {
        return Err("`--max-inflight` must be at least 1".to_owned());
    }
    if breaker_failures == 0 {
        return Err("`--breaker-failures` must be at least 1".to_owned());
    }
    if max_vectors < 2 {
        return Err(
            "`--max-vectors` must be at least 2 (evaluation needs a pattern pair)".to_owned(),
        );
    }
    let jobs = if jobs == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        jobs
    };
    let config = charfree_serve::ServeConfig {
        addr,
        jobs,
        batch_window,
        max_inflight,
        max_vectors,
        model_bytes_budget,
        library,
        cache_dir,
        idle_timeout: std::time::Duration::from_millis(idle_timeout_ms),
        max_connections: 64,
        reactor_threads,
        metrics_addr,
        log: !quiet,
        breaker: charfree_serve::BreakerConfig {
            failure_threshold: breaker_failures,
            open_base: std::time::Duration::from_millis(breaker_open_ms.max(1)),
            ..charfree_serve::BreakerConfig::default()
        },
        fault_io: None,
    };
    let server = charfree_serve::Server::start(config).map_err(|e| format!("serve: {e}"))?;
    // SIGTERM/SIGINT trigger the same graceful drain a `shutdown`
    // request does, so orchestrators that kill with a signal still get
    // a flushed queue and exit code 0.
    #[cfg(unix)]
    server.drain_on_signals();
    // Blocks until the server drains; a clean return is the protocol's
    // "exited 0".
    server.wait();
    Ok(String::new())
}

/// Turns a typed server error into a CLI failure message.
fn expect_ok(response: charfree_serve::Response) -> Result<charfree_serve::Response, CliError> {
    match response {
        charfree_serve::Response::Error {
            kind,
            message,
            retry_after_ms,
        } => {
            let mut text = format!("server error ({}): {message}", kind.name());
            if let Some(ms) = retry_after_ms {
                let _ = write!(text, " (retry after {ms} ms)");
            }
            Err(text)
        }
        ok => Ok(ok),
    }
}

fn parse_deadline_ms(flags: &mut Flags<'_>) -> Result<Option<u64>, CliError> {
    match flags.value("--deadline-ms")? {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("bad value `{v}` for `--deadline-ms`")),
    }
}

fn cmd_client(args: &[String]) -> Result<String, CliError> {
    use charfree_serve::{Request, Response, WireBuildOptions, WireEvalParams};
    let (sub, rest) = args.split_first().ok_or_else(|| {
        "client: missing subcommand (load|eval|trace|expected|stats|shutdown)".to_owned()
    })?;
    let mut flags = Flags::new(rest);
    let addr = flags
        .value("--addr")?
        .unwrap_or("127.0.0.1:7878")
        .to_owned();
    // Retries cover shed responses (`overloaded`, `draining`,
    // `model-unavailable`) and dropped connections, with capped
    // exponential backoff + jitter honoring the server's retry_after_ms
    // hint. Default 0 keeps the historical single-shot behavior.
    let retries: u32 = flags.parse("--retries", 0)?;
    let proto = charfree_serve::Proto::parse(flags.value("--proto")?.unwrap_or("json"))?;
    let policy = charfree_serve::RetryPolicy {
        retries,
        ..charfree_serve::RetryPolicy::default()
    };
    let connect = |addr: &str| {
        charfree_serve::Client::connect_with(addr, proto)
            .map_err(|e| format!("connect {addr}: {e}"))
    };
    match sub.as_str() {
        "load" | "build" => {
            let operand = flags.positional()?.to_owned();
            let max: usize = flags.parse("--max", 0)?;
            let node_budget: u64 = flags.parse("--node-budget", 0)?;
            let strict = flags.flag("--strict");
            let upper_bound = flags.flag("--upper-bound");
            let deadline_ms = parse_deadline_ms(&mut flags)?;
            flags.finish()?;
            let request = Request::Load {
                source: operand,
                options: WireBuildOptions {
                    max_nodes: (max > 0).then_some(max),
                    upper_bound,
                    node_budget: (node_budget > 0).then_some(node_budget),
                    strict,
                    deadline_ms,
                },
            };
            let mut client = connect(&addr)?;
            match expect_ok(
                client
                    .request_with_retries(&request, &policy)
                    .map_err(|e| e.to_string())?,
            )? {
                Response::Load {
                    name,
                    instrs,
                    terminals,
                    bytes,
                    apply_steps,
                    resident,
                } => {
                    let mut report = String::new();
                    let temp = if resident {
                        "registry-resident".to_owned()
                    } else if apply_steps == 0 {
                        "warm, 0 apply steps".to_owned()
                    } else {
                        format!("cold, {apply_steps} apply steps")
                    };
                    let _ = writeln!(
                        report,
                        "loaded `{name}`: {instrs} instrs, {terminals} terminals, {bytes} bytes ({temp})"
                    );
                    Ok(report)
                }
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        "eval" | "trace" => {
            let want_trace = sub == "trace";
            let operand = flags.positional()?.to_owned();
            let params = EvalParams::parse(&mut flags, if want_trace { 1000 } else { 10_000 })?;
            let deadline_ms = parse_deadline_ms(&mut flags)?;
            // The same build flags `client load` takes, so an eval can
            // target exactly the model a prior load pinned.
            let max: usize = flags.parse("--max", 0)?;
            let node_budget: u64 = flags.parse("--node-budget", 0)?;
            let strict = flags.flag("--strict");
            let upper_bound = flags.flag("--upper-bound");
            let out_path = if want_trace {
                flags.value("-o")?.map(str::to_owned)
            } else {
                None
            };
            flags.finish()?;
            let options = WireBuildOptions {
                max_nodes: (max > 0).then_some(max),
                upper_bound,
                node_budget: (node_budget > 0).then_some(node_budget),
                strict,
                deadline_ms: None,
            };
            let wire = WireEvalParams {
                vectors: params.vectors,
                sp: params.sp,
                st: params.st,
                seed: params.seed,
                deadline_ms,
            };
            let request = if want_trace {
                Request::Trace {
                    source: operand,
                    options,
                    params: wire,
                }
            } else {
                Request::Eval {
                    source: operand,
                    options,
                    params: wire,
                }
            };
            let mut client = connect(&addr)?;
            match expect_ok(
                client
                    .request_with_retries(&request, &policy)
                    .map_err(|e| e.to_string())?,
            )? {
                Response::Eval {
                    name,
                    transitions,
                    sum_ff,
                    max_ff,
                } => {
                    // The summary crossed the wire bit-exactly; the Vdd²/
                    // period scaling happens here, through the same
                    // formatter the offline path uses, so stdout is
                    // byte-identical to `charfree eval`.
                    let summary = charfree_engine::TraceSummary {
                        transitions,
                        sum_ff,
                        max_ff,
                    };
                    Ok(eval_report(&name, transitions + 1, &params, &summary))
                }
                Response::Trace { values, .. } => {
                    trace_report(&values, &params, out_path.as_deref())
                }
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        "expected" => {
            let operand = flags.positional()?.to_owned();
            let sp: f64 = flags.parse("--sp", 0.5)?;
            let st: f64 = flags.parse("--st", 0.5)?;
            flags.finish()?;
            let mut client = connect(&addr)?;
            let request = Request::Expected {
                source: operand,
                sp,
                st,
            };
            match expect_ok(
                client
                    .request_with_retries(&request, &policy)
                    .map_err(|e| e.to_string())?,
            )? {
                Response::Expected { name, value } => Ok(expected_report(&name, sp, st, value)),
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        "stats" => {
            flags.finish()?;
            let mut client = connect(&addr)?;
            match expect_ok(
                client
                    .request_with_retries(&Request::Stats, &policy)
                    .map_err(|e| e.to_string())?,
            )? {
                Response::Stats(payload) => Ok(format!("{}\n", payload.to_line())),
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        "metrics" => {
            flags.finish()?;
            let mut client = connect(&addr)?;
            match expect_ok(
                client
                    .request_with_retries(&Request::Metrics, &policy)
                    .map_err(|e| e.to_string())?,
            )? {
                Response::Metrics(text) => Ok(text),
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        "shutdown" => {
            flags.finish()?;
            let mut client = connect(&addr)?;
            match expect_ok(
                client
                    .request(&Request::Shutdown)
                    .map_err(|e| e.to_string())?,
            )? {
                Response::Shutdown => Ok(format!("server at {addr} acknowledged shutdown\n")),
                other => Err(format!("unexpected response {other:?}")),
            }
        }
        other => Err(format!(
            "client: unknown subcommand `{other}` (load|eval|trace|expected|stats|metrics|shutdown)"
        )),
    }
}

/// Parses a seed flag accepting both decimal and `0x`-prefixed hex
/// (`--seed 0xC0FFEE` is the documented CI invocation).
fn parse_seed(flags: &mut Flags<'_>, name: &str, default: u64) -> Result<u64, CliError> {
    match flags.value(name)? {
        None => Ok(default),
        Some(v) => {
            let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => v.parse(),
            };
            parsed.map_err(|_| format!("bad value `{v}` for `{name}`"))
        }
    }
}

fn cmd_conform(args: &[String]) -> Result<String, CliError> {
    let mut flags = Flags::new(args);
    let cases_given = flags.value("--cases")?.map(str::to_owned);
    let seed = parse_seed(&mut flags, "--seed", 0xC0FFEE)?;
    let vectors = flags.parse("--vectors", 48usize)?;
    let corpus = flags.value("--corpus")?.map(std::path::PathBuf::from);
    let shrink = flags.flag("--shrink");
    let serve = !flags.flag("--no-serve");
    let no_campaigns = flags.flag("--no-campaigns");
    let campaign_mode = flags.value("--campaign")?.unwrap_or("standard").to_owned();
    let chaos_faults: u64 = flags.parse("--chaos-faults", 200)?;
    flags.finish()?;
    let mut cases = match &cases_given {
        None => 64usize,
        Some(v) => v
            .parse()
            .map_err(|_| format!("bad value `{v}` for `--cases`"))?,
    };
    let (campaigns, chaos) = match campaign_mode.as_str() {
        "standard" => (!no_campaigns, false),
        "chaos" => {
            // Chaos-only mode skips the differential sweep unless an
            // explicit `--cases` asks for one — this is the fast CI
            // resilience smoke.
            if cases_given.is_none() {
                cases = 0;
            }
            (false, true)
        }
        "all" => (!no_campaigns, true),
        other => {
            return Err(format!(
                "bad value `{other}` for `--campaign` (standard|chaos|all)"
            ))
        }
    };
    let workdir = std::env::temp_dir().join(format!("charfree-conform-{}", std::process::id()));
    let config = charfree_conform::ConformConfig {
        cases,
        seed,
        vectors,
        corpus,
        shrink,
        serve,
        campaigns,
        chaos,
        chaos_faults,
        workdir: workdir.clone(),
    };
    let result = charfree_conform::run(&config);
    let _ = fs::remove_dir_all(&workdir);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&s(&["help"])).expect("help works").contains("usage"));
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn conform_subcommand_runs_a_tiny_sweep() {
        let report = run(&s(&[
            "conform",
            "--cases",
            "2",
            "--seed",
            "0xC0FFEE",
            "--vectors",
            "8",
            "--no-serve",
            "--no-campaigns",
        ]))
        .expect("tiny sweep passes");
        assert!(report.contains("2 generated cases"), "report: {report}");
        assert!(run(&s(&["conform", "--seed", "0xZZ"])).is_err());
        assert!(run(&s(&["conform", "--frobnicate"])).is_err());
    }

    #[test]
    fn bench_emits_parseable_netlists() {
        let text = run(&s(&["bench", "cm85"])).expect("bench works");
        assert!(blif::parse(&text).is_ok());
        let text = run(&s(&["bench", "decod", "--format", "verilog"])).expect("verilog");
        assert!(verilog::parse(&text).is_ok());
        assert!(run(&s(&["bench", "nope"])).is_err());
    }

    #[test]
    fn end_to_end_model_eval_datasheet() {
        let dir = std::env::temp_dir().join("charfree-cli-test");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        let model_path = dir.join("decod.cfm");
        let blif_text = run(&s(&["bench", "decod"])).expect("bench");
        fs::write(&netlist_path, blif_text).expect("write blif");

        let report = run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--max",
            "300",
        ]))
        .expect("model builds");
        assert!(report.contains("built power model"));
        assert!(report.contains("wrote"));

        let report = run(&s(&[
            "eval",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "500",
            "--st",
            "0.3",
        ]))
        .expect("eval runs");
        assert!(report.contains("average power"));

        let report = run(&s(&[
            "datasheet",
            model_path.to_str().expect("utf8"),
            "--top",
            "3",
        ]))
        .expect("datasheet runs");
        assert!(report.contains("worst-case"));

        let report = run(&s(&[
            "sim",
            netlist_path.to_str().expect("utf8"),
            "--vectors",
            "500",
        ]))
        .expect("sim runs");
        assert!(report.contains("gate-level simulation"));
    }

    #[test]
    fn node_budget_degrades_and_strict_fails() {
        let dir = std::env::temp_dir().join("charfree-cli-test-budget");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("cm150.blif");
        fs::write(&netlist_path, run(&s(&["bench", "cm150"])).expect("bench")).expect("write");
        let path = netlist_path.to_str().expect("utf8");

        // Over-budget build degrades with a warning instead of failing.
        let report = run(&s(&[
            "model",
            path,
            "--node-budget",
            "300",
            "--upper-bound",
        ]))
        .expect("degraded build still succeeds");
        assert!(report.contains("built power model"), "{report}");
        assert!(report.contains("warning: degraded build"), "{report}");

        // The same budget in strict mode surfaces the trip as an error.
        let err = run(&s(&["model", path, "--node-budget", "300", "--strict"]))
            .expect_err("strict build fails");
        assert!(err.contains("budget exceeded"), "{err}");

        // An unbudgeted bounded build stays warning-free.
        let report = run(&s(&["model", path, "--max", "300"])).expect("builds");
        assert!(!report.contains("warning"), "{report}");
    }

    #[test]
    fn time_budget_flag_is_validated() {
        let dir = std::env::temp_dir().join("charfree-cli-test-budget");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        fs::write(&netlist_path, run(&s(&["bench", "decod"])).expect("bench")).expect("write");
        let path = netlist_path.to_str().expect("utf8");
        assert!(run(&s(&["model", path, "--time-budget", "-1"])).is_err());
        assert!(run(&s(&["model", path, "--time-budget", "abc"])).is_err());
        // A generous deadline leaves a small build untouched.
        let report = run(&s(&["model", path, "--time-budget", "120"])).expect("builds");
        assert!(report.contains("(exact)"), "{report}");
    }

    #[test]
    fn flag_errors_are_reported() {
        assert!(run(&s(&["eval"])).is_err());
        assert!(run(&s(&["model", "/nonexistent.blif"])).is_err());
        let dir = std::env::temp_dir().join("charfree-cli-test2");
        fs::create_dir_all(&dir).expect("tmp dir");
        let p = dir.join("x.blif");
        fs::write(&p, run(&s(&["bench", "parity"])).expect("bench")).expect("write");
        assert!(run(&s(&["model", p.to_str().expect("utf8"), "--max", "abc"])).is_err());
        assert!(run(&s(&["model", p.to_str().expect("utf8"), "--bogus"])).is_err());
    }

    #[test]
    fn explicit_jobs_zero_is_rejected_at_parse_time() {
        // `--jobs 0` used to reach the engine; now every subcommand that
        // takes the flag rejects it before any model is built.
        for cmd in [
            &["eval", "decod", "--jobs", "0"][..],
            &["trace", "decod", "--jobs", "0"][..],
            &["throughput", "decod", "--jobs", "0"][..],
            &["serve", "--jobs", "0"][..],
        ] {
            let err = run(&s(cmd)).expect_err("--jobs 0 must be rejected");
            assert!(err.contains("--jobs 0"), "{cmd:?}: {err}");
            assert!(err.contains("N >= 1"), "{cmd:?}: {err}");
        }
        // Omitting the flag (auto) and N >= 1 both still work.
        assert!(run(&s(&["eval", "decod", "--vectors", "50"])).is_ok());
        assert!(run(&s(&["eval", "decod", "--vectors", "50", "--jobs", "2"])).is_ok());
    }

    #[test]
    fn window_and_byte_size_parsers() {
        use std::time::Duration;
        assert_eq!(parse_window("0").expect("zero"), Duration::ZERO);
        assert_eq!(
            parse_window("200us").expect("us"),
            Duration::from_micros(200)
        );
        assert_eq!(parse_window("5ms").expect("ms"), Duration::from_millis(5));
        assert_eq!(parse_window("1s").expect("s"), Duration::from_secs(1));
        assert!(parse_window("200").is_err());
        assert!(parse_window("-1ms").is_err());
        assert!(parse_window("fast").is_err());

        assert_eq!(parse_byte_size("4096").expect("bytes"), 4096);
        assert_eq!(parse_byte_size("64K").expect("K"), 64 << 10);
        assert_eq!(parse_byte_size("64M").expect("M"), 64 << 20);
        assert_eq!(parse_byte_size("2G").expect("G"), 2 << 30);
        assert!(parse_byte_size("lots").is_err());
        assert!(parse_byte_size("-1M").is_err());
    }
}

#[cfg(test)]
mod serve_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    fn cat(groups: &[&[&str]]) -> Vec<String> {
        groups
            .iter()
            .flat_map(|g| g.iter().map(|p| p.to_string()))
            .collect()
    }

    /// `charfree client <cmd>` against a live server must print exactly
    /// what the offline subcommand prints — byte-identical stdout is the
    /// serving layer's core contract.
    #[test]
    fn client_output_is_byte_identical_to_offline() {
        let mut config = charfree_serve::ServeConfig::new(Library::test_library());
        config.addr = "127.0.0.1:0".to_owned();
        config.log = false;
        config.batch_window = std::time::Duration::from_micros(200);
        let server = charfree_serve::Server::start(config).expect("binds");
        let addr = server.addr().to_string();

        let eval_args: &[&str] = &[
            "decod",
            "--vectors",
            "500",
            "--sp",
            "0.4",
            "--st",
            "0.3",
            "--seed",
            "7",
            "--vdd",
            "2.5",
            "--period",
            "8.5",
        ];
        let offline = run(&cat(&[&["eval"], eval_args])).expect("offline eval");
        let served =
            run(&cat(&[&["client", "eval"], eval_args, &["--addr", &addr]])).expect("served eval");
        assert_eq!(offline, served, "eval outputs diverge");

        let trace_args: &[&str] = &["cm85", "--vectors", "200", "--seed", "3"];
        let offline = run(&cat(&[&["trace"], trace_args])).expect("offline trace");
        let served = run(&cat(&[
            &["client", "trace"],
            trace_args,
            &["--addr", &addr],
        ]))
        .expect("served trace");
        assert_eq!(offline, served, "trace CSVs diverge");

        let expected_args: &[&str] = &["decod", "--sp", "0.2", "--st", "0.3"];
        let offline = run(&cat(&[&["expected"], expected_args])).expect("offline expected");
        let served = run(&cat(&[
            &["client", "expected"],
            expected_args,
            &["--addr", &addr],
        ]))
        .expect("served expected");
        assert_eq!(offline, served, "expected outputs diverge");

        let report = run(&s(&["client", "load", "decod", "--addr", &addr])).expect("load");
        assert!(report.contains("loaded `decod`"), "{report}");
        let report = run(&s(&["client", "stats", "--addr", &addr])).expect("stats");
        assert!(report.contains("\"completed\""), "{report}");

        let report = run(&s(&["client", "shutdown", "--addr", &addr])).expect("shutdown");
        assert!(report.contains("acknowledged shutdown"), "{report}");
        server.wait();
    }

    #[test]
    fn client_reports_typed_server_errors() {
        let mut config = charfree_serve::ServeConfig::new(Library::test_library());
        config.addr = "127.0.0.1:0".to_owned();
        config.log = false;
        let server = charfree_serve::Server::start(config).expect("binds");
        let addr = server.addr().to_string();

        let err = run(&s(&["client", "eval", "no-such-bench", "--addr", &addr]))
            .expect_err("unknown operand fails");
        assert!(err.contains("server error (bad-request)"), "{err}");

        run(&s(&["client", "shutdown", "--addr", &addr])).expect("shutdown");
        server.wait();
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| p.to_string()).collect()
    }

    fn model_file() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("charfree-cli-test3");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("cm85.blif");
        let model_path = dir.join("cm85.cfm");
        fs::write(&netlist_path, run(&s(&["bench", "cm85"])).expect("bench")).expect("write");
        run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--max",
            "200",
        ]))
        .expect("model builds");
        model_path
    }

    #[test]
    fn expected_subcommand_is_monotone_in_activity() {
        let model_path = model_file();
        let low = run(&s(&[
            "expected",
            model_path.to_str().expect("utf8"),
            "--st",
            "0.1",
        ]))
        .expect("expected runs");
        let high = run(&s(&[
            "expected",
            model_path.to_str().expect("utf8"),
            "--st",
            "0.8",
        ]))
        .expect("expected runs");
        let grab = |text: &str| -> f64 {
            text.split(':')
                .nth(1)
                .expect("value present")
                .split_whitespace()
                .next()
                .expect("number")
                .parse()
                .expect("parses")
        };
        assert!(grab(&high) > grab(&low), "more activity, more power");
    }

    #[test]
    fn throughput_subcommand_reports_and_writes_json() {
        let dir = std::env::temp_dir().join("charfree-cli-test-throughput");
        fs::create_dir_all(&dir).expect("tmp dir");
        let json_path = dir.join("BENCH_engine.json");
        let report = run(&s(&[
            "throughput",
            "decod",
            "--vectors",
            "300",
            "--jobs",
            "2",
            "-o",
            json_path.to_str().expect("utf8"),
        ]))
        .expect("throughput runs");
        assert!(report.contains("compiled batch"), "{report}");
        assert!(report.contains("parity with arena oracle: ok"), "{report}");
        let json = fs::read_to_string(&json_path).expect("json written");
        assert!(json.contains("\"parity\": true"), "{json}");
        assert!(json.contains("\"batch_patterns_per_sec\""), "{json}");

        // A saved .cfm works as the operand too.
        let model_path = model_file();
        let report = run(&s(&[
            "throughput",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "300",
        ]))
        .expect("throughput on .cfm runs");
        assert!(report.contains("throughput of `cm85`"), "{report}");

        assert!(run(&s(&["throughput", "no-such-bench"])).is_err());
    }

    #[test]
    fn model_kernel_flag_writes_loadable_kernel() {
        let dir = std::env::temp_dir().join("charfree-cli-test-kernel");
        fs::create_dir_all(&dir).expect("tmp dir");
        let netlist_path = dir.join("decod.blif");
        let model_path = dir.join("decod.cfm");
        fs::write(&netlist_path, run(&s(&["bench", "decod"])).expect("bench")).expect("write");
        let report = run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "-o",
            model_path.to_str().expect("utf8"),
            "--kernel",
        ]))
        .expect("model --kernel runs");
        assert!(report.contains("wrote kernel"), "{report}");
        let kernel_path = dir.join("decod.cfk");
        let text = fs::read(&kernel_path).expect("kernel written");
        let kernel = charfree_engine::Kernel::load(text.as_slice()).expect("kernel loads");
        assert_eq!(kernel.num_inputs(), 5);

        // The `.cfk` is a first-class evaluation input: eval/trace/expected
        // produce the same reports from the kernel as from the model.
        let kpath = kernel_path.to_str().expect("utf8");
        let mpath = model_path.to_str().expect("utf8");
        for cmd in [
            &["eval", "--vectors", "400"][..],
            &["trace", "--vectors", "200"][..],
            &["expected", "--st", "0.3"][..],
        ] {
            let (name, flags) = cmd.split_first().expect("non-empty");
            let mut from_kernel = vec![name.to_string(), kpath.to_owned()];
            let mut from_model = vec![name.to_string(), mpath.to_owned()];
            from_kernel.extend(flags.iter().map(|f| f.to_string()));
            from_model.extend(flags.iter().map(|f| f.to_string()));
            assert_eq!(
                run(&from_kernel).expect("kernel input runs"),
                run(&from_model).expect("model input runs"),
                "`{name}` diverged between .cfk and .cfm inputs"
            );
        }

        // --kernel without -o is rejected.
        assert!(run(&s(&[
            "model",
            netlist_path.to_str().expect("utf8"),
            "--kernel",
        ]))
        .is_err());
    }

    #[test]
    fn trace_is_deterministic_across_jobs() {
        let model_path = model_file();
        let path = model_path.to_str().expect("utf8");
        let one = run(&s(&["trace", path, "--vectors", "600", "--jobs", "1"])).expect("trace -j1");
        let eight =
            run(&s(&["trace", path, "--vectors", "600", "--jobs", "8"])).expect("trace -j8");
        assert_eq!(one, eight, "worker count must not change the trace");
    }

    #[test]
    fn operands_accept_bench_names_directly() {
        // The pipeline's source inference makes every build/eval command
        // take netlists and benchmark names, not just saved artifacts.
        let report = run(&s(&["eval", "decod", "--vectors", "200"])).expect("eval on bench");
        assert!(report.contains("model `decod`"), "{report}");
        let report = run(&s(&["datasheet", "decod"])).expect("datasheet on bench");
        assert!(report.contains("worst-case"), "{report}");
        let report = run(&s(&["expected", "decod", "--st", "0.4"])).expect("expected on bench");
        assert!(report.contains("fF/cycle"), "{report}");
    }

    #[test]
    fn cache_dir_makes_warm_runs_byte_identical() {
        let dir = std::env::temp_dir().join("charfree-cli-test-cache");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tmp dir");
        let cache = dir.join("store");
        let cache = cache.to_str().expect("utf8");

        let eval = |tag: &str| {
            run(&s(&[
                "eval",
                "decod",
                "--vectors",
                "300",
                "--cache-dir",
                cache,
            ]))
            .unwrap_or_else(|e| panic!("{tag} eval: {e}"))
        };
        let cold = eval("cold");
        // The store now holds both artifacts...
        let entries: Vec<_> = fs::read_dir(cache)
            .expect("store created")
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        assert!(entries
            .iter()
            .any(|p| p.extension().is_some_and(|e| e == "cfm")));
        assert!(entries
            .iter()
            .any(|p| p.extension().is_some_and(|e| e == "cfk")));
        // ...and a warm run reproduces stdout byte for byte.
        assert_eq!(cold, eval("warm"));

        // The throughput report surfaces the cache counters.
        let report = run(&s(&[
            "throughput",
            "decod",
            "--vectors",
            "200",
            "--cache-dir",
            cache,
            "--max",
            "300",
        ]))
        .expect("throughput with cache");
        assert!(report.contains("artifact cache:"), "{report}");
        let report = run(&s(&["throughput", "decod", "--vectors", "200"])).expect("throughput");
        assert!(report.contains("artifact cache: off"), "{report}");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn telemetry_flag_is_validated() {
        assert!(run(&s(&[
            "eval",
            "decod",
            "--vectors",
            "200",
            "--telemetry",
            "json"
        ]))
        .is_ok());
        let err = run(&s(&["eval", "decod", "--telemetry", "xml"])).expect_err("bad format");
        assert!(err.contains("telemetry"), "{err}");
    }

    #[test]
    fn trace_subcommand_emits_csv() {
        let model_path = model_file();
        let csv = run(&s(&[
            "trace",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "64",
        ]))
        .expect("trace runs");
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 64); // header + 63 transitions
        assert!(lines[0].starts_with("cycle,"));

        // File output variant.
        let out = std::env::temp_dir().join("charfree-cli-test3/trace.csv");
        let report = run(&s(&[
            "trace",
            model_path.to_str().expect("utf8"),
            "--vectors",
            "64",
            "-o",
            out.to_str().expect("utf8"),
        ]))
        .expect("trace writes");
        assert!(report.contains("wrote"));
        assert!(fs::read_to_string(&out)
            .expect("written")
            .starts_with("cycle,"));
    }
}
