//! The `charfree` command-line tool. See `charfree --help` or the
//! [`charfree::cli`] module docs.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match charfree::cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(1);
        }
    }
}
