//! # charfree — characterization-free behavioral power modeling
//!
//! A from-scratch Rust reproduction of
//! *A. Bogliolo, L. Benini, G. De Micheli, "Characterization-Free
//! Behavioral Power Modeling", DATE 1998*: analytical, white-box
//! construction of pattern-dependent RT-level power models for
//! combinational macros, with conservative pattern-dependent upper bounds,
//! built symbolically from the gate-level netlist — no simulation-based
//! characterization.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`dd`] — reduced ordered BDDs/ADDs with statistics, measures and node
//!   collapsing (the CUDD substitute);
//! * [`netlist`] — the golden-model substrate: cell library with pin
//!   capacitances, BLIF I/O, capacitive back-annotation, and
//!   MCNC-equivalent benchmark generators;
//! * [`sim`] — zero-delay (golden) and unit-delay gate-level simulation,
//!   Markov pattern sources with controlled `(sp, st)` statistics;
//! * [`engine`] — compiled flat ADD kernels with packed-batch,
//!   multi-threaded trace evaluation (the production evaluation path;
//!   the arena model stays the reference oracle);
//! * the core items at the crate root — [`ModelBuilder`], [`AddPowerModel`],
//!   [`ApproxStrategy`], the [`ConstantModel`]/[`LinearModel`] baselines,
//!   the [`evaluate`] accuracy harness and [`RtlDesign`] composition.
//!
//! ## Quickstart
//!
//! ```
//! use charfree::{ModelBuilder, PowerModel};
//! use charfree::netlist::benchmarks::paper_unit;
//!
//! // The paper's Fig. 2 example unit: an exact analytical power model.
//! let model = ModelBuilder::new(&paper_unit()).build();
//! let c = model.capacitance(&[true, true], &[false, false]);
//! assert_eq!(c.femtofarads(), 90.0); // Example 1: C(11, 00) = 90 fF
//! ```
//!
//! See `examples/` for runnable scenarios, `DESIGN.md` for the system
//! inventory and the refinements over the paper, and `EXPERIMENTS.md` for
//! the paper-vs-measured record of every table and figure.

#![warn(missing_docs)]
// `.unwrap()` is banned crate-wide; `.expect()` remains available for
// invariants with a stated justification, and tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cli;

pub use charfree_core::*;

/// Decision-diagram substrate (re-export of `charfree-dd`).
pub use charfree_dd as dd;

/// Gate-level netlist substrate (re-export of `charfree-netlist`).
pub use charfree_netlist as netlist;

/// Simulation and pattern sources (re-export of `charfree-sim`).
pub use charfree_sim as sim;

/// Compiled ADD kernels and the batched, multi-threaded trace engine
/// (re-export of `charfree-engine`).
pub use charfree_engine as engine;

/// Typed staged pipeline and content-addressed artifact store — the one
/// build/eval path every consumer routes through (re-export of
/// `charfree-pipeline`).
pub use charfree_pipeline as pipeline;
