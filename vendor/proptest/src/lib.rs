//! Offline stand-in for the subset of `proptest` 1.x used by this
//! workspace: the `proptest!`/`prop_oneof!` macros, `Strategy` with
//! `prop_map`/`prop_recursive`, range and tuple strategies,
//! `collection::vec`, `prop_assert*`/`prop_assume!` and a deterministic
//! case runner.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. The trade-offs versus upstream: failures are **not
//! shrunk** (the failing case's seed and generated values are printed
//! instead), and random streams are deterministic per test name rather
//! than persisted in a regressions file. Test semantics — N generated
//! cases, rejection via `prop_assume!`, failure on the first violated
//! assertion — are preserved.

use std::fmt::Debug;
use std::rc::Rc;

pub mod collection;

/// Deterministic per-case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed (SplitMix64-expanded
    /// xoshiro256++).
    pub fn new(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, width)`; rejection-sampled, exactly uniform.
    pub fn below(&mut self, width: u64) -> u64 {
        assert!(width > 0, "below(0)");
        let zone = u64::MAX - u64::MAX % width;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % width;
            }
        }
    }

    /// Uniform draw in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How a generated case ended when it did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the message describes the violation.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration; only the case count is configurable.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each test must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A value generator. Unlike upstream there is no value tree / shrinking;
/// `generate` directly produces a value.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Debug,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` wraps
    /// an inner strategy into the composite case, applied up to `depth`
    /// levels. `desired_size` and `expected_branch` are accepted for
    /// upstream signature compatibility but only bound, not steer,
    /// generation.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Mixing the leaf back in at every level spreads generated
            // sizes between single nodes and full-depth trees.
            let inner = Union::new(vec![leaf.clone(), level]).boxed();
            level = f(inner).boxed();
        }
        level
    }
}

/// Type-erased, reference-counted strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Strategy mapping another strategy's values ([`Strategy::prop_map`]).
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between same-valued strategies ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A uniform union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// The effective case count: the `PROPTEST_CASES` environment variable
/// (upstream's knob, honored here too so CI can deepen every suite
/// without touching source) overrides the per-test configuration when it
/// parses to a positive integer; anything else is ignored.
fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => configured,
        },
        Err(_) => configured,
    }
}

/// Drives one property: generates cases until `config.cases` accepted
/// cases pass (or `PROPTEST_CASES` accepted cases when that environment
/// variable is set to a positive integer), panicking on the first
/// failure. Deterministic per test name. Called by the expansion of
/// [`proptest!`]; not meant for direct use.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let config = ProptestConfig {
        cases: effective_cases(config.cases),
    };
    // FNV-1a over the test name keeps streams stable across runs and
    // independent across tests.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }

    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let max_rejects = 100 * config.cases.max(1);
    let mut case_index = 0u64;
    while accepted < config.cases {
        let case_seed = seed ^ case_index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = TestRng::new(case_seed);
        case_index += 1;
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected >= max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected} rejects for {accepted} accepted)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case #{case_index} \
                     (seed {case_seed:#x}): {msg}"
                );
            }
        }
    }
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (without failing the test) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_proptest`] over generated arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest($config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                    let __proptest_case = || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        return ::core::result::Result::Ok(());
                    };
                    __proptest_case()
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// The glob-importable surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, BoxedStrategy,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn proptest_cases_env_overrides_only_when_sane() {
        // All scenarios in one test: the variable is process-global, so
        // splitting these across parallel #[test]s would race.
        let saved = std::env::var("PROPTEST_CASES").ok();
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(crate::effective_cases(32), 32, "unset: passthrough");
        std::env::set_var("PROPTEST_CASES", "256");
        assert_eq!(crate::effective_cases(32), 256, "override wins");
        std::env::set_var("PROPTEST_CASES", " 8 ");
        assert_eq!(crate::effective_cases(32), 8, "whitespace tolerated");
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(crate::effective_cases(32), 32, "zero is ignored");
        std::env::set_var("PROPTEST_CASES", "lots");
        assert_eq!(crate::effective_cases(32), 32, "garbage is ignored");
        match saved {
            Some(v) => std::env::set_var("PROPTEST_CASES", v),
            None => std::env::remove_var("PROPTEST_CASES"),
        }
    }

    #[test]
    fn ranges_cover_bounds() {
        let mut rng = TestRng::new(1);
        let s = 3usize..9;
        let mut seen = [false; 6];
        for _ in 0..500 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((3..9).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn oneof_and_map_compose() {
        let mut rng = TestRng::new(2);
        let s = prop_oneof![
            (0u32..4).prop_map(|v| v * 10),
            (0u32..4).prop_map(|v| v + 100),
        ];
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v % 10 == 0 || (100..104).contains(&v));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] u32),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u32..5)
            .prop_map(T::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = TestRng::new(3);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&Strategy::generate(&s, &mut rng)));
        }
        assert!(max_depth > 0, "recursion never fired");
        assert!(max_depth <= 3, "depth bound violated: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..50, y in 0u32..50) {
            prop_assume!(x != y);
            prop_assert!(x < 50 && y < 50);
            prop_assert_eq!(x + y, y + x, "commutativity for {} {}", x, y);
        }

        #[test]
        fn vectors_have_requested_length(v in crate::collection::vec(-1.0..1.0f64, 7)) {
            prop_assert_eq!(v.len(), 7);
            for x in v {
                prop_assert!((-1.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
