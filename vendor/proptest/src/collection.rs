//! Collection strategies (the `proptest::collection` namespace).

use crate::{Strategy, TestRng};
use std::fmt::Debug;
use std::ops::Range;

/// Lengths acceptable to [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy producing vectors of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy: `size` is a fixed length (`usize`) or a `Range<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
