//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_bool,
//! gen_range}`).
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched; this vendored crate keeps the dependency graph resolvable
//! and the statistical tests honest. The generator is xoshiro256++ seeded
//! through SplitMix64 — deterministic per seed, and easily good enough for
//! the Markov pattern sources and random-netlist generators that consume
//! it. It is **not** cryptographically secure and does not promise
//! bit-compatibility with upstream `StdRng` streams.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface; only `seed_from_u64` is provided.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                // Rejection sampling keeps the draw exactly uniform.
                let zone = u64::MAX - u64::MAX % width;
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return self.start + (x % width) as $t;
                    }
                }
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        f64::sample(self) < p
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in [0.1, 0.5, 0.9] {
            let hits = (0..20_000).filter(|_| rng.gen_bool(p)).count();
            let freq = hits as f64 / 20_000.0;
            assert!((freq - p).abs() < 0.02, "p={p} freq={freq}");
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }
}
