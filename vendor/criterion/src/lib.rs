//! Offline stand-in for the subset of `criterion` 0.5 used by the
//! workspace benches: `criterion_group!`/`criterion_main!`, `Criterion`,
//! benchmark groups with `sample_size`/`throughput`, and `Bencher::iter`.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. This harness keeps `cargo bench` runnable: it times each
//! benchmark over a few adaptively sized batches and prints
//! mean/min/max per iteration (plus derived throughput when declared).
//! There is no warm-up modeling, outlier analysis, or HTML report.

use std::time::{Duration, Instant};

/// Throughput declaration for a benchmark group; reported as
/// elements (or bytes) per second next to the timing line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements per
    /// iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, retaining per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to page everything in.
        std::hint::black_box(routine());
        // Size batches so very fast routines still get stable readings
        // without making slow (model-construction) routines crawl.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed();
        let per_batch = if once < Duration::from_micros(50) {
            1000
        } else if once < Duration::from_millis(5) {
            10
        } else {
            1
        };
        let batches = 5usize;
        self.samples.clear();
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / per_batch);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mean: Duration = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let max = self.samples.iter().max().copied().unwrap_or_default();
        let rate = match throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{name:<50} {mean:>12.2?} [{min:.2?} .. {max:.2?}]{rate}");
    }
}

/// Top-level benchmark driver, one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("— {name} —");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes batches
    /// adaptively instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a single named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner function named `$name`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        group.bench_function("in_group", |b| b.iter(|| vec![0u8; 16]));
        group.finish();
    }
}
