//! Prints compiled-kernel statistics (instruction count, footprint,
//! fixed walk depth) for the benchmark circuits the throughput harness
//! measures — handy for sizing expectations before a run.
//!
//! ```text
//! cargo run --release -p charfree-engine --example kernel_stats
//! ```

use charfree_core::ModelBuilder;
use charfree_engine::Kernel;
use charfree_netlist::{benchmarks, Library};

fn main() {
    let library = Library::test_library();
    println!(
        "{:<8} {:>6} {:>8} {:>10} {:>6} {:>6}",
        "circuit", "inputs", "instrs", "terminals", "bytes", "depth"
    );
    for (name, max) in [
        ("decod", 0usize),
        ("cm85", 500),
        ("cm150", 1000),
        ("mux", 1000),
    ] {
        let netlist = benchmarks::by_name(name, &library).expect("known benchmark");
        let mut builder = ModelBuilder::new(&netlist);
        if max > 0 {
            builder = builder.max_nodes(max);
        }
        let model = builder.build();
        let kernel = Kernel::compile(&model);
        println!(
            "{:<8} {:>6} {:>8} {:>10} {:>6} {:>6}",
            name,
            kernel.num_inputs(),
            kernel.num_instrs(),
            kernel.num_terminals(),
            kernel.bytes(),
            kernel.depth()
        );
    }
}
