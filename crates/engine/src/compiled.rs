//! [`CompiledModel`] — the [`PowerModel`] face of a compiled kernel.
//!
//! The evaluation sweep in `charfree-core` and the CLI trace paths talk
//! to `dyn PowerModel`. Wrapping a [`Kernel`] in a [`CompiledModel`]
//! routes those call sites through the flat-kernel fast path — scalar
//! lookups through [`Kernel::eval_transition`] and whole traces through
//! the batched, multi-threaded [`TraceEngine`] — without the core crate
//! ever depending on this one.

use crate::engine::TraceEngine;
use crate::kernel::Kernel;
use charfree_core::{AddPowerModel, PowerModel};
use charfree_netlist::units::Capacitance;

/// A compiled power model: a [`Kernel`] plus a worker-count policy,
/// usable anywhere a [`PowerModel`] is expected.
///
/// The arena-backed [`AddPowerModel`] stays available as the reference
/// oracle; this adapter is what production evaluation paths hand around.
///
/// # Examples
///
/// ```
/// use charfree_core::{ModelBuilder, PowerModel};
/// use charfree_engine::CompiledModel;
/// use charfree_netlist::benchmarks::paper_unit;
///
/// let model = ModelBuilder::new(&paper_unit()).build();
/// let compiled = CompiledModel::compile(&model);
/// assert_eq!(
///     compiled.capacitance(&[true, true], &[false, false]).femtofarads(),
///     model.capacitance(&[true, true], &[false, false]).femtofarads(),
/// );
/// ```
#[derive(Debug, Clone)]
pub struct CompiledModel {
    kernel: Kernel,
    jobs: usize,
}

impl CompiledModel {
    /// Compiles `model` into a kernel-backed power model (single worker;
    /// see [`CompiledModel::with_jobs`]).
    pub fn compile(model: &AddPowerModel) -> CompiledModel {
        CompiledModel::from_kernel(Kernel::compile(model))
    }

    /// Wraps an already-compiled (or loaded) kernel.
    pub fn from_kernel(kernel: Kernel) -> CompiledModel {
        CompiledModel { kernel, jobs: 1 }
    }

    /// Sets the worker count used by [`PowerModel::capacitance_trace`]
    /// (`0` = one per available core). Results are bit-identical for any
    /// value.
    pub fn with_jobs(mut self, jobs: usize) -> CompiledModel {
        self.jobs = jobs;
        self
    }

    /// The underlying kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Consumes the adapter, returning the kernel.
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }
}

impl PowerModel for CompiledModel {
    fn capacitance(&self, xi: &[bool], xf: &[bool]) -> Capacitance {
        Capacitance(self.kernel.eval_transition(xi, xf))
    }

    fn capacitance_trace(&self, patterns: &[Vec<bool>]) -> Vec<f64> {
        TraceEngine::new(&self.kernel)
            .jobs(self.jobs)
            .trace(patterns)
    }

    fn name(&self) -> &str {
        self.kernel.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::ModelBuilder;
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::MarkovSource;

    #[test]
    fn trace_override_matches_default_loop_bit_for_bit() {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::cm85(&library)).build();
        let compiled = CompiledModel::compile(&model).with_jobs(3);
        let mut source = MarkovSource::new(11, 0.5, 0.3, 17).expect("feasible");
        let patterns = source.sequence(300);
        let fast = compiled.capacitance_trace(&patterns);
        let slow = model.capacitance_trace(&patterns);
        assert_eq!(fast.len(), slow.len());
        for (t, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "transition {t}");
        }
        assert_eq!(compiled.name(), model.name());
    }
}
