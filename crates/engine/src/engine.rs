//! Batched, multi-threaded trace evaluation.
//!
//! [`TraceEngine`] shards a transition stream into fixed-size chunks,
//! fans the chunks out over `std::thread::scope` workers (static
//! round-robin assignment, no locks in the hot path), and merges the
//! per-chunk partial sums/maxima **in chunk order**. Chunk boundaries
//! depend only on the configured chunk size — never on the worker count —
//! so `--jobs 1` and `--jobs 8` produce bit-identical sums and maxima.
//!
//! The streaming mode ([`TraceEngine::evaluate_stream`]) additionally
//! bounds residency: patterns are drawn from an iterator one fixed-size
//! window at a time (carrying a one-pattern overlap between windows), so
//! traces never need to be fully resident.

use crate::block::PatternBlock;
use crate::kernel::Kernel;

/// Transitions per work chunk. Small enough to load-balance, large
/// enough to amortize per-chunk packing; also the unit of deterministic
/// merging. Public because the serving layer's micro-batcher reduces
/// demultiplexed per-request traces with exactly this association (see
/// [`TraceSummary::from_values`]) to stay bit-identical to the offline
/// path.
pub const DEFAULT_CHUNK: usize = 4096;

/// Windows of the streaming mode span this many chunks regardless of the
/// worker count, keeping stream summaries independent of `jobs` too.
const STREAM_CHUNKS_PER_WINDOW: usize = 8;

/// Deterministic reduction of one evaluated trace: count, sum and
/// maximum of the per-transition switched capacitance (fF).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSummary {
    /// Number of transitions evaluated.
    pub transitions: usize,
    /// Sum of the per-transition switched capacitance (fF).
    pub sum_ff: f64,
    /// Maximum per-transition switched capacitance (fF);
    /// `f64::NEG_INFINITY` for an empty trace.
    pub max_ff: f64,
}

impl TraceSummary {
    fn empty() -> TraceSummary {
        TraceSummary {
            transitions: 0,
            sum_ff: 0.0,
            max_ff: f64::NEG_INFINITY,
        }
    }

    /// Mean switched capacitance (fF) per transition (NaN when empty).
    pub fn mean_ff(&self) -> f64 {
        self.sum_ff / self.transitions as f64
    }

    /// The canonical deterministic reduction of an already-evaluated
    /// per-transition trace: partial sums are associated in `chunk`-sized
    /// runs folded in order — the exact association
    /// [`TraceEngine::evaluate`] uses for any worker count. This is the
    /// demultiplexing hook for batching layers: evaluate transitions in
    /// any lane packing (per-lane values are independent), scatter the
    /// values back into per-request order, then reduce with this function
    /// to get a summary bit-identical to a dedicated
    /// [`TraceEngine::evaluate`] run with the same chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn from_values(values: &[f64], chunk: usize) -> TraceSummary {
        assert!(chunk > 0, "chunk size must be positive");
        let mut total = TraceSummary::empty();
        for run in values.chunks(chunk) {
            total.absorb(summarize_run(run));
        }
        total
    }

    /// Folds `other` into `self` (ordered merge — callers merge in chunk
    /// order to stay deterministic).
    fn absorb(&mut self, other: TraceSummary) {
        self.transitions += other.transitions;
        self.sum_ff += other.sum_ff;
        self.max_ff = self.max_ff.max(other.max_ff);
    }
}

/// Sequential sum/max reduction of one chunk's values — the single
/// association unit shared by the worker loops and
/// [`TraceSummary::from_values`].
fn summarize_run(values: &[f64]) -> TraceSummary {
    let mut sum = 0.0f64;
    let mut max = f64::NEG_INFINITY;
    for &c in values {
        sum += c;
        max = max.max(c);
    }
    TraceSummary {
        transitions: values.len(),
        sum_ff: sum,
        max_ff: max,
    }
}

/// A multi-threaded evaluator over one compiled [`Kernel`].
///
/// # Examples
///
/// ```
/// use charfree_core::ModelBuilder;
/// use charfree_engine::{Kernel, TraceEngine};
/// use charfree_netlist::{benchmarks, Library};
/// use charfree_sim::MarkovSource;
///
/// let library = Library::test_library();
/// let model = ModelBuilder::new(&benchmarks::cm85(&library)).build();
/// let kernel = Kernel::compile(&model);
/// let mut source = MarkovSource::new(11, 0.5, 0.5, 1).expect("feasible statistics");
/// let patterns = source.sequence(1000);
///
/// let summary = TraceEngine::new(&kernel).jobs(2).evaluate(&patterns);
/// assert_eq!(summary.transitions, 999);
/// assert!(summary.max_ff >= summary.mean_ff());
/// ```
#[derive(Debug)]
pub struct TraceEngine<'k> {
    kernel: &'k Kernel,
    jobs: usize,
    chunk: usize,
}

impl<'k> TraceEngine<'k> {
    /// A single-threaded engine over `kernel` with the default chunk
    /// size.
    pub fn new(kernel: &'k Kernel) -> TraceEngine<'k> {
        TraceEngine {
            kernel,
            jobs: 1,
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Sets the worker count. `0` means "use the machine's available
    /// parallelism".
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = if jobs == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            jobs
        };
        self
    }

    /// Sets the chunk size (transitions per work unit). Results are
    /// identical for any chunk-size/worker combination except for the
    /// floating-point association of partial sums, which is fixed by the
    /// chunk size alone.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        self.chunk = chunk;
        self
    }

    /// The configured worker count.
    pub fn num_jobs(&self) -> usize {
        self.jobs
    }

    /// Evaluates the `patterns.len() − 1` transitions of a resident
    /// pattern sequence to a deterministic [`TraceSummary`].
    pub fn evaluate(&self, patterns: &[Vec<bool>]) -> TraceSummary {
        let mut total = TraceSummary::empty();
        for p in self.chunk_partials(patterns) {
            total.absorb(p);
        }
        total
    }

    /// Evaluates a resident pattern sequence to the full per-transition
    /// capacitance trace (fF), sharded across workers.
    pub fn trace(&self, patterns: &[Vec<bool>]) -> Vec<f64> {
        if patterns.len() < 2 {
            return Vec::new();
        }
        let transitions = patterns.len() - 1;
        let mut out = vec![0.0f64; transitions];
        {
            let slices: Vec<(usize, &mut [f64])> = out.chunks_mut(self.chunk).enumerate().collect();
            let kernel = self.kernel;
            let chunk = self.chunk;
            let jobs = self.jobs.min(slices.len()).max(1);
            let run = move |work: Vec<(usize, &mut [f64])>| {
                let mut block = PatternBlock::new(kernel.num_vars() as usize);
                for (ci, slice) in work {
                    let start = ci * chunk;
                    let end = (start + chunk).min(transitions);
                    block.clear();
                    block.extend_from_patterns(kernel, &patterns[start..=end]);
                    kernel.eval_batch_into(&block, slice);
                }
            };
            if jobs == 1 {
                // One worker: run inline, no thread spawn.
                run(slices);
            } else {
                let mut per_worker: Vec<Vec<(usize, &mut [f64])>> =
                    (0..jobs).map(|_| Vec::new()).collect();
                for (i, s) in slices {
                    per_worker[i % jobs].push((i, s));
                }
                std::thread::scope(|scope| {
                    for work in per_worker {
                        scope.spawn(|| run(work));
                    }
                });
            }
        }
        out
    }

    /// Evaluates a pattern *stream* without keeping it resident: patterns
    /// are pulled one fixed-size window at a time (a whole number of
    /// chunks, independent of the worker count), each window is sharded
    /// like [`TraceEngine::evaluate`], and the last pattern of a window
    /// seeds the next one so no transition is dropped. Window boundaries
    /// coincide with chunk boundaries and partials are folded in global
    /// chunk order, so the summary is bit-identical to the resident path
    /// for any worker count.
    pub fn evaluate_stream<I>(&self, patterns: I) -> TraceSummary
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        let window_transitions = self.chunk * STREAM_CHUNKS_PER_WINDOW;
        let mut iter = patterns.into_iter();
        let mut window: Vec<Vec<bool>> = Vec::with_capacity(window_transitions + 1);
        let mut total = TraceSummary::empty();
        loop {
            while window.len() < window_transitions + 1 {
                match iter.next() {
                    Some(p) => window.push(p),
                    None => break,
                }
            }
            if window.len() < 2 {
                break;
            }
            for p in self.chunk_partials(&window) {
                total.absorb(p);
            }
            let exhausted = window.len() < window_transitions + 1;
            let carry = window.pop().expect("window is non-empty");
            window.clear();
            window.push(carry);
            if exhausted {
                break;
            }
        }
        total
    }

    /// Evaluates every `self.chunk`-sized chunk of the sequence's
    /// transitions across the configured workers and returns the partial
    /// summaries in chunk order.
    fn chunk_partials(&self, patterns: &[Vec<bool>]) -> Vec<TraceSummary> {
        if patterns.len() < 2 {
            return Vec::new();
        }
        let transitions = patterns.len() - 1;
        let chunk = self.chunk;
        let kernel = self.kernel;
        let num_chunks = transitions.div_ceil(chunk);
        let mut partials = vec![TraceSummary::empty(); num_chunks];
        {
            let jobs = self.jobs.min(num_chunks).max(1);
            let slots: Vec<(usize, &mut TraceSummary)> = partials.iter_mut().enumerate().collect();
            let run = move |work: Vec<(usize, &mut TraceSummary)>| {
                let mut block = PatternBlock::new(kernel.num_vars() as usize);
                let mut values = Vec::new();
                for (ci, slot) in work {
                    let start = ci * chunk;
                    let end = (start + chunk).min(transitions);
                    block.clear();
                    block.extend_from_patterns(kernel, &patterns[start..=end]);
                    values.resize(block.len(), 0.0);
                    kernel.eval_batch_into(&block, &mut values);
                    *slot = summarize_run(&values);
                }
            };
            if jobs == 1 {
                // One worker: run inline, no thread spawn.
                run(slots);
            } else {
                let mut per_worker: Vec<Vec<(usize, &mut TraceSummary)>> =
                    (0..jobs).map(|_| Vec::new()).collect();
                for (i, s) in slots {
                    per_worker[i % jobs].push((i, s));
                }
                std::thread::scope(|scope| {
                    for work in per_worker {
                        scope.spawn(|| run(work));
                    }
                });
            }
        }
        partials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::{ModelBuilder, PowerModel};
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::MarkovSource;

    fn cm85_kernel() -> (charfree_core::AddPowerModel, Kernel) {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::cm85(&library))
            .max_nodes(400)
            .build();
        let kernel = Kernel::compile(&model);
        (model, kernel)
    }

    #[test]
    fn summary_matches_sequential_reference() {
        let (model, kernel) = cm85_kernel();
        let mut source = MarkovSource::new(11, 0.5, 0.4, 11).expect("feasible");
        let patterns = source.sequence(700);
        let summary = TraceEngine::new(&kernel)
            .chunk_size(128)
            .jobs(3)
            .evaluate(&patterns);
        assert_eq!(summary.transitions, 699);
        // Reference with the same chunked association.
        let mut want_sum = 0.0f64;
        let mut want_max = f64::NEG_INFINITY;
        for chunk in (0..699).collect::<Vec<_>>().chunks(128) {
            let mut s = 0.0f64;
            for &t in chunk {
                let c = model
                    .capacitance(&patterns[t], &patterns[t + 1])
                    .femtofarads();
                s += c;
                want_max = want_max.max(c);
            }
            want_sum += s;
        }
        assert_eq!(summary.sum_ff.to_bits(), want_sum.to_bits());
        assert_eq!(summary.max_ff.to_bits(), want_max.to_bits());
    }

    #[test]
    fn jobs_do_not_change_results() {
        let (_, kernel) = cm85_kernel();
        let mut source = MarkovSource::new(11, 0.5, 0.3, 5).expect("feasible");
        let patterns = source.sequence(1500);
        let one = TraceEngine::new(&kernel)
            .chunk_size(100)
            .jobs(1)
            .evaluate(&patterns);
        let eight = TraceEngine::new(&kernel)
            .chunk_size(100)
            .jobs(8)
            .evaluate(&patterns);
        assert_eq!(one.sum_ff.to_bits(), eight.sum_ff.to_bits());
        assert_eq!(one.max_ff.to_bits(), eight.max_ff.to_bits());
        assert_eq!(one.transitions, eight.transitions);
    }

    #[test]
    fn trace_matches_scalar_walks() {
        let (model, kernel) = cm85_kernel();
        let mut source = MarkovSource::new(11, 0.5, 0.6, 7).expect("feasible");
        let patterns = source.sequence(300);
        let trace = TraceEngine::new(&kernel)
            .chunk_size(64)
            .jobs(4)
            .trace(&patterns);
        assert_eq!(trace.len(), 299);
        for (t, &c) in trace.iter().enumerate() {
            assert_eq!(
                c.to_bits(),
                model
                    .capacitance(&patterns[t], &patterns[t + 1])
                    .femtofarads()
                    .to_bits()
            );
        }
    }

    #[test]
    fn stream_matches_resident_evaluation() {
        let (_, kernel) = cm85_kernel();
        let mut source = MarkovSource::new(11, 0.5, 0.5, 23).expect("feasible");
        // Deliberately not a multiple of the window size.
        let patterns = source.sequence(2000);
        let engine = TraceEngine::new(&kernel).chunk_size(100).jobs(4);
        let resident = engine.evaluate(&patterns);
        let streamed = engine.evaluate_stream(patterns.iter().cloned());
        assert_eq!(resident.transitions, streamed.transitions);
        assert_eq!(resident.max_ff.to_bits(), streamed.max_ff.to_bits());
        // Window/chunk boundaries coincide (window = 8 chunks), so even the
        // sum association is identical.
        assert_eq!(resident.sum_ff.to_bits(), streamed.sum_ff.to_bits());
    }

    #[test]
    fn from_values_matches_evaluate_bit_for_bit() {
        let (_, kernel) = cm85_kernel();
        let mut source = MarkovSource::new(11, 0.5, 0.4, 17).expect("feasible");
        // Not a multiple of the chunk size, to exercise the tail run.
        let patterns = source.sequence(1103);
        for chunk in [64, 100, DEFAULT_CHUNK] {
            let engine = TraceEngine::new(&kernel).chunk_size(chunk).jobs(3);
            let summary = engine.evaluate(&patterns);
            let trace = engine.trace(&patterns);
            let reduced = TraceSummary::from_values(&trace, chunk);
            assert_eq!(summary.transitions, reduced.transitions);
            assert_eq!(summary.sum_ff.to_bits(), reduced.sum_ff.to_bits());
            assert_eq!(summary.max_ff.to_bits(), reduced.max_ff.to_bits());
        }
    }

    #[test]
    fn degenerate_inputs() {
        let (_, kernel) = cm85_kernel();
        let engine = TraceEngine::new(&kernel);
        assert_eq!(engine.evaluate(&[]).transitions, 0);
        assert_eq!(engine.trace(&[vec![false; 11]]).len(), 0);
        assert_eq!(engine.evaluate_stream(std::iter::empty()).transitions, 0);
    }
}
