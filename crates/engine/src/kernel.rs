//! Flat, manager-free compiled kernels.
//!
//! [`Kernel::compile`] flattens an [`AddPowerModel`]'s decision diagram
//! into a self-contained evaluation program: a topologically ordered
//! `Vec` of fixed-width branch instructions plus a dense terminal table.
//! The kernel owns no arena, no unique tables and no caches — it is plain
//! `Send + Sync` data, independently persistable (see
//! [`Kernel::save`](crate::Kernel::save)) and cheap to hand to worker
//! threads.
//!
//! ## Instruction layout
//!
//! ```text
//! Instr { var: u32, lo: u32, hi: u32 }       12 bytes, cache-friendly
//! ```
//!
//! Successor references use the same trick as the manager's `NodeId`: the
//! high bit selects the terminal table, the remaining 31 bits index either
//! `instrs` or `terminals`. Instructions are stored children-before-
//! parents, so every internal reference points *backwards* — evaluation
//! can never loop, and the invariant is re-checked when kernels are
//! loaded from disk.

use crate::block::PatternBlock;
use charfree_core::{AddPowerModel, PowerModel};
use charfree_dd::ChainMeasure;

/// Successor-reference tag: high bit set = terminal-table index.
pub(crate) const TERMINAL_BIT: u32 = 1 << 31;

/// One flat branch instruction: test `var`, continue at `lo` on 0 and at
/// `hi` on 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Diagram variable tested by this instruction.
    pub var: u32,
    /// Successor reference on a 0 branch (terminal if high bit set).
    pub lo: u32,
    /// Successor reference on a 1 branch (terminal if high bit set).
    pub hi: u32,
}

/// A compiled, self-contained ADD evaluation kernel.
///
/// Fully decoupled from the [`charfree_dd::Manager`] arena it was compiled
/// from: the kernel can outlive the model, cross threads (`Send + Sync`),
/// and round-trip through [`Kernel::save`]/[`Kernel::load`].
///
/// # Examples
///
/// ```
/// use charfree_core::{ModelBuilder, PowerModel};
/// use charfree_engine::Kernel;
/// use charfree_netlist::benchmarks::paper_unit;
///
/// let model = ModelBuilder::new(&paper_unit()).build();
/// let kernel = Kernel::compile(&model);
/// // Fig. 2b / Example 1: C(11, 00) = 90 fF, bit-for-bit the model's answer.
/// let c = kernel.eval_transition(&[true, true], &[false, false]);
/// assert_eq!(c, model.capacitance(&[true, true], &[false, false]).femtofarads());
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    pub(crate) name: String,
    /// Number of diagram variables (`2n`).
    pub(crate) num_vars: u32,
    /// Number of macro inputs (`n`).
    pub(crate) num_inputs: usize,
    /// Branch instructions, children strictly before parents.
    pub(crate) instrs: Vec<Instr>,
    /// Dense terminal-value table.
    pub(crate) terminals: Vec<f64>,
    /// Root reference (may point straight into the terminal table for
    /// constant models).
    pub(crate) root: u32,
    /// `xi_vars[i]` = diagram variable carrying macro input `i` at `tⁱ`
    /// (ordering and slot permutation already folded in).
    pub(crate) xi_vars: Vec<u32>,
    /// `xf_vars[i]` = diagram variable carrying macro input `i` at `tᶠ`.
    pub(crate) xf_vars: Vec<u32>,
    /// `true` when the source model used the interleaved ordering (the
    /// only ordering whose transition measure is chain-expressible).
    pub(crate) interleaved: bool,
    /// Batch-evaluation program derived from `instrs` (never persisted):
    /// level-fused 4-way dispatch with terminal references remapped to
    /// self-looping pseudo-instructions appended after the real ones —
    /// see [`Kernel::rebuild_program`].
    pub(crate) program: Vec<FusedInstr>,
    /// Longest root-to-terminal path in `instrs` (edges). `0` for
    /// constant kernels.
    pub(crate) depth: u32,
    /// Upper bound on fused steps from root to terminal — the batched
    /// walk's iteration bound.
    pub(crate) fused_depth: u32,
}

/// One 4-way batch-program step: test diagram variables `v1` and `v2`
/// and continue at `succ[v1_bit·2 + v2_bit]`. Successors are *program*
/// indices (no tag bit); indices at or past the terminal base are
/// self-looping terminal pseudo-instructions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FusedInstr {
    pub(crate) v1: u32,
    pub(crate) v2: u32,
    pub(crate) succ: [u32; 4],
}

impl Kernel {
    /// Compiles `model`'s decision diagram into a flat kernel.
    ///
    /// Only nodes reachable from the root are emitted (the manager arena
    /// may hold construction garbage); the result is typically smaller and
    /// always contiguous.
    pub fn compile(model: &AddPowerModel) -> Kernel {
        let (manager, root) = model.diagram();
        let n = model.num_inputs();
        let ordering = model.ordering();

        let nodes = manager.topological_nodes(root);
        let mut index_of = std::collections::HashMap::with_capacity(nodes.len());
        for (i, &id) in nodes.iter().enumerate() {
            index_of.insert(id, i as u32);
        }

        let mut terminals: Vec<f64> = Vec::new();
        let mut term_index: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let encode = |id: charfree_dd::NodeId,
                      terminals: &mut Vec<f64>,
                      term_index: &mut std::collections::HashMap<u64, u32>|
         -> u32 {
            if id.is_terminal() {
                let v = manager.terminal_value(id);
                let slot = *term_index.entry(v.to_bits()).or_insert_with(|| {
                    terminals.push(v);
                    (terminals.len() - 1) as u32
                });
                slot | TERMINAL_BIT
            } else {
                index_of[&id]
            }
        };

        let mut instrs = Vec::with_capacity(nodes.len());
        for &id in &nodes {
            let (lo, hi) = manager.children(id);
            instrs.push(Instr {
                var: manager.node_var(id).index(),
                lo: encode(lo, &mut terminals, &mut term_index),
                hi: encode(hi, &mut terminals, &mut term_index),
            });
        }
        let root = encode(root, &mut terminals, &mut term_index);

        let slots = model.input_slots();
        let xi_vars = (0..n)
            .map(|i| ordering.xi_var(slots[i], n).index())
            .collect();
        let xf_vars = (0..n)
            .map(|i| ordering.xf_var(slots[i], n).index())
            .collect();

        let mut kernel = Kernel {
            name: model.name().to_owned(),
            num_vars: 2 * n as u32,
            num_inputs: n,
            instrs,
            terminals,
            root,
            xi_vars,
            xf_vars,
            interleaved: ordering == charfree_core::VariableOrdering::Interleaved,
            program: Vec::new(),
            depth: 0,
            fused_depth: 0,
        };
        kernel.rebuild_program();
        kernel
    }

    /// Derives the batch program from `instrs`/`terminals` (called after
    /// compilation and after loading from disk).
    ///
    /// Two transformations make the batched walk branch-free and short:
    ///
    /// * **Terminal self-loops** — terminal references `T_k` become index
    ///   `instrs.len() + k` of a pseudo-instruction that loops on itself,
    ///   so a walk needs no per-step "is this a terminal?" test; finished
    ///   lanes idle harmlessly while the others catch up.
    /// * **Level fusion** — each step tests the node's variable *and* the
    ///   next one, dispatching 4-way straight to the grandchild (children
    ///   that skip the second variable just duplicate their entry). This
    ///   halves the serial dependent-load chain, which is what bounds a
    ///   decision-diagram walk.
    pub(crate) fn rebuild_program(&mut self) {
        let term_base = self.instrs.len() as u32;
        let remap = |r: u32| -> u32 {
            if r & TERMINAL_BIT != 0 {
                term_base + (r & !TERMINAL_BIT)
            } else {
                r
            }
        };
        // One fused step from reference `c` under the second tested
        // variable `v2` and its bit `b2`.
        let hop = |c: u32, v2: u32, b2: u32| -> u32 {
            if c & TERMINAL_BIT == 0 {
                let child = &self.instrs[c as usize];
                if child.var == v2 {
                    return remap(if b2 == 1 { child.hi } else { child.lo });
                }
            }
            remap(c)
        };
        self.program.clear();
        self.program
            .reserve(self.instrs.len() + self.terminals.len());
        for ins in &self.instrs {
            // The second tested variable; the last level re-tests itself
            // (children there are terminals, so the bit is a don't-care)
            // to keep the word index in range.
            let v2 = (ins.var + 1).min(self.num_vars - 1);
            self.program.push(FusedInstr {
                v1: ins.var,
                v2,
                succ: [
                    hop(ins.lo, v2, 0),
                    hop(ins.lo, v2, 1),
                    hop(ins.hi, v2, 0),
                    hop(ins.hi, v2, 1),
                ],
            });
        }
        for k in 0..self.terminals.len() as u32 {
            // Self-loop; variable 0 is read but ignored.
            self.program.push(FusedInstr {
                v1: 0,
                v2: 0,
                succ: [term_base + k; 4],
            });
        }
        // Longest paths (children precede parents, so one forward pass):
        // over `instrs` edges for `depth`, over fused steps for the
        // batched walk's iteration bound.
        let mut longest = vec![0u32; self.instrs.len()];
        let path = |r: u32, longest: &[u32]| -> u32 {
            if r & TERMINAL_BIT != 0 {
                0
            } else {
                longest[r as usize]
            }
        };
        for (i, ins) in self.instrs.iter().enumerate() {
            longest[i] = 1 + path(ins.lo, &longest).max(path(ins.hi, &longest));
        }
        self.depth = path(self.root, &longest);
        let mut fused = vec![0u32; self.instrs.len()];
        for i in 0..self.instrs.len() {
            let step = &self.program[i];
            let flen = |r: u32, fused: &[u32]| -> u32 {
                if r >= term_base {
                    0
                } else {
                    fused[r as usize]
                }
            };
            fused[i] = 1 + step
                .succ
                .iter()
                .map(|&s| flen(s, &fused))
                .max()
                .expect("four successors");
        }
        self.fused_depth = if self.root & TERMINAL_BIT != 0 {
            0
        } else {
            fused[self.root as usize]
        };
    }

    /// Display name inherited from the source model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of macro inputs `n`.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of diagram variables (`2n`).
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of branch instructions (internal diagram nodes).
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Number of distinct terminal values.
    pub fn num_terminals(&self) -> usize {
        self.terminals.len()
    }

    /// Longest root-to-terminal path in instructions (`0` for constant
    /// kernels, at most `2n`). The batched walk's level-fused program
    /// takes at most `⌈depth / 2⌉`-ish steps — see
    /// [`Kernel::eval_batch_into`].
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Kernel memory footprint in bytes (instructions + terminal table +
    /// variable maps; the numbers recorded in `BENCH_engine.json`).
    pub fn bytes(&self) -> usize {
        self.instrs.len() * std::mem::size_of::<Instr>()
            + self.terminals.len() * std::mem::size_of::<f64>()
            + (self.xi_vars.len() + self.xf_vars.len()) * std::mem::size_of::<u32>()
    }

    /// `true` when the source model used the interleaved variable
    /// ordering (required by [`Kernel::expected_capacitance`]).
    pub fn is_interleaved(&self) -> bool {
        self.interleaved
    }

    /// Evaluates the kernel under a complete `2n`-variable diagram
    /// assignment (one root-to-terminal walk, no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is narrower than the highest tested
    /// variable.
    #[inline]
    pub fn eval(&self, assignment: &[bool]) -> f64 {
        let mut r = self.root;
        while r & TERMINAL_BIT == 0 {
            let i = &self.instrs[r as usize];
            r = if assignment[i.var as usize] {
                i.hi
            } else {
                i.lo
            };
        }
        self.terminals[(r & !TERMINAL_BIT) as usize]
    }

    /// Switched capacitance (fF) predicted for one `(xⁱ, xᶠ)` transition.
    ///
    /// Convenience scalar entry point; the batch paths
    /// ([`Kernel::eval_batch`]) amortize the assignment staging this has
    /// to do per call.
    ///
    /// # Panics
    ///
    /// Panics if `xi`/`xf` are not `num_inputs` wide.
    pub fn eval_transition(&self, xi: &[bool], xf: &[bool]) -> f64 {
        assert_eq!(xi.len(), self.num_inputs, "pattern width mismatch");
        assert_eq!(xf.len(), self.num_inputs, "pattern width mismatch");
        let mut buf = vec![false; self.num_vars as usize];
        self.fill_assignment(xi, xf, &mut buf);
        self.eval(&buf)
    }

    /// Writes the diagram-variable assignment for `(xi, xf)` into `buf`
    /// (which must be `2n` wide).
    #[inline]
    pub(crate) fn fill_assignment(&self, xi: &[bool], xf: &[bool], buf: &mut [bool]) {
        for i in 0..self.num_inputs {
            buf[self.xi_vars[i] as usize] = xi[i];
            buf[self.xf_vars[i] as usize] = xf[i];
        }
    }

    /// Evaluates every transition lane of a packed [`PatternBlock`] into
    /// `out` (which must be exactly `block.len()` long).
    ///
    /// The hot loop is allocation-free and branch-predictable: groups of
    /// eight lanes walk the level-fused program together, each step an
    /// unconditional 4-way table dispatch per lane, so the lanes'
    /// dependent load chains overlap (memory-level parallelism) instead
    /// of serialising one root-to-terminal walk at a time. Lanes whose
    /// path is shorter than the fused depth idle in a terminal self-loop,
    /// and a group whose lanes have all parked exits early.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != block.len()` or the block is narrower than
    /// the kernel's variable count.
    pub fn eval_batch_into(&self, block: &PatternBlock, out: &mut [f64]) {
        assert_eq!(out.len(), block.len(), "output length mismatch");
        assert!(
            block.num_vars() >= self.num_vars as usize,
            "pattern block is narrower than the kernel"
        );
        if self.depth == 0 {
            // Constant kernel: the root is a terminal.
            out.fill(self.terminals[(self.root & !TERMINAL_BIT) as usize]);
            return;
        }
        const LANES: usize = 8;
        let prog = &self.program[..];
        let term_base = self.instrs.len() as u32;
        for (b, group) in out.chunks_mut(64).enumerate() {
            let words = block.block_words(b);
            let mut lane = 0usize;
            while lane + LANES <= group.len() {
                let mut r = [self.root; LANES];
                for _ in 0..self.fused_depth {
                    let mut min = u32::MAX;
                    for (k, rk) in r.iter_mut().enumerate() {
                        let f = prog[*rk as usize];
                        let b1 = words[f.v1 as usize] >> (lane + k) & 1;
                        let b2 = words[f.v2 as usize] >> (lane + k) & 1;
                        *rk = f.succ[((b1 << 1) | b2) as usize];
                        min = min.min(*rk);
                    }
                    // All lanes parked in terminal self-loops: done early
                    // (paths are often much shorter than the worst case).
                    if min >= term_base {
                        break;
                    }
                }
                for (k, rk) in r.iter().enumerate() {
                    group[lane + k] = self.terminals[(rk - term_base) as usize];
                }
                lane += LANES;
            }
            // Fused early-exit walk for the ragged tail.
            for (lane, slot) in group.iter_mut().enumerate().skip(lane) {
                let mut r = self.root;
                while r < term_base {
                    let f = prog[r as usize];
                    let b1 = words[f.v1 as usize] >> lane & 1;
                    let b2 = words[f.v2 as usize] >> lane & 1;
                    r = f.succ[((b1 << 1) | b2) as usize];
                }
                *slot = self.terminals[(r - term_base) as usize];
            }
        }
    }

    /// [`Kernel::eval_batch_into`] with an owned result vector.
    pub fn eval_batch(&self, block: &PatternBlock) -> Vec<f64> {
        let mut out = vec![0.0; block.len()];
        self.eval_batch_into(block, &mut out);
        out
    }

    /// Expected kernel value under a chain-measure input distribution —
    /// the flat-kernel counterpart of the manager's measured profile, one
    /// bottom-up pass over the instruction vector with per-context
    /// conditioning (0 = unconditioned, 1 = predecessor false, 2 =
    /// predecessor true).
    ///
    /// # Panics
    ///
    /// Panics if `measure` does not cover the kernel's `2n` variables.
    pub fn expected_value(&self, measure: &ChainMeasure) -> f64 {
        assert_eq!(
            measure.len(),
            self.num_vars as usize,
            "measure must cover every kernel variable"
        );
        // avg[i][ctx]: expected sub-value of instruction i, conditioned on
        // the value of variable (var(i) − 1) when that matters (contexts as
        // in `ChainMeasure::prob_one`). Children precede parents, so a
        // single forward pass suffices.
        let mut avg = vec![[0.0f64; 3]; self.instrs.len()];
        for idx in 0..self.instrs.len() {
            let ins = self.instrs[idx];
            let lo0 = self.resolve_expected(ins.lo, ins.var, 1, &avg, measure);
            let hi0 = self.resolve_expected(ins.hi, ins.var, 2, &avg, measure);
            for ctx in 0u8..3 {
                let p1 = measure.prob_one(ins.var as usize, ctx);
                avg[idx][ctx as usize] = (1.0 - p1) * lo0 + p1 * hi0;
            }
        }
        self.resolve_ref(self.root, None, 0, &avg, measure)
    }

    /// Expected value of a successor reached by branching at `parent_var`
    /// with the context `branch_ctx` (1 = took the 0 branch, 2 = took the
    /// 1 branch) the child would see if it tests `parent_var + 1`.
    #[inline]
    fn resolve_expected(
        &self,
        r: u32,
        parent_var: u32,
        branch_ctx: u8,
        avg: &[[f64; 3]],
        measure: &ChainMeasure,
    ) -> f64 {
        self.resolve_ref(r, Some(parent_var), branch_ctx, avg, measure)
    }

    #[inline]
    fn resolve_ref(
        &self,
        r: u32,
        parent_var: Option<u32>,
        branch_ctx: u8,
        avg: &[[f64; 3]],
        measure: &ChainMeasure,
    ) -> f64 {
        if r & TERMINAL_BIT != 0 {
            return self.terminals[(r & !TERMINAL_BIT) as usize];
        }
        let child = &self.instrs[r as usize];
        let ctx = match parent_var {
            Some(v) if child.var == v + 1 && measure.is_correlated(child.var) => branch_ctx,
            _ => 0,
        };
        avg[r as usize][ctx as usize]
    }

    /// Analytic expected switched capacitance (fF) under input statistics
    /// `(sp, st)` — the engine-side counterpart of
    /// [`AddPowerModel::expected_capacitance`], computed on the flat
    /// kernel without touching the manager arena.
    ///
    /// # Panics
    ///
    /// Panics if `sp`/`st` are infeasible or the kernel was compiled from
    /// a grouped-ordering model (whose pair correlation is not
    /// chain-expressible).
    pub fn expected_capacitance(&self, sp: f64, st: f64) -> f64 {
        assert!(
            self.interleaved,
            "analytic expectations need the interleaved ordering"
        );
        let measure = ChainMeasure::interleaved_transitions(self.num_inputs as u32, sp, st);
        self.expected_value(&measure)
    }

    /// Validates internal invariants (used after [`Kernel::load`]): every
    /// reference in range, every internal reference strictly backwards,
    /// variables below `num_vars`, input maps within bounds and disjoint.
    pub(crate) fn validate(&self) -> Result<(), String> {
        let check_ref = |r: u32, idx: usize| -> Result<(), String> {
            if r & TERMINAL_BIT != 0 {
                let t = (r & !TERMINAL_BIT) as usize;
                if t >= self.terminals.len() {
                    return Err(format!("terminal reference {t} out of range"));
                }
            } else if r as usize >= idx {
                return Err(format!(
                    "forward instruction reference {r} at instruction {idx}"
                ));
            }
            Ok(())
        };
        for (idx, ins) in self.instrs.iter().enumerate() {
            if ins.var >= self.num_vars {
                return Err(format!(
                    "instruction {idx} tests variable {} out of range",
                    ins.var
                ));
            }
            check_ref(ins.lo, idx)?;
            check_ref(ins.hi, idx)?;
        }
        check_ref(self.root, self.instrs.len())?;
        if self.xi_vars.len() != self.num_inputs || self.xf_vars.len() != self.num_inputs {
            return Err("input variable maps do not cover every input".to_owned());
        }
        let mut seen = vec![false; self.num_vars as usize];
        for &v in self.xi_vars.iter().chain(&self.xf_vars) {
            if v >= self.num_vars || std::mem::replace(&mut seen[v as usize], true) {
                return Err("input variable maps are not a permutation".to_owned());
            }
        }
        for t in &self.terminals {
            if t.is_nan() {
                return Err("NaN terminal".to_owned());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::{ModelBuilder, PowerModel};
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::ExhaustivePairs;

    #[test]
    fn compiled_kernel_matches_arena_exhaustively() {
        let library = Library::test_library();
        let netlist = benchmarks::decod(&library);
        let model = ModelBuilder::new(&netlist).build();
        let kernel = Kernel::compile(&model);
        assert_eq!(kernel.num_inputs(), 5);
        assert_eq!(kernel.num_vars(), 10);
        for (xi, xf) in ExhaustivePairs::new(5) {
            assert_eq!(
                kernel.eval_transition(&xi, &xf).to_bits(),
                model.capacitance(&xi, &xf).femtofarads().to_bits(),
                "xi={xi:?} xf={xf:?}"
            );
        }
    }

    #[test]
    fn constant_model_compiles_to_terminal_root() {
        let library = Library::test_library();
        let netlist = benchmarks::decod(&library);
        // Shrinking to one node forces a constant diagram.
        let model = ModelBuilder::new(&netlist)
            .build()
            .shrink(1, charfree_core::ApproxStrategy::Average);
        let kernel = Kernel::compile(&model);
        assert_eq!(kernel.num_instrs(), 0);
        assert!(kernel.root & TERMINAL_BIT != 0);
        let xi = vec![false; 5];
        let xf = vec![true; 5];
        assert_eq!(
            kernel.eval_transition(&xi, &xf),
            model.capacitance(&xi, &xf).femtofarads()
        );
    }

    #[test]
    fn kernel_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Kernel>();
    }

    #[test]
    fn expected_value_matches_model() {
        let library = Library::test_library();
        let netlist = benchmarks::cm85(&library);
        for model in [
            ModelBuilder::new(&netlist).build(),
            ModelBuilder::new(&netlist).max_nodes(200).build(),
        ] {
            let kernel = Kernel::compile(&model);
            for (sp, st) in [(0.5, 0.5), (0.5, 0.05), (0.3, 0.2), (0.8, 0.3)] {
                let want = model.expected_capacitance(sp, st).femtofarads();
                let got = kernel.expected_capacitance(sp, st);
                assert!(
                    (want - got).abs() <= 1e-9 * want.abs().max(1.0),
                    "(sp={sp}, st={st}): model {want}, kernel {got}"
                );
            }
        }
    }

    #[test]
    fn validate_accepts_compiled_kernels() {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::cm85(&library))
            .max_nodes(300)
            .build();
        Kernel::compile(&model)
            .validate()
            .expect("compiled kernels are valid");
    }
}
