//! # charfree-engine — compiled ADD kernels and the trace engine
//!
//! The construction side of the workspace (`charfree-core`) builds ADD
//! power models inside a [`charfree_dd::Manager`] arena: hash-consed,
//! cache-backed, ideal for symbolic manipulation, and deliberately *not*
//! optimised for raw evaluation throughput. This crate is the other half
//! of the story — once a model is frozen, it is **compiled** into a flat
//! kernel and evaluated in bulk:
//!
//! * [`Kernel`] — a topologically ordered vector of 12-byte branch
//!   instructions plus a dense terminal table, fully decoupled from the
//!   manager arena. `Send + Sync`, independently persistable
//!   ([`Kernel::save`] / [`Kernel::load`]), and validated on load.
//! * [`PatternBlock`] — column-packed `u64` bit-matrix staging for
//!   transition streams, one word per diagram variable per 64
//!   transitions; [`Kernel::eval_batch`] consumes it allocation-free.
//! * [`TraceEngine`] — chunked, deterministic multi-threaded trace
//!   evaluation: results are bit-identical for any `--jobs` value, in
//!   resident and streaming mode alike.
//! * [`CompiledModel`] — a [`charfree_core::PowerModel`] adapter so the
//!   accuracy sweeps and CLI paths transparently use the compiled path
//!   while the arena model remains the reference oracle.
//! * [`throughput`] — the measurement harness behind
//!   `charfree throughput` and `BENCH_engine.json`.

#![warn(missing_docs)]
// `.unwrap()` is banned crate-wide; `.expect()` remains available for
// invariants with a stated justification, and tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod block;
mod compiled;
mod engine;
mod kernel;
mod persist;
pub mod throughput;

pub use block::PatternBlock;
pub use compiled::CompiledModel;
pub use engine::{TraceEngine, TraceSummary, DEFAULT_CHUNK};
pub use kernel::{Instr, Kernel};
