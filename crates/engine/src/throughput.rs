//! Throughput measurement harness (`charfree throughput`,
//! `BENCH_engine.json`).
//!
//! Times the same transition stream through three evaluation paths —
//! per-pattern arena traversal on the [`AddPowerModel`] (the reference
//! oracle), single-threaded compiled batch evaluation, and the parallel
//! [`TraceEngine`](crate::TraceEngine) — and reports patterns/second plus
//! kernel compile cost and footprint. Every run cross-checks the summed
//! capacitance of the three paths so a speedup can never silently come
//! from computing something else.

use crate::engine::TraceEngine;
use crate::kernel::Kernel;
use charfree_core::{AddPowerModel, PowerModel};
use std::time::Instant;

/// Repeat each timed path until at least this much wall-clock has been
/// spent, so small circuits and smoke tests still report stable rates.
const MIN_SECONDS: f64 = 0.05;

/// One throughput measurement — the record serialised into
/// `BENCH_engine.json`.
#[derive(Debug, Clone)]
pub struct ThroughputRecord {
    /// Circuit / model display name.
    pub circuit: String,
    /// Macro input count `n`.
    pub inputs: usize,
    /// Source diagram size (nodes, terminals included) in the arena.
    pub add_nodes: usize,
    /// Compiled kernel instruction count.
    pub kernel_instrs: usize,
    /// Distinct terminal values in the kernel table.
    pub kernel_terminals: usize,
    /// Kernel memory footprint in bytes.
    pub kernel_bytes: usize,
    /// Wall-clock seconds spent in [`Kernel::compile`].
    pub compile_seconds: f64,
    /// Transitions per timed repetition.
    pub transitions: usize,
    /// Worker count used by the parallel path.
    pub jobs: usize,
    /// Patterns/second, per-pattern arena traversal.
    pub arena_pps: f64,
    /// Patterns/second, compiled batch evaluation (one thread).
    pub batch_pps: f64,
    /// Patterns/second, compiled batch evaluation (`jobs` threads).
    pub parallel_pps: f64,
    /// Mean switched capacitance (fF) from the arena path.
    pub mean_ff_arena: f64,
    /// Mean switched capacitance (fF) from the compiled paths.
    pub mean_ff_compiled: f64,
    /// `true` when the compiled sum matched the arena sum bit-for-bit.
    pub parity: bool,
}

impl ThroughputRecord {
    /// Compiled single-thread speedup over the arena path.
    pub fn speedup_batch(&self) -> f64 {
        self.batch_pps / self.arena_pps
    }

    /// Parallel speedup over the arena path.
    pub fn speedup_parallel(&self) -> f64 {
        self.parallel_pps / self.arena_pps
    }

    /// Parallel scaling over the single-threaded compiled path.
    pub fn scaling(&self) -> f64 {
        self.parallel_pps / self.batch_pps
    }

    /// Serialises the record as a JSON object (the workspace vendors no
    /// serde; the format is flat enough to emit by hand).
    pub fn to_json(&self) -> String {
        let esc: String = self
            .circuit
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if c.is_control() => " ".chars().collect(),
                c => vec![c],
            })
            .collect();
        format!(
            concat!(
                "{{\n",
                "  \"circuit\": \"{}\",\n",
                "  \"inputs\": {},\n",
                "  \"add_nodes\": {},\n",
                "  \"kernel_instrs\": {},\n",
                "  \"kernel_terminals\": {},\n",
                "  \"kernel_bytes\": {},\n",
                "  \"compile_seconds\": {:.6},\n",
                "  \"transitions\": {},\n",
                "  \"jobs\": {},\n",
                "  \"arena_patterns_per_sec\": {:.1},\n",
                "  \"batch_patterns_per_sec\": {:.1},\n",
                "  \"parallel_patterns_per_sec\": {:.1},\n",
                "  \"speedup_batch\": {:.2},\n",
                "  \"speedup_parallel\": {:.2},\n",
                "  \"parallel_scaling\": {:.2},\n",
                "  \"mean_ff_arena\": {:.6},\n",
                "  \"mean_ff_compiled\": {:.6},\n",
                "  \"parity\": {}\n",
                "}}"
            ),
            esc,
            self.inputs,
            self.add_nodes,
            self.kernel_instrs,
            self.kernel_terminals,
            self.kernel_bytes,
            self.compile_seconds,
            self.transitions,
            self.jobs,
            self.arena_pps,
            self.batch_pps,
            self.parallel_pps,
            self.speedup_batch(),
            self.speedup_parallel(),
            self.scaling(),
            self.mean_ff_arena,
            self.mean_ff_compiled,
            self.parity,
        )
    }
}

/// Serialises several records as a JSON array.
pub fn records_to_json(records: &[ThroughputRecord]) -> String {
    let items: Vec<String> = records
        .iter()
        .map(|r| {
            let body = r.to_json();
            let indented: Vec<String> = body.lines().map(|l| format!("  {l}")).collect();
            indented.join("\n")
        })
        .collect();
    format!("[\n{}\n]\n", items.join(",\n"))
}

/// Runs `body` repeatedly until [`MIN_SECONDS`] of wall-clock have
/// elapsed; returns the achieved rate in `units_per_rep / second`.
fn rate(units_per_rep: usize, mut body: impl FnMut()) -> f64 {
    let start = Instant::now();
    let mut reps = 0usize;
    loop {
        body();
        reps += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= MIN_SECONDS {
            return (units_per_rep * reps) as f64 / elapsed;
        }
    }
}

/// Measures `model` over the `patterns.len() − 1` transitions of a
/// pattern stream.
///
/// # Panics
///
/// Panics for fewer than two patterns (no transitions to time).
pub fn measure(model: &AddPowerModel, patterns: &[Vec<bool>], jobs: usize) -> ThroughputRecord {
    assert!(patterns.len() >= 2, "need at least one transition");
    let transitions = patterns.len() - 1;

    let compile_start = Instant::now();
    let kernel = Kernel::compile(model);
    let compile_seconds = compile_start.elapsed().as_secs_f64();

    // Reference result (and parity baseline) from the arena oracle.
    let arena_trace = model.capacitance_trace(patterns);
    let arena_sum: f64 = arena_trace.iter().sum();

    let single = TraceEngine::new(&kernel).jobs(1);
    let many = TraceEngine::new(&kernel).jobs(jobs);
    let compiled_sum = single.evaluate(patterns).sum_ff;
    let parity = compiled_sum.to_bits() == arena_sum.to_bits()
        || (compiled_sum - arena_sum).abs() <= 1e-9 * arena_sum.abs().max(1.0);

    let arena_pps = rate(transitions, || {
        let mut sum = 0.0;
        for t in 0..transitions {
            sum += model
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
        }
        std::hint::black_box(sum);
    });
    let batch_pps = rate(transitions, || {
        std::hint::black_box(single.evaluate(patterns).sum_ff);
    });
    let parallel_pps = rate(transitions, || {
        std::hint::black_box(many.evaluate(patterns).sum_ff);
    });

    ThroughputRecord {
        circuit: model.name().to_owned(),
        inputs: model.num_inputs(),
        add_nodes: model.size(),
        kernel_instrs: kernel.num_instrs(),
        kernel_terminals: kernel.num_terminals(),
        kernel_bytes: kernel.bytes(),
        compile_seconds,
        transitions,
        jobs: many.num_jobs(),
        arena_pps,
        batch_pps,
        parallel_pps,
        mean_ff_arena: arena_sum / transitions as f64,
        mean_ff_compiled: compiled_sum / transitions as f64,
        parity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::ModelBuilder;
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::MarkovSource;

    #[test]
    fn measure_reports_parity_and_positive_rates() {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::decod(&library)).build();
        let mut source = MarkovSource::new(5, 0.5, 0.4, 9).expect("feasible");
        let patterns = source.sequence(257);
        let record = measure(&model, &patterns, 2);
        assert!(record.parity, "compiled sum diverged from arena sum");
        assert!(record.arena_pps > 0.0);
        assert!(record.batch_pps > 0.0);
        assert!(record.parallel_pps > 0.0);
        assert_eq!(record.transitions, 256);
        let json = record.to_json();
        assert!(json.contains("\"circuit\""));
        assert!(json.contains("\"parity\": true"));
        let arr = records_to_json(&[record.clone(), record]);
        assert!(arr.starts_with("[\n"));
        assert!(arr.trim_end().ends_with(']'));
    }
}
