//! Kernel persistence — `charfree-kernel v1`.
//!
//! A compiled kernel is an artifact in its own right: it can be shipped
//! next to (or instead of) a `.cfm` model file and loaded by evaluation
//! hosts that never link the diagram manager. The format mirrors the
//! model format's conventions — versioned text, `f64`s as hexadecimal
//! IEEE-754 bit patterns for bit-exact round trips — and every load
//! re-validates the structural invariants (references in range, internal
//! references strictly backwards) before the kernel is handed out.
//!
//! ```text
//! charfree-kernel v1
//! name <display name>
//! inputs <n>
//! vars <2n>
//! interleaved <0|1>
//! xi <var> … <var>          n entries
//! xf <var> … <var>          n entries
//! terminals <hex64> … <hex64>
//! instrs <count>
//! <var> <ref> <ref>          one line per instruction, children first
//! root <ref>
//! ```
//!
//! References are `I<k>` (instruction `k`) or `T<k>` (terminal `k`).

use crate::kernel::{Instr, Kernel, TERMINAL_BIT};
use std::io::{self, BufRead, Write};

const MAGIC: &str = "charfree-kernel v1";

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn fmt_ref(r: u32) -> String {
    if r & TERMINAL_BIT != 0 {
        format!("T{}", r & !TERMINAL_BIT)
    } else {
        format!("I{r}")
    }
}

fn parse_ref(tok: &str) -> io::Result<u32> {
    if let Some(t) = tok.strip_prefix('T') {
        let k: u32 = t.parse().map_err(|_| bad("bad terminal reference"))?;
        if k & TERMINAL_BIT != 0 {
            return Err(bad("terminal reference out of range"));
        }
        Ok(k | TERMINAL_BIT)
    } else if let Some(i) = tok.strip_prefix('I') {
        let k: u32 = i.parse().map_err(|_| bad("bad instruction reference"))?;
        if k & TERMINAL_BIT != 0 {
            return Err(bad("instruction reference out of range"));
        }
        Ok(k)
    } else {
        Err(bad("reference must start with I or T"))
    }
}

impl Kernel {
    /// Writes the kernel to `w` in the versioned `charfree-kernel v1`
    /// text format. Terminal values are stored as IEEE-754 bit patterns,
    /// so a reloaded kernel evaluates bit-for-bit identically.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{MAGIC}")?;
        writeln!(w, "name {}", self.name)?;
        writeln!(w, "inputs {}", self.num_inputs)?;
        writeln!(w, "vars {}", self.num_vars)?;
        writeln!(w, "interleaved {}", u8::from(self.interleaved))?;
        let vars = |vs: &[u32]| {
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        writeln!(w, "xi {}", vars(&self.xi_vars))?;
        writeln!(w, "xf {}", vars(&self.xf_vars))?;
        let terms: Vec<String> = self
            .terminals
            .iter()
            .map(|t| format!("{:016x}", t.to_bits()))
            .collect();
        writeln!(w, "terminals {}", terms.join(" "))?;
        writeln!(w, "instrs {}", self.instrs.len())?;
        for ins in &self.instrs {
            writeln!(w, "{} {} {}", ins.var, fmt_ref(ins.lo), fmt_ref(ins.hi))?;
        }
        writeln!(w, "root {}", fmt_ref(self.root))
    }

    /// Reads a kernel written by [`Kernel::save`], re-validating every
    /// structural invariant before returning it.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for version mismatches, malformed lines, or
    /// kernels that fail validation (out-of-range or forward references,
    /// non-permutation input maps, NaN terminals).
    pub fn load<R: BufRead>(mut r: R) -> io::Result<Kernel> {
        let mut line = String::new();
        let mut next = |r: &mut R| -> io::Result<String> {
            line.clear();
            if r.read_line(&mut line)? == 0 {
                return Err(bad("unexpected end of kernel file"));
            }
            Ok(line.trim_end().to_owned())
        };

        if next(&mut r)? != MAGIC {
            return Err(bad("not a charfree-kernel v1 file"));
        }
        let name = next(&mut r)?
            .strip_prefix("name ")
            .ok_or_else(|| bad("missing name"))?
            .to_owned();
        let num_inputs: usize = next(&mut r)?
            .strip_prefix("inputs ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing inputs"))?;
        let num_vars: u32 = next(&mut r)?
            .strip_prefix("vars ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing vars"))?;
        let interleaved = match next(&mut r)?.strip_prefix("interleaved ") {
            Some("0") => false,
            Some("1") => true,
            _ => return Err(bad("bad interleaved flag")),
        };
        let parse_vars = |line: String, tag: &str| -> io::Result<Vec<u32>> {
            line.strip_prefix(tag)
                .ok_or_else(|| bad(format!("missing {}", tag.trim())))?
                .split_whitespace()
                .map(|t| t.parse().map_err(|_| bad("bad variable index")))
                .collect()
        };
        let xi_vars = parse_vars(next(&mut r)?, "xi ")?;
        let xf_vars = parse_vars(next(&mut r)?, "xf ")?;
        let terminals: Vec<f64> = next(&mut r)?
            .strip_prefix("terminals ")
            .ok_or_else(|| bad("missing terminals"))?
            .split_whitespace()
            .map(|t| {
                u64::from_str_radix(t, 16)
                    .map(f64::from_bits)
                    .map_err(|_| bad("bad terminal bits"))
            })
            .collect::<io::Result<_>>()?;
        let instr_count: usize = next(&mut r)?
            .strip_prefix("instrs ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("missing instrs"))?;
        let mut instrs = Vec::with_capacity(instr_count);
        for _ in 0..instr_count {
            let iline = next(&mut r)?;
            let mut toks = iline.split_whitespace();
            let var: u32 = toks
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("bad instruction variable"))?;
            let lo = parse_ref(toks.next().ok_or_else(|| bad("missing lo reference"))?)?;
            let hi = parse_ref(toks.next().ok_or_else(|| bad("missing hi reference"))?)?;
            if toks.next().is_some() {
                return Err(bad("trailing tokens on instruction line"));
            }
            instrs.push(Instr { var, lo, hi });
        }
        let root = parse_ref(
            next(&mut r)?
                .strip_prefix("root ")
                .ok_or_else(|| bad("missing root"))?,
        )?;

        let mut kernel = Kernel {
            name,
            num_vars,
            num_inputs,
            instrs,
            terminals,
            root,
            xi_vars,
            xf_vars,
            interleaved,
            program: Vec::new(),
            depth: 0,
            fused_depth: 0,
        };
        kernel.validate().map_err(bad)?;
        kernel.rebuild_program();
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::ModelBuilder;
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::ExhaustivePairs;

    fn round_trip(kernel: &Kernel) -> Kernel {
        let mut buf = Vec::new();
        kernel.save(&mut buf).expect("saves");
        Kernel::load(buf.as_slice()).expect("loads")
    }

    #[test]
    fn kernel_round_trips_bit_exactly() {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::decod(&library)).build();
        let kernel = Kernel::compile(&model);
        let back = round_trip(&kernel);
        assert_eq!(back.name(), kernel.name());
        assert_eq!(back.num_instrs(), kernel.num_instrs());
        assert_eq!(back.is_interleaved(), kernel.is_interleaved());
        for (xi, xf) in ExhaustivePairs::new(5) {
            assert_eq!(
                back.eval_transition(&xi, &xf).to_bits(),
                kernel.eval_transition(&xi, &xf).to_bits(),
                "xi={xi:?} xf={xf:?}"
            );
        }
    }

    #[test]
    fn degraded_kernel_round_trips() {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::cm85(&library))
            .max_nodes(150)
            .build();
        let kernel = Kernel::compile(&model);
        let back = round_trip(&kernel);
        let xi = vec![true; 11];
        let xf = vec![false; 11];
        assert_eq!(
            back.eval_transition(&xi, &xf).to_bits(),
            kernel.eval_transition(&xi, &xf).to_bits()
        );
        assert_eq!(
            back.expected_capacitance(0.5, 0.3).to_bits(),
            kernel.expected_capacitance(0.5, 0.3).to_bits()
        );
    }

    #[test]
    fn rejects_malformed_kernels() {
        assert!(Kernel::load("garbage".as_bytes()).is_err());
        assert!(Kernel::load("charfree-kernel v1\n".as_bytes()).is_err());
        // A forward reference must be rejected by validation.
        let text = "charfree-kernel v1\nname x\ninputs 1\nvars 2\ninterleaved 1\n\
                    xi 0\nxf 1\nterminals 0000000000000000\ninstrs 1\n0 I0 T0\nroot I0\n";
        assert!(Kernel::load(text.as_bytes()).is_err());
        // Same shape with a backward (terminal) reference is fine.
        let text = "charfree-kernel v1\nname x\ninputs 1\nvars 2\ninterleaved 1\n\
                    xi 0\nxf 1\nterminals 0000000000000000\ninstrs 1\n0 T0 T0\nroot I0\n";
        assert!(Kernel::load(text.as_bytes()).is_ok());
    }
}
