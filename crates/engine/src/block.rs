//! Packed bit-matrix pattern blocks.
//!
//! A [`PatternBlock`] stores a stream of `2n`-variable transition
//! assignments column-packed: one `u64` word per diagram variable per 64
//! transitions ("lanes"). Lane `t mod 64` of word `words[(t / 64) ·
//! num_vars + var]` is the value of `var` at transition `t`. The layout
//! keeps the whole working set of one 64-transition group inside a few
//! cache lines regardless of stream length, which is what lets
//! [`Kernel::eval_batch_into`](crate::Kernel::eval_batch_into) stay
//! memory-bound-friendly.

use crate::kernel::Kernel;

/// A packed block of transition assignments (see module docs).
#[derive(Debug, Clone)]
pub struct PatternBlock {
    num_vars: usize,
    len: usize,
    words: Vec<u64>,
}

impl PatternBlock {
    /// An empty block over `num_vars` diagram variables.
    pub fn new(num_vars: usize) -> PatternBlock {
        PatternBlock {
            num_vars,
            len: 0,
            words: Vec::new(),
        }
    }

    /// Number of transitions stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no transitions are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of diagram variables per transition.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Drops all stored transitions, keeping the allocation (the chunked
    /// trace paths reuse one block per worker).
    pub fn clear(&mut self) {
        self.len = 0;
        self.words.clear();
    }

    /// The `num_vars` packed words of 64-lane group `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is past the last group.
    #[inline]
    pub(crate) fn block_words(&self, b: usize) -> &[u64] {
        &self.words[b * self.num_vars..(b + 1) * self.num_vars]
    }

    /// Appends one complete diagram-variable assignment as a transition
    /// lane.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is narrower than `num_vars`.
    pub fn push_assignment(&mut self, assignment: &[bool]) {
        assert!(
            assignment.len() >= self.num_vars,
            "assignment narrower than the block"
        );
        let lane = self.len % 64;
        if lane == 0 {
            self.words.resize(self.words.len() + self.num_vars, 0);
        }
        let base = self.words.len() - self.num_vars;
        for (v, &bit) in assignment.iter().take(self.num_vars).enumerate() {
            if bit {
                self.words[base + v] |= 1u64 << lane;
            }
        }
        self.len += 1;
    }

    /// Appends the `(xi, xf)` transition using `kernel`'s input-to-
    /// variable maps.
    ///
    /// # Panics
    ///
    /// Panics if the block is narrower than the kernel's variable count or
    /// the patterns are not `kernel.num_inputs()` wide.
    pub fn push_transition(&mut self, kernel: &Kernel, xi: &[bool], xf: &[bool]) {
        assert!(
            self.num_vars >= kernel.num_vars() as usize,
            "block narrower than the kernel"
        );
        assert_eq!(xi.len(), kernel.num_inputs(), "pattern width mismatch");
        assert_eq!(xf.len(), kernel.num_inputs(), "pattern width mismatch");
        let lane = self.len % 64;
        if lane == 0 {
            self.words.resize(self.words.len() + self.num_vars, 0);
        }
        let base = self.words.len() - self.num_vars;
        // Branchless: the input bits are data (often random), so an `if`
        // per bit would mispredict half the time.
        for i in 0..kernel.num_inputs() {
            self.words[base + kernel.xi_vars[i] as usize] |= (xi[i] as u64) << lane;
            self.words[base + kernel.xf_vars[i] as usize] |= (xf[i] as u64) << lane;
        }
        self.len += 1;
    }

    /// Packs the `patterns.len() − 1` consecutive transitions of a pattern
    /// window (empty for fewer than two patterns).
    pub fn from_patterns(kernel: &Kernel, patterns: &[Vec<bool>]) -> PatternBlock {
        let mut block = PatternBlock::new(kernel.num_vars() as usize);
        block.extend_from_patterns(kernel, patterns);
        block
    }

    /// Appends every consecutive transition of a pattern window.
    ///
    /// Whole 64-transition groups take a transposed fast path: for each
    /// input, the 64 initial-state bits are gathered into one register
    /// word, and the final-state word is the same gather shifted down one
    /// lane (transition `t`'s final state is transition `t + 1`'s initial
    /// state) with the window's next pattern filling the top bit. That
    /// replaces per-bit read-modify-writes of memory with `2n` register
    /// accumulations per group and no data-dependent branches.
    pub fn extend_from_patterns(&mut self, kernel: &Kernel, patterns: &[Vec<bool>]) {
        let total = patterns.len().saturating_sub(1);
        let mut t = 0usize;
        // Fast path only from a group boundary (the worker loops clear
        // and refill, so this is the common case).
        if self.len.is_multiple_of(64) && self.num_vars == kernel.num_vars() as usize {
            let n = kernel.num_inputs();
            let mut acc = vec![0u64; n];
            while total - t >= 64 {
                // Row-major accumulation: one pass over the 64 patterns,
                // each row's bytes read sequentially and or-shifted by a
                // per-row-constant lane (auto-vectorizable), instead of
                // 64 strided row revisits per variable.
                acc.fill(0);
                let rows = &patterns[t..t + 65];
                for (q, quad) in rows[..64].chunks_exact(4).enumerate() {
                    // Four rows per pass over `acc` quarters the
                    // accumulator load/store traffic and gives the core
                    // independent byte loads to overlap.
                    let lane = 4 * q;
                    let (r0, r1, r2, r3) =
                        (&quad[0][..n], &quad[1][..n], &quad[2][..n], &quad[3][..n]);
                    for (i, a) in acc.iter_mut().enumerate() {
                        *a |= ((r0[i] as u64)
                            | (r1[i] as u64) << 1
                            | (r2[i] as u64) << 2
                            | (r3[i] as u64) << 3)
                            << lane;
                    }
                }
                self.words.resize(self.words.len() + self.num_vars, 0);
                let base = self.words.len() - self.num_vars;
                let last = &rows[64][..n];
                for i in 0..n {
                    let wi = acc[i];
                    let wf = (wi >> 1) | ((last[i] as u64) << 63);
                    self.words[base + kernel.xi_vars[i] as usize] = wi;
                    self.words[base + kernel.xf_vars[i] as usize] = wf;
                }
                self.len += 64;
                t += 64;
            }
        }
        while t < total {
            self.push_transition(kernel, &patterns[t], &patterns[t + 1]);
            t += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::{ModelBuilder, PowerModel};
    use charfree_netlist::{benchmarks, Library};
    use charfree_sim::MarkovSource;

    #[test]
    fn packing_round_trips_through_batch_eval() {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::cm85(&library)).build();
        let kernel = Kernel::compile(&model);
        let mut source = MarkovSource::new(11, 0.5, 0.4, 3).expect("feasible");
        let patterns = source.sequence(130); // crosses two 64-lane groups
        let block = PatternBlock::from_patterns(&kernel, &patterns);
        assert_eq!(block.len(), 129);
        let got = kernel.eval_batch(&block);
        for (t, &c) in got.iter().enumerate() {
            assert_eq!(
                c.to_bits(),
                model
                    .capacitance(&patterns[t], &patterns[t + 1])
                    .femtofarads()
                    .to_bits(),
                "transition {t}"
            );
        }
    }

    #[test]
    fn clear_reuses_allocation() {
        let library = Library::test_library();
        let model = ModelBuilder::new(&benchmarks::decod(&library)).build();
        let kernel = Kernel::compile(&model);
        let mut block = PatternBlock::new(kernel.num_vars() as usize);
        let xi = vec![true; 5];
        let xf = vec![false; 5];
        block.push_transition(&kernel, &xi, &xf);
        assert_eq!(block.len(), 1);
        block.clear();
        assert!(block.is_empty());
        block.push_transition(&kernel, &xi, &xf);
        assert_eq!(
            kernel.eval_batch(&block)[0],
            kernel.eval_transition(&xi, &xf)
        );
    }
}
