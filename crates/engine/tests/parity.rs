//! Differential parity: the compiled kernel against the arena model.
//!
//! The [`AddPowerModel`] is the engine's reference oracle — every path
//! through the engine (scalar walk, packed batch, sharded trace,
//! persistence) must reproduce the arena's answers **bit for bit**, on
//! random multi-level netlists, exact and degraded models alike, and
//! regardless of the worker count.

use charfree_core::{AddPowerModel, ModelBuilder, PowerModel};
use charfree_engine::{Kernel, TraceEngine};
use charfree_netlist::{benchmarks, Library};
use charfree_sim::MarkovSource;
use proptest::prelude::*;

/// How a random model is built from its netlist.
#[derive(Debug, Clone, Copy)]
enum Build {
    /// Exact construction, no resource pressure.
    Exact,
    /// Size-capped construction (the approximation ladder may fire).
    MaxNodes(usize),
    /// Fault-injected construction (the degradation ladder fires).
    TripAfter(u64),
}

fn build_model(netlist: &charfree_netlist::Netlist, build: Build) -> AddPowerModel {
    match build {
        Build::Exact => ModelBuilder::new(netlist).build(),
        Build::MaxNodes(k) => ModelBuilder::new(netlist).max_nodes(k).build(),
        Build::TripAfter(k) => ModelBuilder::new(netlist)
            .trip_after(k)
            .try_build()
            .expect("fault injection degrades, never fails"),
    }
}

fn arb_build() -> impl Strategy<Value = Build> {
    prop_oneof![
        (0u8..1).prop_map(|_| Build::Exact),
        (40usize..400).prop_map(Build::MaxNodes),
        (5u64..120).prop_map(Build::TripAfter),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scalar and batched kernel evaluation reproduce the arena's
    /// per-transition capacitance bit-for-bit on random 8-input
    /// netlists, whether the model built exactly or degraded.
    #[test]
    fn kernel_matches_arena_on_random_netlists(
        seed in 0u64..1_000,
        gates in 6usize..26,
        build in arb_build(),
        trace_seed in 0u64..1_000,
    ) {
        let library = Library::test_library();
        let netlist = benchmarks::random_logic("prop", 8, gates, seed, &library);
        let model = build_model(&netlist, build);
        let kernel = Kernel::compile(&model);

        let mut source = MarkovSource::new(8, 0.5, 0.4, trace_seed).expect("feasible");
        let patterns = source.sequence(200);

        // Batched trace (covers packing + the fused walk).
        let trace = TraceEngine::new(&kernel).chunk_size(64).trace(&patterns);
        prop_assert_eq!(trace.len(), 199);
        for (t, &got) in trace.iter().enumerate() {
            let want = model
                .capacitance(&patterns[t], &patterns[t + 1])
                .femtofarads();
            prop_assert_eq!(
                got.to_bits(), want.to_bits(),
                "batch transition {} diverged: kernel {} vs arena {}", t, got, want
            );
            // Scalar walk agrees with both.
            let scalar = kernel.eval_transition(&patterns[t], &patterns[t + 1]);
            prop_assert_eq!(scalar.to_bits(), want.to_bits());
        }
    }

    /// Worker count never changes a summary: chunk boundaries and the
    /// merge order are fixed by the chunk size alone.
    #[test]
    fn jobs_are_bit_for_bit_deterministic(
        seed in 0u64..1_000,
        gates in 6usize..26,
        chunk in 16usize..200,
    ) {
        let library = Library::test_library();
        let netlist = benchmarks::random_logic("prop", 8, gates, seed, &library);
        let model = ModelBuilder::new(&netlist).build();
        let kernel = Kernel::compile(&model);
        let mut source = MarkovSource::new(8, 0.5, 0.5, seed ^ 0xdead).expect("feasible");
        let patterns = source.sequence(700);

        let one = TraceEngine::new(&kernel).chunk_size(chunk).jobs(1).evaluate(&patterns);
        let eight = TraceEngine::new(&kernel).chunk_size(chunk).jobs(8).evaluate(&patterns);
        prop_assert_eq!(one.transitions, eight.transitions);
        prop_assert_eq!(one.sum_ff.to_bits(), eight.sum_ff.to_bits());
        prop_assert_eq!(one.max_ff.to_bits(), eight.max_ff.to_bits());

        let t1 = TraceEngine::new(&kernel).chunk_size(chunk).jobs(1).trace(&patterns);
        let t8 = TraceEngine::new(&kernel).chunk_size(chunk).jobs(8).trace(&patterns);
        for (a, b) in t1.iter().zip(&t8) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// A kernel that round-trips through the on-disk format evaluates
    /// bit-for-bit like the freshly compiled one (and therefore like the
    /// arena).
    #[test]
    fn persisted_kernel_matches_compiled(
        seed in 0u64..1_000,
        gates in 6usize..26,
        build in arb_build(),
    ) {
        let library = Library::test_library();
        let netlist = benchmarks::random_logic("prop", 8, gates, seed, &library);
        let model = build_model(&netlist, build);
        let compiled = Kernel::compile(&model);

        let mut buf = Vec::new();
        compiled.save(&mut buf).expect("saves");
        let loaded = Kernel::load(buf.as_slice()).expect("round-trips");

        let mut source = MarkovSource::new(8, 0.5, 0.6, seed).expect("feasible");
        let patterns = source.sequence(150);
        let from_compiled = TraceEngine::new(&compiled).trace(&patterns);
        let from_loaded = TraceEngine::new(&loaded).trace(&patterns);
        for (t, (a, b)) in from_compiled.iter().zip(&from_loaded).enumerate() {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "transition {} diverged after reload", t);
        }
        if compiled.is_interleaved() {
            prop_assert_eq!(
                loaded.expected_capacitance(0.5, 0.3).to_bits(),
                compiled.expected_capacitance(0.5, 0.3).to_bits()
            );
        }
    }
}

/// Load-then-eval through an actual `.cfk` file on disk equals
/// compile-then-eval — the full persistence path the CLI uses.
#[test]
fn kernel_file_round_trip_preserves_evaluation() {
    let library = Library::test_library();
    let model = ModelBuilder::new(&benchmarks::cm85(&library))
        .max_nodes(400)
        .build();
    let compiled = Kernel::compile(&model);

    let path = std::env::temp_dir().join(format!("charfree-parity-{}.cfk", std::process::id()));
    compiled
        .save(std::fs::File::create(&path).expect("create"))
        .expect("save");
    let loaded = Kernel::load(std::io::BufReader::new(
        std::fs::File::open(&path).expect("open"),
    ))
    .expect("load");
    std::fs::remove_file(&path).ok();

    let mut source = MarkovSource::new(11, 0.5, 0.5, 3).expect("feasible");
    let patterns = source.sequence(500);
    let a = TraceEngine::new(&compiled).evaluate(&patterns);
    let b = TraceEngine::new(&loaded).evaluate(&patterns);
    assert_eq!(a.sum_ff.to_bits(), b.sum_ff.to_bits());
    assert_eq!(a.max_ff.to_bits(), b.max_ff.to_bits());
    for (t, (x, y)) in TraceEngine::new(&compiled)
        .trace(&patterns)
        .iter()
        .zip(&TraceEngine::new(&loaded).trace(&patterns))
        .enumerate()
    {
        assert_eq!(x.to_bits(), y.to_bits(), "transition {t}");
        let want = model
            .capacitance(&patterns[t], &patterns[t + 1])
            .femtofarads();
        assert_eq!(x.to_bits(), want.to_bits(), "arena divergence at {t}");
    }
}

/// The shared hand-built fixture (the same one the model-vs-golden
/// integration suite uses) runs exhaustively through the kernel: every
/// one of the 8x8 transitions agrees with the arena bit for bit.
#[test]
fn kernel_matches_arena_on_shared_hand_fixture() {
    let library = Library::test_library();
    let netlist = charfree_netlist::testutil::hand_unit(&library);
    let model = ModelBuilder::new(&netlist).build();
    let kernel = Kernel::compile(&model);
    for (xi, xf) in charfree_sim::ExhaustivePairs::new(3) {
        let want = model.capacitance(&xi, &xf).femtofarads();
        let got = kernel.eval_transition(&xi, &xf);
        assert_eq!(got.to_bits(), want.to_bits(), "xi={xi:?} xf={xf:?}");
    }
}
