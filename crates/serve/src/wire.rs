//! The length-prefixed binary wire protocol.
//!
//! Carries exactly the same [`Request`]/[`Response`] surface as the
//! JSON-lines protocol — and is **bit-identical in results** to it: both
//! protocols ship `f64` payloads as IEEE-754 bit patterns (16 hex digits
//! in JSON, raw little-endian `u64` words here), so a value crosses
//! either wire without any decimal round trip.
//!
//! # Connection opening (version negotiation)
//!
//! The client's first 8 bytes are the hello:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CFB1"
//! 4       2     min supported version (u16 LE)
//! 6       2     max supported version (u16 LE)
//! ```
//!
//! The server answers with 6 bytes: the magic followed by the chosen
//! version (u16 LE), or `0` when no common version exists — in which
//! case a typed error frame follows and the connection closes. The
//! same first-byte sniff that routes this hello also keeps JSON clients
//! working on the same port: `C` (of `CFB1`) selects binary, `{` or
//! whitespace selects JSON lines, `G` (of `GET `) selects the HTTP
//! metrics answer.
//!
//! # Frames
//!
//! After negotiation, both directions speak frames:
//!
//! ```text
//! offset  size  field
//! 0       4     frame length (u32 LE) = 1 + payload length
//! 4       1     frame type
//! 5       n     payload
//! ```
//!
//! Request frame types are `0x01..=0x08`; response types echo them with
//! the high bit set (`0x81..=0x87`), and `0xFF` is the typed error
//! frame. A request frame longer than [`MAX_FRAME_BYTES`] is rejected
//! *from the length prefix alone* — the server never buffers an
//! oversized frame — with a typed `bad-request`, then the connection
//! closes (the stream can no longer be trusted to be in sync).
//!
//! Within payloads: integers are little-endian; strings are
//! `u32 LE length + UTF-8 bytes`; optional integers are a presence byte
//! followed by the value; `f64`s are their `u64` bit patterns; pattern
//! blocks are bit-packed `u64` words (see [`encode_request`]).

use crate::json::Json;
use crate::proto::{ErrorKind, Request, Response, WireBuildOptions, WireEvalParams};

/// The 4-byte protocol magic (`C` doubles as the first-byte protocol
/// sniff).
pub const MAGIC: [u8; 4] = *b"CFB1";

/// The one protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Hard cap on a single frame (length prefix + frame body), either
/// direction. Large enough for a 1M-value trace response; small enough
/// that a hostile length prefix cannot balloon memory.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Request frame types.
pub mod req_type {
    /// `load`.
    pub const LOAD: u8 = 0x01;
    /// `eval`.
    pub const EVAL: u8 = 0x02;
    /// `trace`.
    pub const TRACE: u8 = 0x03;
    /// `expected`.
    pub const EXPECTED: u8 = 0x04;
    /// `stats`.
    pub const STATS: u8 = 0x05;
    /// `shutdown`.
    pub const SHUTDOWN: u8 = 0x06;
    /// `metrics`.
    pub const METRICS: u8 = 0x07;
    /// `tracep` (explicit patterns).
    pub const TRACE_DIRECT: u8 = 0x08;
}

/// Response frame types.
pub mod resp_type {
    /// `load` outcome.
    pub const LOAD: u8 = 0x81;
    /// `eval` outcome.
    pub const EVAL: u8 = 0x82;
    /// `trace` outcome.
    pub const TRACE: u8 = 0x83;
    /// `expected` outcome.
    pub const EXPECTED: u8 = 0x84;
    /// `stats` payload.
    pub const STATS: u8 = 0x85;
    /// `shutdown` acknowledged.
    pub const SHUTDOWN: u8 = 0x86;
    /// `metrics` payload.
    pub const METRICS: u8 = 0x87;
    /// Typed error.
    pub const ERROR: u8 = 0xFF;
}

/// Encodes the client hello.
pub fn encode_hello(min: u16, max: u16) -> [u8; 8] {
    let mut hello = [0u8; 8];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4..6].copy_from_slice(&min.to_le_bytes());
    hello[6..8].copy_from_slice(&max.to_le_bytes());
    hello
}

/// Parses the client hello: `(min, max)` supported versions.
///
/// # Errors
///
/// A diagnostic on bad magic or an inverted version range.
pub fn parse_hello(bytes: &[u8; 8]) -> Result<(u16, u16), String> {
    if bytes[..4] != MAGIC {
        return Err(format!("bad magic {:02x?}", &bytes[..4]));
    }
    let min = u16::from_le_bytes([bytes[4], bytes[5]]);
    let max = u16::from_le_bytes([bytes[6], bytes[7]]);
    if min > max {
        return Err(format!("inverted version range {min}..{max}"));
    }
    Ok((min, max))
}

/// Encodes the server's hello acknowledgement (`chosen == 0` rejects).
pub fn encode_hello_ack(chosen: u16) -> [u8; 6] {
    let mut ack = [0u8; 6];
    ack[..4].copy_from_slice(&MAGIC);
    ack[4..6].copy_from_slice(&chosen.to_le_bytes());
    ack
}

/// Parses the server's hello acknowledgement.
///
/// # Errors
///
/// A diagnostic on bad magic or a rejected negotiation (`chosen == 0`).
pub fn parse_hello_ack(bytes: &[u8; 6]) -> Result<u16, String> {
    if bytes[..4] != MAGIC {
        return Err(format!("bad magic {:02x?}", &bytes[..4]));
    }
    match u16::from_le_bytes([bytes[4], bytes[5]]) {
        0 => Err("server rejected version negotiation".to_owned()),
        v => Ok(v),
    }
}

/// One parsed frame boundary inside a read buffer.
pub struct FrameRef {
    /// Total bytes this frame occupies in the buffer (prefix included).
    pub consumed: usize,
    /// The frame type byte.
    pub ty: u8,
    /// Payload start offset in the buffer.
    pub payload_start: usize,
    /// Payload end offset in the buffer.
    pub payload_end: usize,
}

/// Tries to delimit the next frame in `buf`.
///
/// Returns `Ok(None)` while the frame is still incomplete (read more),
/// `Ok(Some(frame))` once the whole frame is buffered.
///
/// # Errors
///
/// A zero-length or oversized length prefix — detected *before* the
/// body arrives, so a hostile prefix never forces buffering. Framing
/// errors are unrecoverable: the caller must answer with a typed error
/// and close.
pub fn try_frame(buf: &[u8]) -> Result<Option<FrameRef>, String> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len == 0 {
        return Err("zero-length frame (missing type byte)".to_owned());
    }
    if len > MAX_FRAME_BYTES {
        return Err(format!(
            "oversized frame: {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        ));
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some(FrameRef {
        consumed: 4 + len,
        ty: buf[4],
        payload_start: 5,
        payload_end: 4 + len,
    }))
}

// ---- payload writer -------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64_bits(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_opt_u64(buf: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            buf.push(1);
            put_u64(buf, v);
        }
        None => buf.push(0),
    }
}

fn put_build_options(buf: &mut Vec<u8>, options: &WireBuildOptions) {
    put_opt_u64(buf, options.max_nodes.map(|n| n as u64));
    buf.push(u8::from(options.upper_bound));
    put_opt_u64(buf, options.node_budget);
    buf.push(u8::from(options.strict));
    put_opt_u64(buf, options.deadline_ms);
}

fn put_eval_params(buf: &mut Vec<u8>, params: &WireEvalParams) {
    put_u64(buf, params.vectors as u64);
    put_f64_bits(buf, params.sp);
    put_f64_bits(buf, params.st);
    put_u64(buf, params.seed);
    put_opt_u64(buf, params.deadline_ms);
}

/// Bit-packs patterns as `words_per_pattern = ceil(num_inputs / 64)`
/// little-endian `u64` words per pattern; input `i` is bit `i % 64` of
/// word `i / 64`.
fn put_patterns(buf: &mut Vec<u8>, patterns: &[Vec<bool>]) {
    let num_inputs = patterns.first().map_or(0, Vec::len);
    put_u32(buf, num_inputs as u32);
    put_u32(buf, patterns.len() as u32);
    let words = num_inputs.div_ceil(64);
    for pattern in patterns {
        let mut packed = vec![0u64; words];
        for (i, &bit) in pattern.iter().enumerate() {
            if bit {
                packed[i / 64] |= 1u64 << (i % 64);
            }
        }
        for word in packed {
            put_u64(buf, word);
        }
    }
}

fn put_values(buf: &mut Vec<u8>, values: &[f64]) {
    put_u32(buf, values.len() as u32);
    for &v in values {
        put_f64_bits(buf, v);
    }
}

// ---- payload reader -------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| format!("truncated payload (need {n} more bytes)"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64_bits(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-UTF-8 string".to_owned())
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(format!("bad presence byte {other:#04x}")),
        }
    }

    fn build_options(&mut self) -> Result<WireBuildOptions, String> {
        Ok(WireBuildOptions {
            max_nodes: self.opt_u64()?.map(|n| n as usize),
            upper_bound: self.u8()? != 0,
            node_budget: self.opt_u64()?,
            strict: self.u8()? != 0,
            deadline_ms: self.opt_u64()?,
        })
    }

    fn eval_params(&mut self) -> Result<WireEvalParams, String> {
        let vectors = self.u64()? as usize;
        let sp = self.f64_bits()?;
        let st = self.f64_bits()?;
        let seed = self.u64()?;
        let deadline_ms = self.opt_u64()?;
        if !sp.is_finite() || !st.is_finite() {
            return Err("sp/st must be finite".to_owned());
        }
        Ok(WireEvalParams {
            vectors,
            sp,
            st,
            seed,
            deadline_ms,
        })
    }

    fn patterns(&mut self) -> Result<Vec<Vec<bool>>, String> {
        let num_inputs = self.u32()? as usize;
        let num_patterns = self.u32()? as usize;
        if num_inputs == 0 {
            return Err("patterns must have at least one input".to_owned());
        }
        let words = num_inputs.div_ceil(64);
        let mut patterns = Vec::with_capacity(num_patterns.min(1 << 16));
        for _ in 0..num_patterns {
            let mut pattern = Vec::with_capacity(num_inputs);
            let mut packed = Vec::with_capacity(words);
            for _ in 0..words {
                packed.push(self.u64()?);
            }
            for i in 0..num_inputs {
                pattern.push(packed[i / 64] >> (i % 64) & 1 == 1);
            }
            patterns.push(pattern);
        }
        Ok(patterns)
    }

    fn values(&mut self) -> Result<Vec<f64>, String> {
        let count = self.u32()? as usize;
        // The frame cap already bounds count * 8; this guards a lying
        // count inside an honest frame.
        if count * 8 > self.buf.len() {
            return Err(format!("value count {count} exceeds payload"));
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(self.f64_bits()?);
        }
        Ok(values)
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

// ---- request/response codecs ---------------------------------------

/// Appends one request frame (length prefix included) to `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let start = out.len();
    put_u32(out, 0); // patched below
    match req {
        Request::Load { source, options } => {
            out.push(req_type::LOAD);
            put_str(out, source);
            put_build_options(out, options);
        }
        Request::Eval {
            source,
            options,
            params,
        } => {
            out.push(req_type::EVAL);
            put_str(out, source);
            put_build_options(out, options);
            put_eval_params(out, params);
        }
        Request::Trace {
            source,
            options,
            params,
        } => {
            out.push(req_type::TRACE);
            put_str(out, source);
            put_build_options(out, options);
            put_eval_params(out, params);
        }
        Request::TraceDirect {
            source,
            options,
            patterns,
            deadline_ms,
        } => {
            out.push(req_type::TRACE_DIRECT);
            put_str(out, source);
            put_build_options(out, options);
            put_opt_u64(out, *deadline_ms);
            put_patterns(out, patterns);
        }
        Request::Expected { source, sp, st } => {
            out.push(req_type::EXPECTED);
            put_str(out, source);
            put_f64_bits(out, *sp);
            put_f64_bits(out, *st);
        }
        Request::Stats => out.push(req_type::STATS),
        Request::Metrics => out.push(req_type::METRICS),
        Request::Shutdown => out.push(req_type::SHUTDOWN),
    }
    patch_len(out, start);
}

/// Decodes one request frame body.
///
/// # Errors
///
/// A diagnostic suitable for a typed `bad-request` error frame.
pub fn decode_request(ty: u8, payload: &[u8]) -> Result<Request, String> {
    let mut r = Reader::new(payload);
    let req = match ty {
        req_type::LOAD => Request::Load {
            source: r.string()?,
            options: r.build_options()?,
        },
        req_type::EVAL => Request::Eval {
            source: r.string()?,
            options: strip_deadline(r.build_options()?),
            params: r.eval_params()?,
        },
        req_type::TRACE => Request::Trace {
            source: r.string()?,
            options: strip_deadline(r.build_options()?),
            params: r.eval_params()?,
        },
        req_type::TRACE_DIRECT => {
            let source = r.string()?;
            let options = strip_deadline(r.build_options()?);
            let deadline_ms = r.opt_u64()?;
            let patterns = r.patterns()?;
            Request::TraceDirect {
                source,
                options,
                patterns,
                deadline_ms,
            }
        }
        req_type::EXPECTED => {
            let source = r.string()?;
            let sp = r.f64_bits()?;
            let st = r.f64_bits()?;
            if !sp.is_finite() || !st.is_finite() {
                return Err("sp/st must be finite".to_owned());
            }
            Request::Expected { source, sp, st }
        }
        req_type::STATS => Request::Stats,
        req_type::METRICS => Request::Metrics,
        req_type::SHUTDOWN => Request::Shutdown,
        other => return Err(format!("unknown request frame type {other:#04x}")),
    };
    r.finish()?;
    Ok(req)
}

/// `eval`/`trace` keep build options' `deadline_ms` out of the registry
/// key by construction (the wire carries the deadline in the eval
/// params / request deadline instead). Mirror the JSON parser, which
/// never populates it for these commands.
fn strip_deadline(options: WireBuildOptions) -> WireBuildOptions {
    WireBuildOptions {
        deadline_ms: None,
        ..options
    }
}

/// Appends one response frame (length prefix included) to `out`.
pub fn encode_response(resp: &Response, out: &mut Vec<u8>) {
    let start = out.len();
    put_u32(out, 0); // patched below
    match resp {
        Response::Load {
            name,
            instrs,
            terminals,
            bytes,
            apply_steps,
            resident,
        } => {
            out.push(resp_type::LOAD);
            put_str(out, name);
            put_u64(out, *instrs as u64);
            put_u64(out, *terminals as u64);
            put_u64(out, *bytes as u64);
            put_u64(out, *apply_steps);
            out.push(u8::from(*resident));
        }
        Response::Eval {
            name,
            transitions,
            sum_ff,
            max_ff,
        } => {
            out.push(resp_type::EVAL);
            put_str(out, name);
            put_u64(out, *transitions as u64);
            put_f64_bits(out, *sum_ff);
            put_f64_bits(out, *max_ff);
        }
        Response::Trace { name, values } => {
            out.push(resp_type::TRACE);
            put_str(out, name);
            put_values(out, values);
        }
        Response::Expected { name, value } => {
            out.push(resp_type::EXPECTED);
            put_str(out, name);
            put_f64_bits(out, *value);
        }
        Response::Stats(payload) => {
            out.push(resp_type::STATS);
            put_str(out, &payload.to_line());
        }
        Response::Metrics(text) => {
            out.push(resp_type::METRICS);
            put_str(out, text);
        }
        Response::Shutdown => out.push(resp_type::SHUTDOWN),
        Response::Error {
            kind,
            message,
            retry_after_ms,
        } => {
            out.push(resp_type::ERROR);
            out.push(kind.code());
            put_opt_u64(out, *retry_after_ms);
            put_str(out, message);
        }
    }
    patch_len(out, start);
}

/// Decodes one response frame body.
///
/// # Errors
///
/// A diagnostic when the frame is not a valid response.
pub fn decode_response(ty: u8, payload: &[u8]) -> Result<Response, String> {
    let mut r = Reader::new(payload);
    let resp = match ty {
        resp_type::LOAD => Response::Load {
            name: r.string()?,
            instrs: r.u64()? as usize,
            terminals: r.u64()? as usize,
            bytes: r.u64()? as usize,
            apply_steps: r.u64()?,
            resident: r.u8()? != 0,
        },
        resp_type::EVAL => Response::Eval {
            name: r.string()?,
            transitions: r.u64()? as usize,
            sum_ff: r.f64_bits()?,
            max_ff: r.f64_bits()?,
        },
        resp_type::TRACE => Response::Trace {
            name: r.string()?,
            values: r.values()?,
        },
        resp_type::EXPECTED => Response::Expected {
            name: r.string()?,
            value: r.f64_bits()?,
        },
        resp_type::STATS => {
            let text = r.string()?;
            Response::Stats(crate::json::parse(&text).unwrap_or(Json::Null))
        }
        resp_type::METRICS => Response::Metrics(r.string()?),
        resp_type::SHUTDOWN => Response::Shutdown,
        resp_type::ERROR => {
            let kind = ErrorKind::from_code(r.u8()?);
            let retry_after_ms = r.opt_u64()?;
            let message = r.string()?;
            Response::Error {
                kind,
                message,
                retry_after_ms,
            }
        }
        other => return Err(format!("unknown response frame type {other:#04x}")),
    };
    r.finish()?;
    Ok(resp)
}

fn patch_len(out: &mut [u8], start: usize) {
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request) -> Request {
        let mut buf = Vec::new();
        encode_request(req, &mut buf);
        let frame = try_frame(&buf).expect("frames").expect("complete frame");
        assert_eq!(frame.consumed, buf.len());
        decode_request(frame.ty, &buf[frame.payload_start..frame.payload_end]).expect("decodes")
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut buf = Vec::new();
        encode_response(resp, &mut buf);
        let frame = try_frame(&buf).expect("frames").expect("complete frame");
        decode_response(frame.ty, &buf[frame.payload_start..frame.payload_end]).expect("decodes")
    }

    #[test]
    fn hello_negotiation_round_trips() {
        let hello = encode_hello(1, 3);
        assert_eq!(parse_hello(&hello).expect("parses"), (1, 3));
        let ack = encode_hello_ack(2);
        assert_eq!(parse_hello_ack(&ack).expect("parses"), 2);
        assert!(parse_hello_ack(&encode_hello_ack(0)).is_err(), "0 rejects");
        let mut bad = hello;
        bad[0] = b'X';
        assert!(parse_hello(&bad).is_err(), "bad magic rejected");
        assert!(parse_hello(&encode_hello(5, 2)).is_err(), "inverted range");
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let reqs = [
            Request::Load {
                source: "decod".to_owned(),
                options: WireBuildOptions {
                    max_nodes: Some(300),
                    upper_bound: true,
                    node_budget: Some(500),
                    strict: true,
                    deadline_ms: Some(750),
                },
            },
            Request::Eval {
                source: "x.blif".to_owned(),
                options: WireBuildOptions::default(),
                params: WireEvalParams {
                    vectors: 500,
                    sp: 0.5,
                    st: 0.3,
                    seed: u64::MAX,
                    deadline_ms: None,
                },
            },
            Request::Trace {
                source: "decod".to_owned(),
                options: WireBuildOptions {
                    max_nodes: Some(128),
                    ..WireBuildOptions::default()
                },
                params: WireEvalParams {
                    vectors: 64,
                    sp: 0.25,
                    st: 0.75,
                    seed: 7,
                    deadline_ms: Some(10),
                },
            },
            Request::TraceDirect {
                source: "wide".to_owned(),
                options: WireBuildOptions::default(),
                // 70 inputs forces two packed words per pattern.
                patterns: (0..5)
                    .map(|p| (0..70).map(|i| (i + p) % 3 == 0).collect())
                    .collect(),
                deadline_ms: None,
            },
            Request::Expected {
                source: "decod".to_owned(),
                sp: 0.1,
                st: 0.9,
            },
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in &reqs {
            assert_eq!(&roundtrip_request(req), req);
        }
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let awkward = [0.1 + 0.2, f64::NEG_INFINITY, -0.0, 1.0e-308];
        let resps = [
            Response::Load {
                name: "decod".to_owned(),
                instrs: 42,
                terminals: 7,
                bytes: 1024,
                apply_steps: 0,
                resident: true,
            },
            Response::Eval {
                name: "decod".to_owned(),
                transitions: 499,
                sum_ff: 0.1 + 0.2,
                max_ff: 151.0,
            },
            Response::Trace {
                name: "decod".to_owned(),
                values: awkward.to_vec(),
            },
            Response::Expected {
                name: "decod".to_owned(),
                value: -0.0,
            },
            Response::Metrics("charfree_requests_total 7\n".to_owned()),
            Response::Shutdown,
            Response::Error {
                kind: ErrorKind::Overloaded,
                message: "423 in flight".to_owned(),
                retry_after_ms: Some(25),
            },
        ];
        for resp in &resps {
            let got = roundtrip_response(resp);
            if let (Response::Trace { values: a, .. }, Response::Trace { values: b, .. }) =
                (resp, &got)
            {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            assert_eq!(&got, resp);
        }
    }

    #[test]
    fn incomplete_frames_ask_for_more_bytes() {
        let mut buf = Vec::new();
        encode_request(&Request::Stats, &mut buf);
        for cut in 0..buf.len() {
            assert!(
                try_frame(&buf[..cut]).expect("no error").is_none(),
                "cut at {cut} must report incomplete"
            );
        }
        assert!(try_frame(&buf).expect("no error").is_some());
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_from_the_prefix_alone() {
        // Oversized: rejected before any body is buffered.
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
        assert!(try_frame(&huge).is_err());
        // Zero-length: no room for the type byte.
        assert!(try_frame(&0u32.to_le_bytes()).is_err());
    }

    #[test]
    fn truncated_and_trailing_payloads_are_typed_errors() {
        let mut buf = Vec::new();
        encode_request(
            &Request::Load {
                source: "decod".to_owned(),
                options: WireBuildOptions::default(),
            },
            &mut buf,
        );
        let frame = try_frame(&buf).expect("frames").expect("complete");
        let payload = &buf[frame.payload_start..frame.payload_end];
        // Truncation at every split point must error, never panic.
        for cut in 0..payload.len() {
            assert!(decode_request(frame.ty, &payload[..cut]).is_err());
        }
        // Trailing garbage is rejected too (sync loss detection).
        let mut bloated = payload.to_vec();
        bloated.push(0xAB);
        assert!(decode_request(frame.ty, &bloated).is_err());
        // Unknown frame types are typed errors.
        assert!(decode_request(0x7E, payload).is_err());
        assert!(decode_response(0x13, payload).is_err());
    }

    #[test]
    fn lying_value_counts_inside_honest_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.push(resp_type::TRACE);
        // name = ""
        put_str(&mut buf, "");
        // claimed 1M values, zero bytes of data
        put_u32(&mut buf, 1_000_000);
        assert!(decode_response(buf[0], &buf[1..]).is_err());
    }
}
