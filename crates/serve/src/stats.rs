//! Server observability: request counters, latency percentiles, and the
//! micro-batch fill distribution.
//!
//! Latencies land in log2-spaced microsecond buckets (1us, 2us, 4us, …
//! ~1.1h). Percentiles are read back as the *upper bound* of the bucket
//! holding the requested rank — deliberately pessimistic, and cheap
//! enough to record with two atomic adds per request. Batch fill uses 64
//! linear buckets (one per possible lane count in a 64-lane
//! `PatternBlock` group), so `stats` exposes exactly how well
//! cross-connection coalescing is working.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json::Json;

const LATENCY_BUCKETS: usize = 32;
const FILL_BUCKETS: usize = 64;

/// Lock-free accumulator behind the `stats` command.
pub struct ServerStats {
    accepted: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    per_cmd: [AtomicU64; 8],
    latency_us: [AtomicU64; LATENCY_BUCKETS],
    batch_fill: [AtomicU64; FILL_BUCKETS],
    batches: AtomicU64,
    batched_requests: AtomicU64,
    worker_panics: AtomicU64,
    breaker_denials: AtomicU64,
    idle_timeouts: AtomicU64,
}

/// Wire command names, in per-command counter order.
pub const CMD_NAMES: [&str; 8] = [
    "load", "eval", "trace", "tracep", "expected", "stats", "metrics", "shutdown",
];

fn cmd_index(cmd: &str) -> Option<usize> {
    CMD_NAMES.iter().position(|&c| c == cmd)
}

impl ServerStats {
    /// A zeroed accumulator.
    pub fn new() -> ServerStats {
        ServerStats {
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            per_cmd: std::array::from_fn(|_| AtomicU64::new(0)),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
            batch_fill: std::array::from_fn(|_| AtomicU64::new(0)),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            breaker_denials: AtomicU64::new(0),
            idle_timeouts: AtomicU64::new(0),
        }
    }

    /// Counts an accepted request line for `cmd`.
    pub fn record_accepted(&self, cmd: &str) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
        if let Some(idx) = cmd_index(cmd) {
            self.per_cmd[idx].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts a completed request and files its latency.
    pub fn record_completed(&self, latency_us: u64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let bucket = (64 - latency_us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request that ended in a typed error response.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request shed by admission control.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a batch worker panic (the supervisor restarts the worker).
    pub fn record_worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Total batch worker panics so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// Counts a request denied by an open model circuit breaker.
    pub fn record_breaker_denial(&self) {
        self.breaker_denials.fetch_add(1, Ordering::Relaxed);
    }

    /// Total breaker denials so far.
    pub fn breaker_denials(&self) -> u64 {
        self.breaker_denials.load(Ordering::Relaxed)
    }

    /// Counts a connection closed for sitting idle past the server's
    /// idle timeout (the slow-loris guard).
    pub fn record_idle_timeout(&self) {
        self.idle_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Total idle-timeout closes so far.
    pub fn idle_timeouts(&self) -> u64 {
        self.idle_timeouts.load(Ordering::Relaxed)
    }

    /// Files one executed micro-batch: how many requests it coalesced
    /// and the mean lane occupancy of its 64-lane groups (1..=64).
    pub fn record_batch(&self, requests: usize, mean_lane_fill: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(requests as u64, Ordering::Relaxed);
        let bucket = mean_lane_fill.clamp(1, FILL_BUCKETS) - 1;
        self.batch_fill[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn latency_percentile(&self, counts: &[u64; LATENCY_BUCKETS], pct: f64) -> u64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((total as f64) * pct).ceil() as u64;
        let mut seen = 0u64;
        for (bucket, &count) in counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Upper bound of the bucket: bucket b holds latencies in
                // (2^(b-1), 2^b] microseconds.
                return 1u64 << bucket;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }

    /// Renders the full snapshot as the `stats` response payload.
    /// `net` is present when the reactor front end is live (its
    /// counters section is omitted under test harnesses that exercise
    /// the stats module without a reactor).
    pub fn snapshot(
        &self,
        registry: &crate::registry::ShardedRegistry,
        breaker: &crate::supervisor::CircuitBreaker,
        net: Option<&charfree_net::NetCounters>,
    ) -> Json {
        let latency: [u64; LATENCY_BUCKETS] =
            std::array::from_fn(|i| self.latency_us[i].load(Ordering::Relaxed));
        let per_cmd: Vec<(String, Json)> = CMD_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                (
                    name.to_owned(),
                    Json::num(self.per_cmd[i].load(Ordering::Relaxed)),
                )
            })
            .collect();
        let fill: Vec<Json> = (0..FILL_BUCKETS)
            .map(|i| Json::num(self.batch_fill[i].load(Ordering::Relaxed)))
            .collect();
        let (entries, bytes, hits, misses, evictions) = registry.stats();
        let net_section = net.map(|counters| {
            use std::sync::atomic::Ordering as O;
            let mut fields = vec![
                (
                    "connections".to_owned(),
                    Json::num(counters.accepted.load(O::Relaxed)),
                ),
                (
                    "bytes_in".to_owned(),
                    Json::num(counters.bytes_in.load(O::Relaxed)),
                ),
                (
                    "bytes_out".to_owned(),
                    Json::num(counters.bytes_out.load(O::Relaxed)),
                ),
            ];
            for reason in charfree_net::CloseReason::all() {
                fields.push((
                    format!("closed_{}", reason.name().replace('-', "_")),
                    Json::num(counters.closed(reason)),
                ));
            }
            Json::Obj(fields)
        });
        let mut obj = vec![
            (
                "accepted".to_owned(),
                Json::num(self.accepted.load(Ordering::Relaxed)),
            ),
            (
                "completed".to_owned(),
                Json::num(self.completed.load(Ordering::Relaxed)),
            ),
            (
                "errors".to_owned(),
                Json::num(self.errors.load(Ordering::Relaxed)),
            ),
            (
                "shed".to_owned(),
                Json::num(self.shed.load(Ordering::Relaxed)),
            ),
            ("per_command".to_owned(), Json::Obj(per_cmd)),
            (
                "latency_us".to_owned(),
                Json::Obj(vec![
                    (
                        "p50".to_owned(),
                        Json::num(self.latency_percentile(&latency, 0.50)),
                    ),
                    (
                        "p95".to_owned(),
                        Json::num(self.latency_percentile(&latency, 0.95)),
                    ),
                    (
                        "p99".to_owned(),
                        Json::num(self.latency_percentile(&latency, 0.99)),
                    ),
                ]),
            ),
            (
                "batches".to_owned(),
                Json::num(self.batches.load(Ordering::Relaxed)),
            ),
            (
                "batched_requests".to_owned(),
                Json::num(self.batched_requests.load(Ordering::Relaxed)),
            ),
            ("batch_fill".to_owned(), Json::Arr(fill)),
            (
                "registry".to_owned(),
                Json::Obj(vec![
                    ("entries".to_owned(), Json::num(entries)),
                    ("bytes".to_owned(), Json::num(bytes)),
                    ("hits".to_owned(), Json::num(hits)),
                    ("misses".to_owned(), Json::num(misses)),
                    ("evictions".to_owned(), Json::num(evictions)),
                    (
                        "shards".to_owned(),
                        Json::num(registry.shard_count() as u64),
                    ),
                ]),
            ),
            (
                "resilience".to_owned(),
                Json::Obj(vec![
                    (
                        "worker_panics".to_owned(),
                        Json::num(self.worker_panics.load(Ordering::Relaxed)),
                    ),
                    ("breaker_trips".to_owned(), Json::num(breaker.trips())),
                    (
                        "breaker_denials".to_owned(),
                        Json::num(self.breaker_denials.load(Ordering::Relaxed)),
                    ),
                    (
                        "open_circuits".to_owned(),
                        Json::num(breaker.open_circuits() as u64),
                    ),
                    (
                        "idle_timeouts".to_owned(),
                        Json::num(self.idle_timeouts.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
        ];
        if let Some(net) = net_section {
            obj.push(("net".to_owned(), net));
        }
        Json::Obj(obj)
    }
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_report_bucket_upper_bounds() {
        let stats = ServerStats::new();
        // 90 fast requests (~1us) and 10 slow (~1000us -> bucket 10,
        // upper bound 1024us).
        for _ in 0..90 {
            stats.record_completed(1);
        }
        for _ in 0..10 {
            stats.record_completed(1000);
        }
        let latency: [u64; LATENCY_BUCKETS] =
            std::array::from_fn(|i| stats.latency_us[i].load(Ordering::Relaxed));
        assert_eq!(stats.latency_percentile(&latency, 0.50), 2);
        assert_eq!(stats.latency_percentile(&latency, 0.95), 1024);
        assert_eq!(stats.latency_percentile(&latency, 0.99), 1024);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let stats = ServerStats::new();
        let latency: [u64; LATENCY_BUCKETS] = [0; LATENCY_BUCKETS];
        assert_eq!(stats.latency_percentile(&latency, 0.99), 0);
    }

    #[test]
    fn batch_fill_lands_in_linear_lane_buckets() {
        let stats = ServerStats::new();
        stats.record_batch(3, 64);
        stats.record_batch(1, 1);
        stats.record_batch(2, 200); // clamped into the last bucket
        assert_eq!(stats.batch_fill[63].load(Ordering::Relaxed), 2);
        assert_eq!(stats.batch_fill[0].load(Ordering::Relaxed), 1);
        assert_eq!(stats.batches.load(Ordering::Relaxed), 3);
        assert_eq!(stats.batched_requests.load(Ordering::Relaxed), 6);
    }
}
