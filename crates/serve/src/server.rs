//! The TCP server: acceptor, reactor front end, service pool, admission
//! control and graceful drain.
//!
//! Threading model: one acceptor thread hands sockets to N reactor
//! shard threads (crate `charfree-net`, epoll edge-triggered) that own
//! all connection I/O and framing; a fixed service pool parses requests,
//! runs admission and model resolution, and submits dispatcher jobs
//! whose reply sinks post encoded responses back to the owning shard
//! (see [`crate::frontend`]); the dispatcher coordinator + worker pool
//! ([`crate::batch`]) evaluates, which is what lets requests from
//! different sockets share 64-lane pattern blocks. No thread is ever
//! parked per connection.
//!
//! Admission control is two-layered: a connection cap at accept time
//! (live connections = registrations minus closes, both lock-free
//! counters) and a request-level in-flight cap (`max_inflight`) enforced
//! with a single atomic. Both shed with typed `overloaded` responses
//! carrying `retry_after_ms`; nothing blocks behind an unbounded queue.
//!
//! Drain (`shutdown` request or SIGTERM): the draining flag flips, a
//! loopback connect nudges the blocking acceptor awake, the reactor
//! shards finish in-flight requests and close their connections, and
//! [`Server::wait`] joins acceptor → reactor → service pool →
//! dispatcher — every accepted request completes, no new work is
//! admitted.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::Duration;

use charfree_engine::Kernel;
use charfree_net::{
    NetCounters, Reactor, ReactorConfig, ReactorHandle, StreamTap, TapFault, Token,
};
use charfree_netlist::Library;
use charfree_pipeline::{
    ArtifactStore, BuildOptions, FaultIo, PipelineCtx, PipelineError, Source, StreamFault, StreamOp,
};

use crate::batch::Dispatcher;
use crate::frontend::{Completion, Frontend, ServicePool, SvcRequest};
use crate::json::Json;
use crate::metrics;
use crate::proto::{ErrorKind, Response, WireBuildOptions};
use crate::registry::ShardedRegistry;
use crate::stats::ServerStats;
use crate::supervisor::{BreakerConfig, BreakerDecision, CircuitBreaker};

/// Longest tolerated request line (a `trace` request is short; this only
/// guards against garbage streams growing the buffer without bound).
pub(crate) const MAX_LINE_BYTES: usize = 1 << 20;

/// Suggested client backoff when a request is shed.
pub(crate) const RETRY_AFTER_MS: u64 = 25;

/// Write timeout for the `overloaded` line sent to a connection rejected
/// at the cap. The write happens on the acceptor thread; without a
/// timeout a client that connects but never reads could fill the kernel
/// send buffer and stall the accept loop for everyone.
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_millis(100);

/// Service threads between the reactor and the dispatcher (parse,
/// admission, model resolution, pattern generation).
const SERVICE_THREADS: usize = 4;

/// Server construction parameters (the `charfree serve` flags).
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Evaluation worker threads (must be at least 1; the CLI rejects 0
    /// at parse time).
    pub jobs: usize,
    /// Micro-batch coalescing window (zero dispatches immediately).
    pub batch_window: Duration,
    /// Request-level admission cap.
    pub max_inflight: usize,
    /// Largest `vectors` a single `eval`/`trace` request may ask for.
    /// Admission control counts requests, not work; this caps the work
    /// (pattern storage and, for `trace`, response size) one request can
    /// pin, so a single `vectors=10^10` line cannot OOM the server.
    pub max_vectors: usize,
    /// Registry byte budget for resident kernels (shared across all
    /// registry shards).
    pub model_bytes_budget: usize,
    /// Cell library models are built against.
    pub library: Library,
    /// Content-addressed artifact store directory (warm loads skip the
    /// symbolic build entirely).
    pub cache_dir: Option<PathBuf>,
    /// Per-connection inactivity cutoff (slow-loris guard; a connection
    /// with a request in flight is never idle-closed).
    pub idle_timeout: Duration,
    /// Concurrent-connection cap (excess connections get one
    /// `overloaded` line and are closed).
    pub max_connections: usize,
    /// Reactor shard threads owning connection I/O.
    pub reactor_threads: usize,
    /// Optional dedicated `GET /metrics` listener address (the main
    /// port also answers `GET /metrics`).
    pub metrics_addr: Option<String>,
    /// Structured per-request logging to stderr.
    pub log: bool,
    /// Per-model build circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Fault-injection layer threaded through the artifact store and
    /// connection read/write paths (`None` = real I/O). Used by the
    /// conform `chaos` campaign and resilience tests.
    pub fault_io: Option<Arc<dyn FaultIo>>,
}

impl ServeConfig {
    /// Defaults matching the `charfree serve` flag defaults.
    pub fn new(library: Library) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            jobs: 1,
            batch_window: Duration::from_micros(200),
            max_inflight: 64,
            max_vectors: 4_000_000,
            model_bytes_budget: 64 << 20,
            library,
            cache_dir: None,
            idle_timeout: Duration::from_secs(30),
            max_connections: 64,
            reactor_threads: 2,
            metrics_addr: None,
            log: true,
            breaker: BreakerConfig::default(),
            fault_io: None,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) library: Library,
    pub(crate) store: Option<ArtifactStore>,
    pub(crate) registry: ShardedRegistry,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) inflight: AtomicUsize,
    pub(crate) max_inflight: usize,
    pub(crate) max_vectors: usize,
    pub(crate) draining: AtomicBool,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) log: bool,
    addr: SocketAddr,
    /// Set once the reactor is up; `None` only during startup.
    net: OnceLock<Arc<NetCounters>>,
    reactor: OnceLock<ReactorHandle<Completion>>,
    /// Connections handed to the reactor by the acceptor. Live count =
    /// `registered - net.closed_total()` (registration guarantees
    /// exactly one close record eventually).
    registered: AtomicU64,
}

impl Shared {
    pub(crate) fn log_line(&self, token: Token, msg: &str) {
        if self.log {
            eprintln!("charfree-serve: conn={token:#x} {msg}");
        }
    }

    /// The full stats snapshot (registry, breaker and net sections
    /// included) — the one source for `stats`, `metrics` and HTTP.
    pub(crate) fn snapshot(&self) -> Json {
        self.stats.snapshot(
            &self.registry,
            &self.breaker,
            self.net.get().map(|c| c.as_ref()),
        )
    }

    fn live_connections(&self) -> u64 {
        let registered = self.registered.load(Ordering::SeqCst);
        let closed = self.net.get().map_or(0, |c| c.closed_total());
        registered.saturating_sub(closed)
    }
}

/// Owned RAII slot in the request-level admission window. Owned (not
/// borrowed) so it can ride inside an async reply sink across the
/// dispatcher queue — the slot frees exactly when the response is
/// produced, so in-flight accounting covers queue residency.
pub(crate) struct InflightGuard(Arc<Shared>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

pub(crate) fn try_admit(shared: &Arc<Shared>) -> Option<InflightGuard> {
    shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.max_inflight).then_some(n + 1)
        })
        .ok()
        .map(|_| InflightGuard(Arc::clone(shared)))
}

/// Adapts the pipeline's injectable I/O faults to the reactor's socket
/// tap, so one fault plan drives store, read and write paths alike.
struct FaultTap(Arc<dyn FaultIo>);

fn tap_fault(fault: StreamFault) -> TapFault {
    match fault {
        StreamFault::Transient => TapFault::Transient,
        StreamFault::Short(n) => TapFault::Short(n),
        StreamFault::Stall(d) => TapFault::Stall(d),
    }
}

impl StreamTap for FaultTap {
    fn read_fault(&self) -> Option<TapFault> {
        self.0.stream_fault(StreamOp::Read).map(tap_fault)
    }

    fn write_fault(&self) -> Option<TapFault> {
        self.0.stream_fault(StreamOp::Write).map(tap_fault)
    }
}

/// A running server. Dropping it does **not** stop the threads; drive it
/// to completion with [`Server::wait`] after a `shutdown` request (or
/// [`Server::request_drain`]).
pub struct Server {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    acceptor: Option<thread::JoinHandle<()>>,
    reactor: Option<Reactor<Completion>>,
    services: Option<ServicePool>,
    dispatcher: Option<Dispatcher>,
    metrics: Option<thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures (main listener and, when configured, the
    /// metrics listener) and thread-spawn failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new());
        let store = config.cache_dir.as_ref().map(|dir| {
            let store = ArtifactStore::new(dir);
            match &config.fault_io {
                Some(io) => store.with_io(Arc::clone(io)),
                None => store,
            }
        });
        // Startup recovery: replay the cache journal, quarantine torn
        // entries, heal missing commits — before the first request can
        // warm-load anything.
        if let Some(store) = &store {
            match store.recover() {
                Ok(report) => {
                    if config.log && !report.is_clean() {
                        eprintln!("charfree-serve: cache recovery: {}", report.summary());
                    }
                }
                Err(e) => {
                    // A failed recovery pass degrades to "serve with a
                    // cold registry": validate-on-load still guards every
                    // artifact the store hands back.
                    if config.log {
                        eprintln!("charfree-serve: cache recovery failed: {e}");
                    }
                }
            }
        }
        let shared = Arc::new(Shared {
            store,
            library: config.library,
            registry: ShardedRegistry::new(
                ShardedRegistry::DEFAULT_SHARDS,
                config.model_bytes_budget.max(1),
            ),
            stats: Arc::clone(&stats),
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight.max(1),
            max_vectors: config.max_vectors.max(2),
            draining: AtomicBool::new(false),
            breaker: CircuitBreaker::new(config.breaker),
            log: config.log,
            addr,
            net: OnceLock::new(),
            reactor: OnceLock::new(),
            registered: AtomicU64::new(0),
        });
        let dispatcher = Dispatcher::start(
            config.jobs.max(1),
            config.batch_window,
            shared.max_inflight,
            stats,
        );
        let batch = dispatcher.handle();

        // Service queue: sized so that every connection can have one
        // request queued before the front end sheds.
        let svc_cap = config.max_connections.max(config.max_inflight).max(64);
        let (svc_tx, svc_rx) = sync_channel::<SvcRequest>(svc_cap);

        let factory_shared = Arc::clone(&shared);
        let factory = Arc::new(move |_token: Token| {
            Box::new(Frontend::new(Arc::clone(&factory_shared), svc_tx.clone()))
                as Box<dyn charfree_net::Handler<Completion>>
        });
        let tap = config
            .fault_io
            .as_ref()
            .map(|io| Arc::new(FaultTap(Arc::clone(io))) as Arc<dyn StreamTap>);
        let reactor = Reactor::start(
            ReactorConfig {
                shards: config.reactor_threads.max(1),
                idle_timeout: config.idle_timeout,
                ..ReactorConfig::default()
            },
            factory,
            tap,
        )?;
        let _ = shared.net.set(reactor.counters());
        let _ = shared.reactor.set(reactor.handle());

        let services =
            ServicePool::start(SERVICE_THREADS, svc_rx, &shared, &batch, &reactor.mailbox())?;

        let accept_shared = Arc::clone(&shared);
        let accept_handle = reactor.handle();
        let max_connections = config.max_connections.max(1);
        let acceptor = thread::Builder::new()
            .name("charfree-serve-accept".to_owned())
            .spawn(move || {
                accept_loop(&listener, &accept_shared, &accept_handle, max_connections);
            })?;

        let (metrics_addr, metrics) = match &config.metrics_addr {
            Some(maddr) => {
                let mlistener = TcpListener::bind(maddr)?;
                let maddr = mlistener.local_addr()?;
                mlistener.set_nonblocking(true)?;
                let mshared = Arc::clone(&shared);
                let handle = thread::Builder::new()
                    .name("charfree-serve-metrics".to_owned())
                    .spawn(move || metrics_loop(&mlistener, &mshared))?;
                (Some(maddr), Some(handle))
            }
            None => (None, None),
        };

        if shared.log {
            eprintln!("charfree-serve: listening on {addr}");
            if let Some(maddr) = metrics_addr {
                eprintln!("charfree-serve: metrics on http://{maddr}/metrics");
            }
        }
        Ok(Server {
            addr,
            metrics_addr,
            acceptor: Some(acceptor),
            reactor: Some(reactor),
            services: Some(services),
            dispatcher: Some(dispatcher),
            metrics,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics address, when a dedicated listener was
    /// configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Flips the draining flag and wakes the acceptor and reactor, as if
    /// a `shutdown` request had arrived.
    pub fn request_drain(&self) {
        begin_drain(&self.shared);
    }

    /// A cloneable handle that can trigger the same drain from another
    /// thread (e.g. a signal watcher) without owning the server.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle(Arc::clone(&self.shared))
    }

    /// Installs SIGTERM/SIGINT handlers that trigger a graceful drain,
    /// so `kill -TERM <pid>` (or Ctrl-C) behaves exactly like the
    /// `shutdown` wire command: accepted requests complete, then
    /// [`Server::wait`] returns and the process can exit 0.
    #[cfg(unix)]
    pub fn drain_on_signals(&self) {
        signal_drain::install(self.drain_handle());
    }

    /// Blocks until the server has fully drained: acceptor joined, every
    /// connection closed, every accepted job flushed through the
    /// dispatcher.
    ///
    /// Join order matters: the reactor shards exit only once their
    /// connection slabs are empty, and a connection with a request in
    /// flight stays in the slab until its completion arrives — so
    /// joining the reactor transitively waits for the service pool and
    /// dispatcher to answer everything that was accepted. Joining the
    /// service pool after the reactor is safe because the reactor
    /// threads (via the handler factory) hold the only frame senders.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(reactor) = self.reactor.take() {
            reactor.join();
        }
        if let Some(services) = self.services.take() {
            services.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            dispatcher.shutdown();
        }
        if let Some(metrics) = self.metrics.take() {
            let _ = metrics.join();
        }
        if self.shared.log {
            eprintln!("charfree-serve: drained, exiting");
        }
    }
}

/// Triggers a graceful drain of the server it was taken from; see
/// [`Server::drain_handle`].
#[derive(Clone)]
pub struct DrainHandle(Arc<Shared>);

impl DrainHandle {
    /// Flips the draining flag and wakes the acceptor.
    pub fn request_drain(&self) {
        begin_drain(&self.0);
    }

    /// Whether the server is already draining.
    pub fn is_draining(&self) -> bool {
        self.0.draining.load(Ordering::SeqCst)
    }
}

/// SIGTERM/SIGINT → graceful drain, without a libc dependency: the
/// handler only sets an atomic flag (the sole async-signal-safe thing a
/// Rust handler can soundly do), and a watcher thread polls the flag
/// and runs the actual drain from normal thread context.
#[cfg(unix)]
mod signal_drain {
    use super::DrainHandle;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;
    use std::time::Duration;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    static REQUESTED: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install(handle: DrainHandle) {
        INSTALL.call_once(|| unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        });
        let _ = std::thread::Builder::new()
            .name("charfree-serve-signal".to_owned())
            .spawn(move || loop {
                if REQUESTED.load(Ordering::SeqCst) {
                    handle.request_drain();
                    return;
                }
                if handle.is_draining() {
                    return; // drained by other means; nothing to watch
                }
                std::thread::sleep(Duration::from_millis(100));
            });
    }
}

pub(crate) fn begin_drain(shared: &Shared) {
    if !shared.draining.swap(true, Ordering::SeqCst) {
        // Nudge the blocking accept() awake; the loop re-checks the flag
        // before handling what it accepted.
        let _ = TcpStream::connect(shared.addr);
        if let Some(reactor) = shared.reactor.get() {
            reactor.drain();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    reactor: &ReactorHandle<Completion>,
    max_connections: usize,
) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        if shared.live_connections() >= max_connections as u64 {
            shared.stats.record_shed();
            let line = Response::Error {
                kind: ErrorKind::Overloaded,
                message: format!("connection limit ({max_connections}) reached"),
                retry_after_ms: Some(RETRY_AFTER_MS),
            }
            .to_line();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
            let _ = writeln!(stream, "{line}");
            continue;
        }
        // Count before registering: the reactor guarantees exactly one
        // close record per registration, so live never underflows.
        shared.registered.fetch_add(1, Ordering::SeqCst);
        reactor.register(stream);
    }
}

/// The dedicated metrics listener: accept, answer one `GET /metrics`,
/// close. Nonblocking accept with a short sleep so the thread notices
/// drain promptly without a wake channel.
fn metrics_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => serve_metrics_conn(stream, shared),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(50));
            }
            Err(_) => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

fn serve_metrics_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    while !buf.contains(&b'\n') && buf.len() <= 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    let body = match (parts.next(), parts.next()) {
        (Some("GET"), Some("/metrics")) => {
            metrics::http_response(&metrics::render(&shared.snapshot()))
        }
        _ => metrics::http_not_found(),
    };
    let _ = stream.write_all(body.as_bytes());
}

pub(crate) fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
        retry_after_ms: None,
    }
}

fn map_pipeline_error(err: &PipelineError) -> ErrorKind {
    match err {
        PipelineError::Build(_) => ErrorKind::BuildFailed,
        PipelineError::Unsupported(_) => ErrorKind::Unsupported,
        PipelineError::Io { .. } | PipelineError::Parse { .. } | PipelineError::UnknownInput(_) => {
            ErrorKind::BadRequest
        }
    }
}

/// Registry key: the source operand plus every model-*shaping* option.
/// `deadline_ms` is deliberately excluded — it is a per-request wall
/// clock, not a model parameter, and keying on it would fragment
/// residency across otherwise-identical builds. (Deadline-bounded builds
/// are also never *inserted*; see [`resolve`].)
fn registry_key(source: &str, options: &WireBuildOptions) -> String {
    format!(
        "{source}\0max_nodes={:?}\0upper_bound={}\0node_budget={:?}\0strict={}",
        options.max_nodes, options.upper_bound, options.node_budget, options.strict,
    )
}

fn build_options(options: &WireBuildOptions) -> BuildOptions {
    BuildOptions {
        max_nodes: options.max_nodes,
        upper_bound: options.upper_bound,
        node_budget: options.node_budget,
        strict: options.strict,
        time_budget: options.deadline_ms.map(Duration::from_millis),
        ..BuildOptions::default()
    }
}

/// Resolves a model operand to a registry-resident kernel. Returns the
/// kernel, the ADD apply steps this call performed (0 for warm paths)
/// and whether it was already resident.
pub(crate) fn resolve(
    shared: &Shared,
    source: &str,
    options: &WireBuildOptions,
) -> Result<(Arc<Kernel>, u64, bool), Response> {
    let key = registry_key(source, options);
    if let Some(kernel) = shared.registry.get(&key) {
        return Ok((kernel, 0, true));
    }
    // Circuit breaker: a model whose builds keep failing is refused
    // *before* the build lock, so doomed work cannot queue behind it.
    // An expired open window lets exactly one probe through.
    match shared.breaker.admit(&key) {
        BreakerDecision::Allow => {}
        BreakerDecision::Deny { retry_after_ms } => {
            shared.stats.record_breaker_denial();
            return Err(Response::Error {
                kind: ErrorKind::ModelUnavailable,
                message: "model build circuit is open after repeated build failures".to_owned(),
                retry_after_ms: Some(retry_after_ms),
            });
        }
    }
    // Serialize builds per registry shard: concurrent requests for the
    // same cold model would otherwise burn a full symbolic construction
    // each, while models hashing to *different* shards build in
    // parallel.
    let _build = shared
        .registry
        .build_lock(&key)
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(kernel) = shared.registry.get(&key) {
        return Ok((kernel, 0, true));
    }
    let mut ctx = PipelineCtx::new(shared.library.clone()).with_options(build_options(options));
    if let Some(store) = &shared.store {
        ctx = ctx.with_store(store.clone());
    }
    let kernel = match ctx.kernel_for(&Source::infer(source)) {
        Ok(kernel) => kernel,
        Err(e) => {
            // Deadline-bounded failures are timing-dependent (a doomed
            // build under one deadline may succeed under none); only
            // deterministic failures feed the breaker.
            if options.deadline_ms.is_none() {
                shared.breaker.record_failure(&key);
            }
            return Err(error(map_pipeline_error(&e), e.to_string()));
        }
    };
    if options.deadline_ms.is_none() {
        shared.breaker.record_success(&key);
    }
    let applied = ctx.apply_steps();
    let kernel = Arc::new(kernel);
    // A deadline-bounded build is timing-dependent (the degradation
    // point depends on wall clock — same reason `BuildOptions::cacheable`
    // bypasses the artifact store), so its result serves this request
    // only and never becomes the registry-resident model for the key.
    if options.deadline_ms.is_none() {
        shared.registry.insert(&key, Arc::clone(&kernel));
    }
    Ok((kernel, applied, false))
}

pub(crate) fn do_load(shared: &Shared, source: &str, options: &WireBuildOptions) -> Response {
    match resolve(shared, source, options) {
        Ok((kernel, applied, resident)) => Response::Load {
            name: kernel.name().to_owned(),
            instrs: kernel.num_instrs(),
            terminals: kernel.num_terminals(),
            bytes: kernel.bytes(),
            apply_steps: applied,
            resident,
        },
        Err(response) => response,
    }
}

pub(crate) fn do_expected(shared: &Shared, source: &str, sp: f64, st: f64) -> Response {
    // The analytic chain measure asserts feasibility; validate here so a
    // bad request gets a typed error instead of panicking a service
    // thread. (Same stationarity bound as the Markov pattern source.)
    if !(sp > 0.0 && sp < 1.0) {
        return error(ErrorKind::BadRequest, format!("sp={sp} must be in (0,1)"));
    }
    if !(0.0..=1.0).contains(&st) || st > 2.0 * sp.min(1.0 - sp) {
        return error(
            ErrorKind::BadRequest,
            format!("infeasible (sp={sp}, st={st}): st must be at most 2*min(sp, 1-sp)"),
        );
    }
    let (kernel, _, _) = match resolve(shared, source, &WireBuildOptions::default()) {
        Ok(resolved) => resolved,
        Err(response) => return response,
    };
    let value = if kernel.is_interleaved() {
        kernel.expected_capacitance(sp, st)
    } else if matches!(Source::infer(source), Source::KernelFile(_)) {
        return error(
            ErrorKind::Unsupported,
            "grouped-ordering kernels cannot evaluate expectations; pass the `.cfm` model instead",
        );
    } else {
        // Mirror the CLI fallback: grouped-ordering pair correlation is
        // not chain-expressible on the kernel, so go through the arena
        // model (a warm artifact hit when a store is attached).
        let mut ctx = PipelineCtx::new(shared.library.clone());
        if let Some(store) = &shared.store {
            ctx = ctx.with_store(store.clone());
        }
        match ctx.model_for(&Source::infer(source)) {
            Ok(model) => model.expected_capacitance(sp, st).femtofarads(),
            Err(e) => return error(map_pipeline_error(&e), e.to_string()),
        }
    };
    Response::Expected {
        name: kernel.name().to_owned(),
        value,
    }
}
