//! The TCP server: accept loop, per-connection protocol handling,
//! admission control and graceful drain.
//!
//! Threading model: one acceptor thread, one detached thread per
//! connection, plus the dispatcher's coordinator + worker pool
//! ([`crate::batch`]). Connections never evaluate kernels themselves —
//! they parse requests, resolve models through the shared
//! [`ModelRegistry`], submit jobs to the dispatcher and block on the
//! per-job reply channel, which is what lets requests from different
//! sockets share 64-lane pattern blocks.
//!
//! Admission control is two-layered: a connection cap at accept time and
//! a request-level in-flight cap (`max_inflight`) enforced with a single
//! atomic. Both shed with typed `overloaded` responses carrying
//! `retry_after_ms`; nothing blocks behind an unbounded queue.
//!
//! Drain (`shutdown` request): the draining flag flips, a loopback
//! connect nudges the blocking acceptor awake, connection threads finish
//! the request they are on and close at their next read tick, and
//! [`Server::wait`] joins everything before returning — every accepted
//! request completes, no new work is admitted.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use charfree_engine::Kernel;
use charfree_netlist::Library;
use charfree_pipeline::{
    ArtifactStore, BuildOptions, FaultIo, PipelineCtx, PipelineError, Source, StreamFault, StreamOp,
};
use charfree_sim::MarkovSource;

use crate::batch::{BatchHandle, Dispatcher, Job, JobError};
use crate::proto::{ErrorKind, Request, Response, WireBuildOptions, WireEvalParams};
use crate::registry::ModelRegistry;
use crate::stats::ServerStats;
use crate::supervisor::{BreakerConfig, BreakerDecision, CircuitBreaker};

/// How often a blocked connection read wakes up to check the draining
/// flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// Longest tolerated request line (a `trace` request is short; this only
/// guards against garbage streams growing the buffer without bound).
const MAX_LINE_BYTES: usize = 1 << 20;

/// Suggested client backoff when a request is shed.
const RETRY_AFTER_MS: u64 = 25;

/// Write timeout for the `overloaded` line sent to a connection rejected
/// at the cap. The write happens on the acceptor thread; without a
/// timeout a client that connects but never reads could fill the kernel
/// send buffer and stall the accept loop for everyone.
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_millis(100);

/// Ceiling on an injected stream stall, so a mis-tuned fault plan can
/// slow a connection but never wedge it past its timeouts.
const MAX_INJECTED_STALL: Duration = Duration::from_millis(200);

/// Server construction parameters (the `charfree serve` flags).
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Evaluation worker threads (must be at least 1; the CLI rejects 0
    /// at parse time).
    pub jobs: usize,
    /// Micro-batch coalescing window (zero dispatches immediately).
    pub batch_window: Duration,
    /// Request-level admission cap.
    pub max_inflight: usize,
    /// Largest `vectors` a single `eval`/`trace` request may ask for.
    /// Admission control counts requests, not work; this caps the work
    /// (pattern storage and, for `trace`, response size) one request can
    /// pin, so a single `vectors=10^10` line cannot OOM the server.
    pub max_vectors: usize,
    /// Registry byte budget for resident kernels.
    pub model_bytes_budget: usize,
    /// Cell library models are built against.
    pub library: Library,
    /// Content-addressed artifact store directory (warm loads skip the
    /// symbolic build entirely).
    pub cache_dir: Option<PathBuf>,
    /// Per-connection inactivity cutoff.
    pub idle_timeout: Duration,
    /// Concurrent-connection cap (excess connections get one
    /// `overloaded` line and are closed).
    pub max_connections: usize,
    /// Structured per-request logging to stderr.
    pub log: bool,
    /// Per-model build circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// Fault-injection layer threaded through the artifact store and
    /// connection read/write paths (`None` = real I/O). Used by the
    /// conform `chaos` campaign and resilience tests.
    pub fault_io: Option<Arc<dyn FaultIo>>,
}

impl ServeConfig {
    /// Defaults matching the `charfree serve` flag defaults.
    pub fn new(library: Library) -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7878".to_owned(),
            jobs: 1,
            batch_window: Duration::from_micros(200),
            max_inflight: 64,
            max_vectors: 4_000_000,
            model_bytes_budget: 64 << 20,
            library,
            cache_dir: None,
            idle_timeout: Duration::from_secs(30),
            max_connections: 64,
            log: true,
            breaker: BreakerConfig::default(),
            fault_io: None,
        }
    }
}

struct Shared {
    library: Library,
    store: Option<ArtifactStore>,
    registry: ModelRegistry,
    stats: Arc<ServerStats>,
    inflight: AtomicUsize,
    max_inflight: usize,
    max_vectors: usize,
    draining: AtomicBool,
    conns: Mutex<usize>,
    conns_cv: Condvar,
    conn_seq: AtomicU64,
    build_lock: Mutex<()>,
    breaker: CircuitBreaker,
    fault: Option<Arc<dyn FaultIo>>,
    idle_timeout: Duration,
    log: bool,
    addr: SocketAddr,
}

impl Shared {
    fn log_line(&self, conn: u64, msg: &str) {
        if self.log {
            eprintln!("charfree-serve: conn={conn} {msg}");
        }
    }
}

/// A running server. Dropping it does **not** stop the threads; drive it
/// to completion with [`Server::wait`] after a `shutdown` request (or
/// [`Server::request_drain`]).
pub struct Server {
    addr: SocketAddr,
    acceptor: Option<thread::JoinHandle<()>>,
    dispatcher: Option<Dispatcher>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds and starts accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new());
        let store = config.cache_dir.as_ref().map(|dir| {
            let store = ArtifactStore::new(dir);
            match &config.fault_io {
                Some(io) => store.with_io(Arc::clone(io)),
                None => store,
            }
        });
        // Startup recovery: replay the cache journal, quarantine torn
        // entries, heal missing commits — before the first request can
        // warm-load anything.
        if let Some(store) = &store {
            match store.recover() {
                Ok(report) => {
                    if config.log && !report.is_clean() {
                        eprintln!("charfree-serve: cache recovery: {}", report.summary());
                    }
                }
                Err(e) => {
                    // A failed recovery pass degrades to "serve with a
                    // cold registry": validate-on-load still guards every
                    // artifact the store hands back.
                    if config.log {
                        eprintln!("charfree-serve: cache recovery failed: {e}");
                    }
                }
            }
        }
        let shared = Arc::new(Shared {
            store,
            library: config.library,
            registry: ModelRegistry::new(config.model_bytes_budget.max(1)),
            stats: Arc::clone(&stats),
            inflight: AtomicUsize::new(0),
            max_inflight: config.max_inflight.max(1),
            max_vectors: config.max_vectors.max(2),
            draining: AtomicBool::new(false),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
            conn_seq: AtomicU64::new(0),
            build_lock: Mutex::new(()),
            breaker: CircuitBreaker::new(config.breaker),
            fault: config.fault_io,
            idle_timeout: config.idle_timeout,
            log: config.log,
            addr,
        });
        let dispatcher = Dispatcher::start(
            config.jobs.max(1),
            config.batch_window,
            shared.max_inflight,
            stats,
        );
        let handle = dispatcher.handle();
        let accept_shared = Arc::clone(&shared);
        let max_connections = config.max_connections.max(1);
        let acceptor = thread::Builder::new()
            .name("charfree-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared, &handle, max_connections))?;
        if shared.log {
            eprintln!("charfree-serve: listening on {addr}");
        }
        Ok(Server {
            addr,
            acceptor: Some(acceptor),
            dispatcher: Some(dispatcher),
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Flips the draining flag and wakes the acceptor, as if a
    /// `shutdown` request had arrived.
    pub fn request_drain(&self) {
        begin_drain(&self.shared);
    }

    /// A cloneable handle that can trigger the same drain from another
    /// thread (e.g. a signal watcher) without owning the server.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle(Arc::clone(&self.shared))
    }

    /// Installs SIGTERM/SIGINT handlers that trigger a graceful drain,
    /// so `kill -TERM <pid>` (or Ctrl-C) behaves exactly like the
    /// `shutdown` wire command: accepted requests complete, then
    /// [`Server::wait`] returns and the process can exit 0.
    #[cfg(unix)]
    pub fn drain_on_signals(&self) {
        signal_drain::install(self.drain_handle());
    }

    /// Blocks until the server has fully drained: acceptor joined, every
    /// connection closed, every accepted job flushed through the
    /// dispatcher.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let mut conns = self.shared.conns.lock().unwrap_or_else(|e| e.into_inner());
        while *conns > 0 {
            conns = self
                .shared
                .conns_cv
                .wait(conns)
                .unwrap_or_else(|e| e.into_inner());
        }
        drop(conns);
        if let Some(dispatcher) = self.dispatcher.take() {
            dispatcher.shutdown();
        }
        if self.shared.log {
            eprintln!("charfree-serve: drained, exiting");
        }
    }
}

/// Triggers a graceful drain of the server it was taken from; see
/// [`Server::drain_handle`].
#[derive(Clone)]
pub struct DrainHandle(Arc<Shared>);

impl DrainHandle {
    /// Flips the draining flag and wakes the acceptor.
    pub fn request_drain(&self) {
        begin_drain(&self.0);
    }

    /// Whether the server is already draining.
    pub fn is_draining(&self) -> bool {
        self.0.draining.load(Ordering::SeqCst)
    }
}

/// SIGTERM/SIGINT → graceful drain, without a libc dependency: the
/// handler only sets an atomic flag (the sole async-signal-safe thing a
/// Rust handler can soundly do), and a watcher thread polls the flag
/// and runs the actual drain from normal thread context.
#[cfg(unix)]
mod signal_drain {
    use super::DrainHandle;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Once;
    use std::time::Duration;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    static REQUESTED: AtomicBool = AtomicBool::new(false);
    static INSTALL: Once = Once::new();

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub(super) fn install(handle: DrainHandle) {
        INSTALL.call_once(|| unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        });
        let _ = std::thread::Builder::new()
            .name("charfree-serve-signal".to_owned())
            .spawn(move || loop {
                if REQUESTED.load(Ordering::SeqCst) {
                    handle.request_drain();
                    return;
                }
                if handle.is_draining() {
                    return; // drained by other means; nothing to watch
                }
                std::thread::sleep(Duration::from_millis(100));
            });
    }
}

fn begin_drain(shared: &Shared) {
    if !shared.draining.swap(true, Ordering::SeqCst) {
        // Nudge the blocking accept() awake; the loop re-checks the flag
        // before handling what it accepted.
        let _ = TcpStream::connect(shared.addr);
    }
}

/// RAII slot in the connection count. Releasing on `Drop` (rather than
/// after `handle_connection` returns) means a panic anywhere in the
/// connection path still gives the slot back and wakes [`Server::wait`];
/// otherwise one panicking connection would leak a `max_connections`
/// slot forever and leave drain blocked on `conns > 0`.
struct ConnSlot(Arc<Shared>);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        let mut conns = self.0.conns.lock().unwrap_or_else(|e| e.into_inner());
        *conns -= 1;
        self.0.conns_cv.notify_all();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handle: &BatchHandle,
    max_connections: usize,
) {
    for stream in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        {
            let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
            if *conns >= max_connections {
                drop(conns);
                shared.stats.record_shed();
                let line = Response::Error {
                    kind: ErrorKind::Overloaded,
                    message: format!("connection limit ({max_connections}) reached"),
                    retry_after_ms: Some(RETRY_AFTER_MS),
                }
                .to_line();
                let mut stream = stream;
                let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
                let _ = writeln!(stream, "{line}");
                continue;
            }
            *conns += 1;
        }
        let slot = ConnSlot(Arc::clone(shared));
        let conn_id = shared.conn_seq.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(shared);
        let conn_handle = handle.clone();
        // On spawn failure the unrun closure is dropped, which drops the
        // slot — no separate error path needed.
        let _ = thread::Builder::new()
            .name(format!("charfree-serve-conn-{conn_id}"))
            .spawn(move || {
                let _slot = slot;
                handle_connection(stream, conn_id, &conn_shared, conn_handle);
            });
    }
}

/// Reads newline-delimited lines off a raw stream with a short read
/// timeout, so the connection notices drain and idle cutoff without an
/// extra thread. A `BufReader::read_line` would lose buffered partial
/// lines across timeout returns; this keeps its own carry buffer.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

enum ReadOutcome {
    Line(String),
    Draining,
    Closed,
}

impl LineReader {
    fn new(stream: TcpStream) -> io::Result<LineReader> {
        stream.set_read_timeout(Some(READ_TICK))?;
        Ok(LineReader {
            stream,
            buf: Vec::new(),
            pos: 0,
        })
    }

    fn next_line(&mut self, shared: &Shared) -> ReadOutcome {
        let idle_since = Instant::now();
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let end = self.pos + nl;
                let mut line = &self.buf[self.pos..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.pos = end + 1;
                if self.pos >= self.buf.len() {
                    self.buf.clear();
                    self.pos = 0;
                }
                return ReadOutcome::Line(text);
            }
            if self.buf.len() - self.pos > MAX_LINE_BYTES {
                return ReadOutcome::Closed;
            }
            if shared.draining.load(Ordering::SeqCst) {
                return ReadOutcome::Draining;
            }
            if idle_since.elapsed() > shared.idle_timeout {
                return ReadOutcome::Closed;
            }
            let mut cap = 4096usize;
            if let Some(fault) = shared
                .fault
                .as_deref()
                .and_then(|f| f.stream_fault(StreamOp::Read))
            {
                match fault {
                    // As if the read returned EINTR: retry the tick (the
                    // drain/idle checks above re-run first).
                    StreamFault::Transient => continue,
                    // A short read round: accept only a few bytes.
                    StreamFault::Short(n) => cap = n.clamp(1, 4096),
                    // A stalled client: the bytes arrive late.
                    StreamFault::Stall(d) => thread::sleep(d.min(MAX_INJECTED_STALL)),
                }
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk[..cap]) {
                Ok(0) => return ReadOutcome::Closed,
                Ok(n) => {
                    if self.pos > 0 {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return ReadOutcome::Closed,
            }
        }
    }
}

/// RAII slot in the request-level admission window.
struct InflightSlot<'a>(&'a Shared);

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn try_admit(shared: &Shared) -> Option<InflightSlot<'_>> {
    shared
        .inflight
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
            (n < shared.max_inflight).then_some(n + 1)
        })
        .ok()
        .map(|_| InflightSlot(shared))
}

fn handle_connection(stream: TcpStream, conn_id: u64, shared: &Shared, handle: BatchHandle) {
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = io::BufWriter::new(write_stream);
    let mut reader = match LineReader::new(stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    shared.log_line(conn_id, "open");
    loop {
        let line = match reader.next_line(shared) {
            ReadOutcome::Line(line) => line,
            ReadOutcome::Draining => {
                shared.log_line(conn_id, "close reason=draining");
                return;
            }
            ReadOutcome::Closed => {
                shared.log_line(conn_id, "close reason=eof");
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let started = Instant::now();
        let (response, shutdown) = process_line(&line, shared, &handle);
        let latency_us = started.elapsed().as_micros() as u64;
        let (status, is_error) = match &response {
            Response::Error { kind, .. } => (kind.name(), true),
            _ => ("ok", false),
        };
        if is_error {
            shared.stats.record_error();
        } else {
            shared.stats.record_completed(latency_us);
        }
        shared.log_line(
            conn_id,
            &format!(
                "cmd={} status={status} latency_us={latency_us}",
                cmd_of(&line)
            ),
        );
        if write_response(&mut writer, &response.to_line(), shared).is_err() {
            shared.log_line(conn_id, "close reason=write-error");
            return;
        }
        if shutdown {
            begin_drain(shared);
            shared.log_line(conn_id, "close reason=shutdown");
            return;
        }
    }
}

/// Writes one response line, applying any injected write fault. A
/// [`StreamFault::Short`] splits the line at an injected boundary with a
/// flush in between — both halves still reach the peer (a short write
/// is a partial *round*, not lost bytes), which is exactly what a
/// correct client must reassemble.
fn write_response(
    writer: &mut io::BufWriter<TcpStream>,
    line: &str,
    shared: &Shared,
) -> io::Result<()> {
    if let Some(fault) = shared
        .fault
        .as_deref()
        .and_then(|f| f.stream_fault(StreamOp::Write))
    {
        match fault {
            StreamFault::Stall(d) => thread::sleep(d.min(MAX_INJECTED_STALL)),
            StreamFault::Short(n) => {
                let bytes = line.as_bytes();
                let cut = n.clamp(1, bytes.len());
                writer.write_all(&bytes[..cut])?;
                writer.flush()?;
                writer.write_all(&bytes[cut..])?;
                writer.write_all(b"\n")?;
                return writer.flush();
            }
            // A real EINTR mid-write is already retried inside
            // `write_all`; nothing extra to simulate.
            StreamFault::Transient => {}
        }
    }
    writeln!(writer, "{line}")?;
    writer.flush()
}

/// Best-effort command label for the log line (the request may not even
/// parse).
fn cmd_of(line: &str) -> String {
    Request::parse_line(line)
        .map(|r| r.cmd().to_owned())
        .unwrap_or_else(|_| "?".to_owned())
}

fn process_line(line: &str, shared: &Shared, handle: &BatchHandle) -> (Response, bool) {
    let request = match Request::parse_line(line) {
        Ok(request) => request,
        Err(message) => {
            return (
                Response::Error {
                    kind: ErrorKind::BadRequest,
                    message,
                    retry_after_ms: None,
                },
                false,
            )
        }
    };
    shared.stats.record_accepted(request.cmd());
    if shared.draining.load(Ordering::SeqCst) && !matches!(request, Request::Shutdown) {
        return (
            Response::Error {
                kind: ErrorKind::Draining,
                message: "server is draining".to_owned(),
                retry_after_ms: None,
            },
            false,
        );
    }
    // stats/shutdown are control-plane: they bypass the admission window
    // so an overloaded server can still be observed and drained.
    match request {
        Request::Stats => {
            return (
                Response::Stats(shared.stats.snapshot(&shared.registry, &shared.breaker)),
                false,
            )
        }
        Request::Shutdown => return (Response::Shutdown, true),
        _ => {}
    }
    let _slot = match try_admit(shared) {
        Some(slot) => slot,
        None => {
            shared.stats.record_shed();
            return (
                Response::Error {
                    kind: ErrorKind::Overloaded,
                    message: format!("{} requests in flight", shared.max_inflight),
                    retry_after_ms: Some(RETRY_AFTER_MS),
                },
                false,
            );
        }
    };
    let response = match request {
        Request::Load { source, options } => do_load(shared, &source, &options),
        Request::Eval {
            source,
            options,
            params,
        } => do_eval(shared, handle, &source, &options, &params, false),
        Request::Trace {
            source,
            options,
            params,
        } => do_eval(shared, handle, &source, &options, &params, true),
        Request::Expected { source, sp, st } => do_expected(shared, &source, sp, st),
        Request::Stats | Request::Shutdown => unreachable!("handled above"),
    };
    (response, false)
}

fn error(kind: ErrorKind, message: impl Into<String>) -> Response {
    Response::Error {
        kind,
        message: message.into(),
        retry_after_ms: None,
    }
}

fn map_pipeline_error(err: &PipelineError) -> ErrorKind {
    match err {
        PipelineError::Build(_) => ErrorKind::BuildFailed,
        PipelineError::Unsupported(_) => ErrorKind::Unsupported,
        PipelineError::Io { .. } | PipelineError::Parse { .. } | PipelineError::UnknownInput(_) => {
            ErrorKind::BadRequest
        }
    }
}

/// Registry key: the source operand plus every model-*shaping* option.
/// `deadline_ms` is deliberately excluded — it is a per-request wall
/// clock, not a model parameter, and keying on it would fragment
/// residency across otherwise-identical builds. (Deadline-bounded builds
/// are also never *inserted*; see [`resolve`].)
fn registry_key(source: &str, options: &WireBuildOptions) -> String {
    format!(
        "{source}\0max_nodes={:?}\0upper_bound={}\0node_budget={:?}\0strict={}",
        options.max_nodes, options.upper_bound, options.node_budget, options.strict,
    )
}

fn build_options(options: &WireBuildOptions) -> BuildOptions {
    BuildOptions {
        max_nodes: options.max_nodes,
        upper_bound: options.upper_bound,
        node_budget: options.node_budget,
        strict: options.strict,
        time_budget: options.deadline_ms.map(Duration::from_millis),
        ..BuildOptions::default()
    }
}

/// Resolves a model operand to a registry-resident kernel. Returns the
/// kernel, the ADD apply steps this call performed (0 for warm paths)
/// and whether it was already resident.
fn resolve(
    shared: &Shared,
    source: &str,
    options: &WireBuildOptions,
) -> Result<(Arc<Kernel>, u64, bool), Response> {
    let key = registry_key(source, options);
    if let Some(kernel) = shared.registry.get(&key) {
        return Ok((kernel, 0, true));
    }
    // Circuit breaker: a model whose builds keep failing is refused
    // *before* the build lock, so doomed work cannot queue behind it.
    // An expired open window lets exactly one probe through.
    match shared.breaker.admit(&key) {
        BreakerDecision::Allow => {}
        BreakerDecision::Deny { retry_after_ms } => {
            shared.stats.record_breaker_denial();
            return Err(Response::Error {
                kind: ErrorKind::ModelUnavailable,
                message: "model build circuit is open after repeated build failures".to_owned(),
                retry_after_ms: Some(retry_after_ms),
            });
        }
    }
    // Serialize builds: concurrent requests for the same cold model
    // would otherwise burn a full symbolic construction each.
    let _build = shared.build_lock.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(kernel) = shared.registry.get(&key) {
        return Ok((kernel, 0, true));
    }
    let mut ctx = PipelineCtx::new(shared.library.clone()).with_options(build_options(options));
    if let Some(store) = &shared.store {
        ctx = ctx.with_store(store.clone());
    }
    let kernel = match ctx.kernel_for(&Source::infer(source)) {
        Ok(kernel) => kernel,
        Err(e) => {
            // Deadline-bounded failures are timing-dependent (a doomed
            // build under one deadline may succeed under none); only
            // deterministic failures feed the breaker.
            if options.deadline_ms.is_none() {
                shared.breaker.record_failure(&key);
            }
            return Err(error(map_pipeline_error(&e), e.to_string()));
        }
    };
    if options.deadline_ms.is_none() {
        shared.breaker.record_success(&key);
    }
    let applied = ctx.apply_steps();
    let kernel = Arc::new(kernel);
    // A deadline-bounded build is timing-dependent (the degradation
    // point depends on wall clock — same reason `BuildOptions::cacheable`
    // bypasses the artifact store), so its result serves this request
    // only and never becomes the registry-resident model for the key.
    if options.deadline_ms.is_none() {
        shared.registry.insert(&key, Arc::clone(&kernel));
    }
    Ok((kernel, applied, false))
}

fn do_load(shared: &Shared, source: &str, options: &WireBuildOptions) -> Response {
    match resolve(shared, source, options) {
        Ok((kernel, applied, resident)) => Response::Load {
            name: kernel.name().to_owned(),
            instrs: kernel.num_instrs(),
            terminals: kernel.num_terminals(),
            bytes: kernel.bytes(),
            apply_steps: applied,
            resident,
        },
        Err(response) => response,
    }
}

fn do_eval(
    shared: &Shared,
    handle: &BatchHandle,
    source: &str,
    options: &WireBuildOptions,
    params: &WireEvalParams,
    want_values: bool,
) -> Response {
    if params.vectors > shared.max_vectors {
        return error(
            ErrorKind::BadRequest,
            format!(
                "vectors={} exceeds this server's per-request cap ({}); split the request or restart with a larger --max-vectors",
                params.vectors, shared.max_vectors
            ),
        );
    }
    let deadline = params
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    // The request deadline also bounds a cold build (and, being
    // timing-dependent, keeps that build out of the registry).
    let build_options = WireBuildOptions {
        deadline_ms: params.deadline_ms,
        ..options.clone()
    };
    let (kernel, _, _) = match resolve(shared, source, &build_options) {
        Ok(resolved) => resolved,
        Err(response) => return response,
    };
    // Identical pattern generation to the offline CLI: a Markov source
    // over the kernel's inputs, at least two patterns.
    let mut markov = match MarkovSource::new(kernel.num_inputs(), params.sp, params.st, params.seed)
    {
        Ok(markov) => markov,
        Err(e) => return error(ErrorKind::BadRequest, e.to_string()),
    };
    let patterns = markov.sequence(params.vectors.max(2));
    if let Some(deadline) = deadline {
        if deadline <= Instant::now() {
            return error(
                ErrorKind::DeadlineExceeded,
                "deadline expired before dispatch",
            );
        }
    }
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = Job {
        kernel: Arc::clone(&kernel),
        patterns,
        want_values,
        deadline,
        reply: reply_tx,
        fault: None,
    };
    if handle.try_submit(job).is_err() {
        shared.stats.record_shed();
        return Response::Error {
            kind: ErrorKind::Overloaded,
            message: "dispatch queue full".to_owned(),
            retry_after_ms: Some(RETRY_AFTER_MS),
        };
    }
    match reply_rx.recv() {
        Ok(Ok(output)) => {
            if want_values {
                Response::Trace {
                    name: kernel.name().to_owned(),
                    values: output.values.unwrap_or_default(),
                }
            } else {
                Response::Eval {
                    name: kernel.name().to_owned(),
                    transitions: output.summary.transitions,
                    sum_ff: output.summary.sum_ff,
                    max_ff: output.summary.max_ff,
                }
            }
        }
        Ok(Err(JobError::DeadlineExceeded)) => {
            error(ErrorKind::DeadlineExceeded, "deadline expired in queue")
        }
        // A dropped reply means the executing worker panicked mid-batch
        // and the supervisor is restarting it; the request itself was
        // fine, so the client may retry after a short backoff.
        Err(_) => Response::Error {
            kind: ErrorKind::Internal,
            message: "dispatcher dropped the job (worker restarted); safe to retry".to_owned(),
            retry_after_ms: Some(RETRY_AFTER_MS),
        },
    }
}

fn do_expected(shared: &Shared, source: &str, sp: f64, st: f64) -> Response {
    // The analytic chain measure asserts feasibility; validate here so a
    // bad request gets a typed error instead of panicking a connection
    // thread. (Same stationarity bound as the Markov pattern source.)
    if !(sp > 0.0 && sp < 1.0) {
        return error(ErrorKind::BadRequest, format!("sp={sp} must be in (0,1)"));
    }
    if !(0.0..=1.0).contains(&st) || st > 2.0 * sp.min(1.0 - sp) {
        return error(
            ErrorKind::BadRequest,
            format!("infeasible (sp={sp}, st={st}): st must be at most 2*min(sp, 1-sp)"),
        );
    }
    let (kernel, _, _) = match resolve(shared, source, &WireBuildOptions::default()) {
        Ok(resolved) => resolved,
        Err(response) => return response,
    };
    let value = if kernel.is_interleaved() {
        kernel.expected_capacitance(sp, st)
    } else if matches!(Source::infer(source), Source::KernelFile(_)) {
        return error(
            ErrorKind::Unsupported,
            "grouped-ordering kernels cannot evaluate expectations; pass the `.cfm` model instead",
        );
    } else {
        // Mirror the CLI fallback: grouped-ordering pair correlation is
        // not chain-expressible on the kernel, so go through the arena
        // model (a warm artifact hit when a store is attached).
        let mut ctx = PipelineCtx::new(shared.library.clone());
        if let Some(store) = &shared.store {
            ctx = ctx.with_store(store.clone());
        }
        match ctx.model_for(&Source::infer(source)) {
            Ok(model) => model.expected_capacitance(sp, st).femtofarads(),
            Err(e) => return error(map_pipeline_error(&e), e.to_string()),
        }
    };
    Response::Expected {
        name: kernel.name().to_owned(),
        value,
    }
}
