//! charfree-serve: a reactor-based power-estimation server.
//!
//! Exposes the whole characterization-free pipeline — netlist → ADD
//! power model → compiled kernel → batched trace evaluation — over TCP,
//! std-only (no async runtime, no dependencies).
//!
//! What makes it more than a socket wrapper:
//!
//! * **Nonblocking reactor front end** ([`frontend`], crate
//!   `charfree-net`): N epoll shard threads own all connection I/O with
//!   edge-triggered readiness and write backpressure; a fixed service
//!   pool does parsing/admission/model resolution. No thread is parked
//!   per connection, so thousands of idle connections cost nothing.
//! * **Dual wire protocols** ([`proto`], [`wire`]): newline-delimited
//!   JSON and a length-prefixed binary protocol (magic `CFB1`, version
//!   negotiation) share one port — the first byte decides. Results are
//!   bit-identical across both (f64s travel as IEEE-754 bits in either
//!   encoding).
//! * **Warm sharded model registry** ([`ShardedRegistry`]): compiled
//!   kernels are shared across connections under a global byte-budget
//!   split over hash shards (per-shard LRU + per-shard build locks), and
//!   cold loads go through the content-addressed artifact store, so a
//!   warm `load` performs zero ADD apply steps.
//! * **Cross-connection micro-batching** ([`batch`]): concurrent eval
//!   requests are coalesced into shared 64-lane pattern blocks under a
//!   configurable window — with results bit-identical to evaluating
//!   each request alone (see the module docs for why that holds).
//! * **Admission control and graceful drain** ([`server`]): bounded
//!   queues everywhere, typed `overloaded` shedding with
//!   `retry_after_ms`, per-connection idle timeouts (slow-loris guard),
//!   and a `shutdown` command that stops accepting, flushes every
//!   accepted request and lets the process exit 0. SIGTERM/SIGINT
//!   trigger the same drain on unix.
//! * **Observability** ([`metrics`], [`stats`]): one snapshot serves the
//!   `stats`/`metrics` wire commands, `GET /metrics` on the main port,
//!   and an optional dedicated metrics listener, all in the Prometheus
//!   text format with stable counter names.
//! * **Supervision and self-healing** ([`supervisor`], [`batch`]):
//!   worker panics are caught and the worker restarts under capped
//!   exponential backoff; repeated model-build failures trip a
//!   per-model circuit breaker that sheds doomed builds with a typed
//!   `model-unavailable` + `retry_after_ms` and half-opens on a timer;
//!   the artifact cache is journaled and recovers (quarantining torn
//!   entries) at startup.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod batch;
pub mod client;
mod frontend;
pub mod json;
pub mod metrics;
pub mod proto;
pub mod registry;
pub mod server;
pub mod stats;
pub mod supervisor;
pub mod wire;

pub use batch::{
    BatchHandle, ChannelReply, Dispatcher, Job, JobError, JobFault, JobOutput, ReplySink,
};
pub use client::{Client, Proto, RetryPolicy};
pub use proto::{ErrorKind, Request, Response, WireBuildOptions, WireEvalParams};
pub use registry::{ModelRegistry, ShardedRegistry};
pub use server::{DrainHandle, ServeConfig, Server};
pub use stats::ServerStats;
pub use supervisor::{BreakerConfig, BreakerDecision, CircuitBreaker};
