//! charfree-serve: a multi-threaded power-estimation server.
//!
//! Exposes the whole characterization-free pipeline — netlist → ADD
//! power model → compiled kernel → batched trace evaluation — over a
//! newline-delimited JSON TCP protocol, std-only (no async runtime).
//!
//! What makes it more than a socket wrapper:
//!
//! * **Warm model registry** ([`ModelRegistry`]): compiled kernels are
//!   shared across connections under a byte-budget LRU, and cold loads
//!   go through the content-addressed artifact store, so a warm `load`
//!   performs zero ADD apply steps.
//! * **Cross-connection micro-batching** ([`batch`]): concurrent eval
//!   requests are coalesced into shared 64-lane pattern blocks under a
//!   configurable window — with results bit-identical to evaluating
//!   each request alone (see the module docs for why that holds).
//! * **Admission control and graceful drain** ([`server`]): bounded
//!   queues everywhere, typed `overloaded` shedding with
//!   `retry_after_ms`, and a `shutdown` command that stops accepting,
//!   flushes every accepted request and lets the process exit 0.
//!   SIGTERM/SIGINT trigger the same drain on unix.
//! * **Supervision and self-healing** ([`supervisor`], [`batch`]):
//!   worker panics are caught and the worker restarts under capped
//!   exponential backoff; repeated model-build failures trip a
//!   per-model circuit breaker that sheds doomed builds with a typed
//!   `model-unavailable` + `retry_after_ms` and half-opens on a timer;
//!   the artifact cache is journaled and recovers (quarantining torn
//!   entries) at startup.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod batch;
pub mod client;
pub mod json;
pub mod proto;
pub mod registry;
pub mod server;
pub mod stats;
pub mod supervisor;

pub use batch::{BatchHandle, Dispatcher, Job, JobError, JobFault, JobOutput};
pub use client::{Client, RetryPolicy};
pub use proto::{ErrorKind, Request, Response, WireBuildOptions, WireEvalParams};
pub use registry::ModelRegistry;
pub use server::{DrainHandle, ServeConfig, Server};
pub use stats::ServerStats;
pub use supervisor::{BreakerConfig, BreakerDecision, CircuitBreaker};
