//! A minimal JSON value, parser and writer for the wire protocol.
//!
//! The workspace vendors no serde; the protocol is flat enough to handle
//! with a small recursive-descent parser. One deliberate deviation from
//! a general-purpose JSON library: numbers keep their source text
//! ([`Json::Num`] stores the raw token), so 64-bit integers (seeds,
//! byte budgets) survive the round trip exactly instead of being forced
//! through `f64`. Floating-point payloads that must be *bit*-exact
//! (capacitance sums, trace values) do not travel as JSON numbers at all
//! — the protocol layer sends them as hex bit patterns.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source token (see module docs).
    Num(String),
    /// A string (already unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (the protocol never relies on key
    /// order, but keeping it makes responses stable and testable).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value from anything `Display`-able as a JSON number.
    pub fn num(n: impl std::fmt::Display) -> Json {
        Json::Num(n.to_string())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an integral number token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value on one line (the protocol is
    /// newline-delimited, so compact output is load-bearing, not
    /// cosmetic).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

/// Maximum container nesting the parser accepts. The protocol itself is
/// flat (depth 2 at most); the bound exists because recursion depth is
/// attacker-controlled — a line of `[[[[…` well under `MAX_LINE_BYTES`
/// would otherwise recurse once per byte and overflow the connection
/// thread's stack, aborting the whole process.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected `{}` at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        Ok(Json::Num(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| "non-utf8 \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogate pairs are not needed by this
                            // protocol; map them to the replacement char
                            // instead of erroring so foreign clients
                            // cannot wedge a connection.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?} at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // passed through unmodified).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string content".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"cmd":"eval","n":500,"sp":0.5,"neg":-1.5e-3,"ok":true,"tags":["a","b"],"none":null}"#;
        let v = parse(text).expect("parses");
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("eval"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(500));
        assert_eq!(v.get("sp").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-0.0015));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("none"), Some(&Json::Null));
        // Re-serialized and re-parsed equals itself.
        assert_eq!(parse(&v.to_line()).expect("re-parses"), v);
    }

    #[test]
    fn big_integers_survive_exactly() {
        let raw = u64::MAX.to_string();
        let v = parse(&format!("{{\"seed\":{raw}}}")).expect("parses");
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        assert!(v.to_line().contains(&raw));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\tと".to_owned());
        let line = v.to_line();
        assert_eq!(parse(&line).expect("parses"), v);
        let u = parse(r#""A⚠""#).expect("unicode escapes");
        assert_eq!(u.as_str(), Some("A\u{26A0}"));
    }

    #[test]
    fn nesting_is_bounded_not_stack_overflowed() {
        // At the bound: parses.
        let ok = format!("{}{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(parse(&ok).is_ok(), "depth {MAX_DEPTH} must parse");
        // One past the bound: a parse error, not a recursion blow-up.
        let deep = format!("{}{}", "[".repeat(MAX_DEPTH + 1), "]".repeat(MAX_DEPTH + 1));
        assert!(parse(&deep)
            .expect_err("depth past the bound must error")
            .contains("nesting"));
        // The attack shape: ~100KB of unclosed opens (well under the
        // server's line limit) must fail fast instead of overflowing the
        // stack and aborting the process. Mixed and object forms too.
        for attack in [
            "[".repeat(100_000),
            "[{\"k\":".repeat(30_000),
            "{\"k\":[".repeat(30_000),
        ] {
            assert!(parse(&attack).is_err(), "deep input must be rejected");
        }
    }

    #[test]
    fn syntax_errors_are_reported_not_panicked() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"abc",
            "{\"a\":1}x",
            "nul",
            "[1 2]",
            "-",
            "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
    }
}
