//! Plaintext metrics exposition.
//!
//! Renders the stats snapshot in the Prometheus text format (counter
//! name, space, value, newline; labels in braces). The same body is
//! served three ways — `GET /metrics` on the main port, the dedicated
//! `--metrics-addr` listener, and the `metrics` wire command (JSON
//! `{"cmd":"metrics"}` or binary frame `0x07`) — so scrapers, humans
//! with `curl`, and protocol clients all read identical numbers.
//!
//! Metric names are stable API: the CI metrics-scrape smoke asserts on
//! them, so renames are breaking changes.

use crate::json::Json;

/// The `Content-Type` the HTTP endpoints serve.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn num(obj: &Json, key: &str) -> u64 {
    obj.get(key).and_then(Json::as_u64).unwrap_or(0)
}

fn push(out: &mut String, name: &str, value: u64) {
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders the stats snapshot (as produced by
/// [`ServerStats::snapshot`](crate::stats::ServerStats::snapshot)) as
/// the metrics exposition body.
pub fn render(snapshot: &Json) -> String {
    let mut out = String::with_capacity(2048);

    out.push_str("# charfree power-estimation server metrics\n");
    push(
        &mut out,
        "charfree_accepted_total",
        num(snapshot, "accepted"),
    );
    push(
        &mut out,
        "charfree_completed_total",
        num(snapshot, "completed"),
    );
    push(&mut out, "charfree_errors_total", num(snapshot, "errors"));
    push(&mut out, "charfree_shed_total", num(snapshot, "shed"));

    if let Some(Json::Obj(cmds)) = snapshot.get("per_command") {
        for (cmd, count) in cmds {
            if let Some(count) = count.as_u64() {
                out.push_str(&format!(
                    "charfree_requests_total{{cmd=\"{cmd}\"}} {count}\n"
                ));
            }
        }
    }

    if let Some(latency) = snapshot.get("latency_us") {
        for q in ["p50", "p95", "p99"] {
            out.push_str(&format!(
                "charfree_latency_us{{quantile=\"{q}\"}} {}\n",
                num(latency, q)
            ));
        }
    }

    push(&mut out, "charfree_batches_total", num(snapshot, "batches"));
    push(
        &mut out,
        "charfree_batched_requests_total",
        num(snapshot, "batched_requests"),
    );
    if let Some(Json::Arr(fill)) = snapshot.get("batch_fill") {
        for (i, bucket) in fill.iter().enumerate() {
            match bucket.as_u64() {
                Some(count) if count > 0 => {
                    out.push_str(&format!(
                        "charfree_batch_fill{{lanes=\"{}\"}} {count}\n",
                        i + 1
                    ));
                }
                _ => {}
            }
        }
    }

    if let Some(registry) = snapshot.get("registry") {
        push(
            &mut out,
            "charfree_registry_entries",
            num(registry, "entries"),
        );
        push(&mut out, "charfree_registry_bytes", num(registry, "bytes"));
        push(
            &mut out,
            "charfree_registry_hits_total",
            num(registry, "hits"),
        );
        push(
            &mut out,
            "charfree_registry_misses_total",
            num(registry, "misses"),
        );
        push(
            &mut out,
            "charfree_registry_evictions_total",
            num(registry, "evictions"),
        );
        push(
            &mut out,
            "charfree_registry_shards",
            num(registry, "shards"),
        );
    }

    if let Some(res) = snapshot.get("resilience") {
        push(
            &mut out,
            "charfree_worker_panics_total",
            num(res, "worker_panics"),
        );
        push(
            &mut out,
            "charfree_breaker_trips_total",
            num(res, "breaker_trips"),
        );
        push(
            &mut out,
            "charfree_breaker_denials_total",
            num(res, "breaker_denials"),
        );
        push(
            &mut out,
            "charfree_breaker_open_circuits",
            num(res, "open_circuits"),
        );
        push(
            &mut out,
            "charfree_idle_timeouts_total",
            num(res, "idle_timeouts"),
        );
    }

    if let Some(net) = snapshot.get("net") {
        push(
            &mut out,
            "charfree_net_connections_total",
            num(net, "connections"),
        );
        push(
            &mut out,
            "charfree_net_bytes_in_total",
            num(net, "bytes_in"),
        );
        push(
            &mut out,
            "charfree_net_bytes_out_total",
            num(net, "bytes_out"),
        );
        for reason in charfree_net::CloseReason::all() {
            let key = format!("closed_{}", reason.name().replace('-', "_"));
            out.push_str(&format!(
                "charfree_net_closed_total{{reason=\"{}\"}} {}\n",
                reason.name(),
                num(net, &key)
            ));
        }
    }

    out
}

/// Wraps a metrics body as a minimal `HTTP/1.0` response with
/// connection close (all three serving paths keep HTTP handling this
/// small on purpose; scrapers and `curl` both accept it).
pub fn http_response(body: &str) -> String {
    format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {CONTENT_TYPE}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// The 404 answer for any HTTP path other than `/metrics`.
pub fn http_not_found() -> String {
    let body = "only GET /metrics is served\n";
    format!(
        "HTTP/1.0 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ShardedRegistry;
    use crate::stats::ServerStats;
    use crate::supervisor::{BreakerConfig, CircuitBreaker};

    #[test]
    fn renders_the_stable_counter_names() {
        let stats = ServerStats::new();
        stats.record_accepted("eval");
        stats.record_accepted("tracep");
        stats.record_completed(420);
        stats.record_error();
        stats.record_batch(2, 33);
        stats.record_idle_timeout();
        let registry = ShardedRegistry::new(8, 1 << 20);
        let breaker = CircuitBreaker::new(BreakerConfig::default());
        let net = charfree_net::NetCounters::default();
        net.accepted
            .fetch_add(3, std::sync::atomic::Ordering::Relaxed);
        net.record_close(charfree_net::CloseReason::Idle);

        let body = render(&stats.snapshot(&registry, &breaker, Some(&net)));
        for needle in [
            "charfree_accepted_total 2",
            "charfree_completed_total 1",
            "charfree_errors_total 1",
            "charfree_requests_total{cmd=\"eval\"} 1",
            "charfree_requests_total{cmd=\"tracep\"} 1",
            "charfree_latency_us{quantile=\"p50\"} 512",
            "charfree_batches_total 1",
            "charfree_batch_fill{lanes=\"33\"} 1",
            "charfree_registry_shards 8",
            "charfree_worker_panics_total 0",
            "charfree_idle_timeouts_total 1",
            "charfree_net_connections_total 3",
            "charfree_net_closed_total{reason=\"idle\"} 1",
        ] {
            assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
        }
    }

    #[test]
    fn http_wrapper_carries_exact_content_length() {
        let resp = http_response("abc\n");
        assert!(resp.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(resp.contains("Content-Length: 4\r\n"));
        assert!(resp.ends_with("\r\n\r\nabc\n"));
    }
}
