//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, in order. Floating-point
//! payloads that must survive the wire *bit-exactly* — capacitance sums,
//! maxima, per-transition trace values — travel as 16-hex-digit IEEE-754
//! bit patterns, never as decimal JSON numbers: the parity guarantee
//! (`charfree client eval` output is byte-identical to offline
//! `charfree eval`) rules out any decimal round trip. Request statistics
//! (`sp`, `st`) travel as ordinary JSON numbers because Rust's shortest
//! `f64` display is itself round-trip-exact.
//!
//! ```text
//! -> {"cmd":"eval","source":"decod","vectors":500,"sp":0.5,"st":0.3,"seed":1}
//! <- {"ok":true,"kind":"eval","name":"decod","transitions":499,
//!     "sum_ff":"40f86a2e38e38e39","max_ff":"4062c00000000000"}
//! ```
//!
//! Error responses are typed: `{"ok":false,"kind":"overloaded",
//! "error":"...","retry_after_ms":25}`. Clients branch on `kind`, not on
//! message text.

use crate::json::{parse, Json};

/// Build knobs a `load`/`build` request may carry (a wire-safe subset of
/// the pipeline's `BuildOptions`; timing-dependent knobs are expressed as
/// a per-request deadline).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WireBuildOptions {
    /// The paper's `MAX` node ceiling.
    pub max_nodes: Option<usize>,
    /// Build the conservative upper-bound model.
    pub upper_bound: bool,
    /// Resource-governor live-node ceiling.
    pub node_budget: Option<u64>,
    /// Strict mode: budget trips fail the build instead of degrading it.
    pub strict: bool,
    /// Per-request deadline, mapped onto the build `Budget`'s wall-clock
    /// resource (and checked before dispatch for evaluation requests).
    pub deadline_ms: Option<u64>,
}

impl WireBuildOptions {
    /// Writes the model-shaping fields (everything but `deadline_ms`).
    /// Shared by `load` serialization and by `eval`/`trace`, where the
    /// request-level `deadline_ms` belongs to the eval params instead.
    fn to_model_json_fields(&self, fields: &mut Vec<(String, Json)>) {
        if let Some(max) = self.max_nodes {
            fields.push(("max_nodes".to_owned(), Json::num(max)));
        }
        if self.upper_bound {
            fields.push(("upper_bound".to_owned(), Json::Bool(true)));
        }
        if let Some(nodes) = self.node_budget {
            fields.push(("node_budget".to_owned(), Json::num(nodes)));
        }
        if self.strict {
            fields.push(("strict".to_owned(), Json::Bool(true)));
        }
    }

    fn to_json_fields(&self, fields: &mut Vec<(String, Json)>) {
        self.to_model_json_fields(fields);
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_owned(), Json::num(ms)));
        }
    }

    /// Parses the model-shaping fields, leaving `deadline_ms` unset (for
    /// `eval`/`trace`, which carry the deadline in their eval params).
    fn from_model_json(obj: &Json) -> Result<WireBuildOptions, String> {
        Ok(WireBuildOptions {
            max_nodes: opt_u64(obj, "max_nodes")?.map(|n| n as usize),
            upper_bound: obj
                .get("upper_bound")
                .and_then(Json::as_bool)
                .unwrap_or(false),
            node_budget: opt_u64(obj, "node_budget")?,
            strict: obj.get("strict").and_then(Json::as_bool).unwrap_or(false),
            deadline_ms: None,
        })
    }

    fn from_json(obj: &Json) -> Result<WireBuildOptions, String> {
        Ok(WireBuildOptions {
            deadline_ms: opt_u64(obj, "deadline_ms")?,
            ..WireBuildOptions::from_model_json(obj)?
        })
    }
}

/// The evaluation parameters shared by `eval` and `trace` requests.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEvalParams {
    /// Markov-source sequence length (at least 2 patterns are generated).
    pub vectors: usize,
    /// Signal probability.
    pub sp: f64,
    /// Transition probability.
    pub st: f64,
    /// Markov-source seed.
    pub seed: u64,
    /// Per-request deadline in milliseconds (checked at dispatch; an
    /// expired request is shed with a typed `deadline` error).
    pub deadline_ms: Option<u64>,
}

impl WireEvalParams {
    fn to_json_fields(&self, fields: &mut Vec<(String, Json)>) {
        fields.push(("vectors".to_owned(), Json::num(self.vectors)));
        fields.push(("sp".to_owned(), Json::num(self.sp)));
        fields.push(("st".to_owned(), Json::num(self.st)));
        fields.push(("seed".to_owned(), Json::num(self.seed)));
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_owned(), Json::num(ms)));
        }
    }

    fn from_json(obj: &Json) -> Result<WireEvalParams, String> {
        Ok(WireEvalParams {
            vectors: req_u64(obj, "vectors")? as usize,
            sp: req_f64(obj, "sp")?,
            st: req_f64(obj, "st")?,
            seed: req_u64(obj, "seed")?,
            deadline_ms: opt_u64(obj, "deadline_ms")?,
        })
    }
}

/// One request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Ensure a model is resident in the registry (warm no-op when it
    /// already is; builds through the pipeline + artifact store when not).
    Load {
        /// Netlist / benchmark / artifact operand, resolved server-side.
        source: String,
        /// Build options (part of the registry key).
        options: WireBuildOptions,
    },
    /// Batched trace evaluation to a summary.
    Eval {
        /// Model operand (auto-loaded on registry miss).
        source: String,
        /// Build options the model was (or will be) loaded with, so an
        /// eval targets exactly the kernel a prior `load` pinned.
        /// `deadline_ms` is always `None` here — the request deadline
        /// lives in `params` and is applied to a cold build server-side.
        options: WireBuildOptions,
        /// Pattern-stream parameters.
        params: WireEvalParams,
    },
    /// Batched per-transition trace.
    Trace {
        /// Model operand (auto-loaded on registry miss).
        source: String,
        /// Build options (see [`Request::Eval`]).
        options: WireBuildOptions,
        /// Pattern-stream parameters.
        params: WireEvalParams,
    },
    /// Analytic expected switched capacitance at `(sp, st)`.
    Expected {
        /// Model operand.
        source: String,
        /// Signal probability.
        sp: f64,
        /// Transition probability.
        st: f64,
    },
    /// Batched per-transition trace over *explicit* patterns (the
    /// binary protocol's native request; JSON spells it `tracep` with
    /// patterns as `"0101…"` bit strings, most significant input
    /// first — the same convention as netlist truth tables).
    TraceDirect {
        /// Model operand (auto-loaded on registry miss).
        source: String,
        /// Build options (see [`Request::Eval`]).
        options: WireBuildOptions,
        /// Explicit input patterns; `len - 1` transitions are evaluated.
        patterns: Vec<Vec<bool>>,
        /// Per-request deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Server counters and latency/batch-fill histograms.
    Stats,
    /// Plaintext metrics (the same payload `GET /metrics` serves).
    Metrics,
    /// Graceful drain: stop accepting, flush in-flight work, exit 0.
    Shutdown,
}

impl Request {
    /// The wire command name.
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Load { .. } => "load",
            Request::Eval { .. } => "eval",
            Request::Trace { .. } => "trace",
            Request::TraceDirect { .. } => "tracep",
            Request::Expected { .. } => "expected",
            Request::Stats => "stats",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
        }
    }

    /// Serializes the request as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![("cmd".to_owned(), Json::Str(self.cmd().to_owned()))];
        match self {
            Request::Load { source, options } => {
                fields.push(("source".to_owned(), Json::Str(source.clone())));
                options.to_json_fields(&mut fields);
            }
            Request::Eval {
                source,
                options,
                params,
            }
            | Request::Trace {
                source,
                options,
                params,
            } => {
                fields.push(("source".to_owned(), Json::Str(source.clone())));
                options.to_model_json_fields(&mut fields);
                params.to_json_fields(&mut fields);
            }
            Request::TraceDirect {
                source,
                options,
                patterns,
                deadline_ms,
            } => {
                fields.push(("source".to_owned(), Json::Str(source.clone())));
                options.to_model_json_fields(&mut fields);
                fields.push((
                    "patterns".to_owned(),
                    Json::Arr(patterns.iter().map(|p| Json::Str(bits_to_str(p))).collect()),
                ));
                if let Some(ms) = deadline_ms {
                    fields.push(("deadline_ms".to_owned(), Json::num(ms)));
                }
            }
            Request::Expected { source, sp, st } => {
                fields.push(("source".to_owned(), Json::Str(source.clone())));
                fields.push(("sp".to_owned(), Json::num(sp)));
                fields.push(("st".to_owned(), Json::num(st)));
            }
            Request::Stats | Request::Metrics | Request::Shutdown => {}
        }
        Json::Obj(fields).to_line()
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A diagnostic suitable for a `bad-request` response.
    pub fn parse_line(line: &str) -> Result<Request, String> {
        let obj = parse(line)?;
        let cmd = obj
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing `cmd` field")?;
        match cmd {
            "load" | "build" => Ok(Request::Load {
                source: req_str(&obj, "source")?,
                options: WireBuildOptions::from_json(&obj)?,
            }),
            "eval" => Ok(Request::Eval {
                source: req_str(&obj, "source")?,
                options: WireBuildOptions::from_model_json(&obj)?,
                params: WireEvalParams::from_json(&obj)?,
            }),
            "trace" => Ok(Request::Trace {
                source: req_str(&obj, "source")?,
                options: WireBuildOptions::from_model_json(&obj)?,
                params: WireEvalParams::from_json(&obj)?,
            }),
            "tracep" => {
                let patterns = obj
                    .get("patterns")
                    .and_then(Json::as_arr)
                    .ok_or("missing `patterns` array")?
                    .iter()
                    .map(|p| bits_from_str(p.as_str().ok_or("non-string pattern")?))
                    .collect::<Result<Vec<Vec<bool>>, String>>()?;
                Ok(Request::TraceDirect {
                    source: req_str(&obj, "source")?,
                    options: WireBuildOptions::from_model_json(&obj)?,
                    patterns,
                    deadline_ms: opt_u64(&obj, "deadline_ms")?,
                })
            }
            "expected" => Ok(Request::Expected {
                source: req_str(&obj, "source")?,
                sp: req_f64(&obj, "sp")?,
                st: req_f64(&obj, "st")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

/// Typed failure classes a server can return. Clients branch on these,
/// not on message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request was shed by admission control (`--max-inflight`
    /// exceeded or dispatch queue full); retry after `retry_after_ms`.
    Overloaded,
    /// The request line failed to parse or validate.
    BadRequest,
    /// Model construction failed (strict-mode trip, invalid netlist).
    BuildFailed,
    /// The per-request deadline expired before evaluation started.
    DeadlineExceeded,
    /// The operation is not defined for the input kind.
    Unsupported,
    /// The server is draining and no longer accepts work.
    Draining,
    /// The model's build circuit breaker is open after repeated build
    /// failures; retry after `retry_after_ms`.
    ModelUnavailable,
    /// The connection sat idle past the server's idle timeout and is
    /// being closed (slow-loris guard). The error is a courtesy notice;
    /// the close follows immediately.
    Timeout,
    /// Anything else (I/O on the server side, poisoned state).
    Internal,
}

impl ErrorKind {
    /// Stable kebab-case wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::BuildFailed => "build-failed",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Draining => "draining",
            ErrorKind::ModelUnavailable => "model-unavailable",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_name(name: &str) -> ErrorKind {
        match name {
            "overloaded" => ErrorKind::Overloaded,
            "bad-request" => ErrorKind::BadRequest,
            "build-failed" => ErrorKind::BuildFailed,
            "deadline-exceeded" => ErrorKind::DeadlineExceeded,
            "unsupported" => ErrorKind::Unsupported,
            "draining" => ErrorKind::Draining,
            "model-unavailable" => ErrorKind::ModelUnavailable,
            "timeout" => ErrorKind::Timeout,
            _ => ErrorKind::Internal,
        }
    }

    /// Stable single-byte code for the binary protocol's error frames.
    pub fn code(self) -> u8 {
        match self {
            ErrorKind::Internal => 0,
            ErrorKind::Overloaded => 1,
            ErrorKind::BadRequest => 2,
            ErrorKind::BuildFailed => 3,
            ErrorKind::DeadlineExceeded => 4,
            ErrorKind::Unsupported => 5,
            ErrorKind::Draining => 6,
            ErrorKind::ModelUnavailable => 7,
            ErrorKind::Timeout => 8,
        }
    }

    /// The inverse of [`code`](ErrorKind::code); unknown codes collapse
    /// to `Internal` (same policy as unknown wire names).
    pub fn from_code(code: u8) -> ErrorKind {
        match code {
            1 => ErrorKind::Overloaded,
            2 => ErrorKind::BadRequest,
            3 => ErrorKind::BuildFailed,
            4 => ErrorKind::DeadlineExceeded,
            5 => ErrorKind::Unsupported,
            6 => ErrorKind::Draining,
            7 => ErrorKind::ModelUnavailable,
            8 => ErrorKind::Timeout,
            _ => ErrorKind::Internal,
        }
    }

    /// Is this failure transient from the client's point of view —
    /// worth retrying against the same server after a backoff?
    pub fn retriable(self) -> bool {
        matches!(
            self,
            ErrorKind::Overloaded | ErrorKind::Draining | ErrorKind::ModelUnavailable
        )
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `load`/`build` outcome.
    Load {
        /// Model display name.
        name: String,
        /// Kernel instruction count.
        instrs: usize,
        /// Distinct terminal values.
        terminals: usize,
        /// Kernel footprint in bytes.
        bytes: usize,
        /// ADD apply steps this load performed (0 = fully warm: served
        /// from the registry or the content-addressed store).
        apply_steps: u64,
        /// Whether the model was already registry-resident.
        resident: bool,
    },
    /// `eval` outcome (bit-exact summary).
    Eval {
        /// Model display name.
        name: String,
        /// Transitions evaluated.
        transitions: usize,
        /// Sum of per-transition switched capacitance (fF), bit-exact.
        sum_ff: f64,
        /// Maximum per-transition switched capacitance (fF), bit-exact.
        max_ff: f64,
    },
    /// `trace` outcome (bit-exact per-transition values).
    Trace {
        /// Model display name.
        name: String,
        /// Per-transition switched capacitance (fF), bit-exact.
        values: Vec<f64>,
    },
    /// `expected` outcome.
    Expected {
        /// Model display name.
        name: String,
        /// Expected switched capacitance (fF/cycle), bit-exact.
        value: f64,
    },
    /// `stats` payload (pre-rendered by the stats module).
    Stats(Json),
    /// `metrics` payload: the plaintext exposition body, identical to
    /// what `GET /metrics` serves over HTTP.
    Metrics(String),
    /// `shutdown` acknowledged; the server drains after this line.
    Shutdown,
    /// A typed failure.
    Error {
        /// Failure class.
        kind: ErrorKind,
        /// Human-readable diagnostic.
        message: String,
        /// For `overloaded`: the client should back off this long.
        retry_after_ms: Option<u64>,
    },
}

impl Response {
    /// Serializes the response as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = Vec::new();
        match self {
            Response::Error {
                kind,
                message,
                retry_after_ms,
            } => {
                fields.push(("ok".to_owned(), Json::Bool(false)));
                fields.push(("kind".to_owned(), Json::Str(kind.name().to_owned())));
                fields.push(("error".to_owned(), Json::Str(message.clone())));
                if let Some(ms) = retry_after_ms {
                    fields.push(("retry_after_ms".to_owned(), Json::num(ms)));
                }
            }
            Response::Load {
                name,
                instrs,
                terminals,
                bytes,
                apply_steps,
                resident,
            } => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.push(("kind".to_owned(), Json::Str("load".to_owned())));
                fields.push(("name".to_owned(), Json::Str(name.clone())));
                fields.push(("instrs".to_owned(), Json::num(instrs)));
                fields.push(("terminals".to_owned(), Json::num(terminals)));
                fields.push(("bytes".to_owned(), Json::num(bytes)));
                fields.push(("apply_steps".to_owned(), Json::num(apply_steps)));
                fields.push(("resident".to_owned(), Json::Bool(*resident)));
            }
            Response::Eval {
                name,
                transitions,
                sum_ff,
                max_ff,
            } => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.push(("kind".to_owned(), Json::Str("eval".to_owned())));
                fields.push(("name".to_owned(), Json::Str(name.clone())));
                fields.push(("transitions".to_owned(), Json::num(transitions)));
                fields.push(("sum_ff".to_owned(), Json::Str(f64_to_hex(*sum_ff))));
                fields.push(("max_ff".to_owned(), Json::Str(f64_to_hex(*max_ff))));
            }
            Response::Trace { name, values } => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.push(("kind".to_owned(), Json::Str("trace".to_owned())));
                fields.push(("name".to_owned(), Json::Str(name.clone())));
                fields.push((
                    "values".to_owned(),
                    Json::Arr(values.iter().map(|&v| Json::Str(f64_to_hex(v))).collect()),
                ));
            }
            Response::Expected { name, value } => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.push(("kind".to_owned(), Json::Str("expected".to_owned())));
                fields.push(("name".to_owned(), Json::Str(name.clone())));
                fields.push(("value".to_owned(), Json::Str(f64_to_hex(*value))));
            }
            Response::Stats(payload) => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.push(("kind".to_owned(), Json::Str("stats".to_owned())));
                fields.push(("stats".to_owned(), payload.clone()));
            }
            Response::Metrics(text) => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.push(("kind".to_owned(), Json::Str("metrics".to_owned())));
                fields.push(("text".to_owned(), Json::Str(text.clone())));
            }
            Response::Shutdown => {
                fields.push(("ok".to_owned(), Json::Bool(true)));
                fields.push(("kind".to_owned(), Json::Str("shutdown".to_owned())));
            }
        }
        Json::Obj(fields).to_line()
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// A diagnostic when the line is not a valid response.
    pub fn parse_line(line: &str) -> Result<Response, String> {
        let obj = parse(line)?;
        let ok = obj
            .get("ok")
            .and_then(Json::as_bool)
            .ok_or("missing `ok` field")?;
        if !ok {
            return Ok(Response::Error {
                kind: ErrorKind::from_name(
                    obj.get("kind").and_then(Json::as_str).unwrap_or("internal"),
                ),
                message: obj
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown error")
                    .to_owned(),
                retry_after_ms: opt_u64(&obj, "retry_after_ms")?,
            });
        }
        match obj.get("kind").and_then(Json::as_str) {
            Some("load") => Ok(Response::Load {
                name: req_str(&obj, "name")?,
                instrs: req_u64(&obj, "instrs")? as usize,
                terminals: req_u64(&obj, "terminals")? as usize,
                bytes: req_u64(&obj, "bytes")? as usize,
                apply_steps: req_u64(&obj, "apply_steps")?,
                resident: obj
                    .get("resident")
                    .and_then(Json::as_bool)
                    .ok_or("missing `resident`")?,
            }),
            Some("eval") => Ok(Response::Eval {
                name: req_str(&obj, "name")?,
                transitions: req_u64(&obj, "transitions")? as usize,
                sum_ff: hex_to_f64(&req_str(&obj, "sum_ff")?)?,
                max_ff: hex_to_f64(&req_str(&obj, "max_ff")?)?,
            }),
            Some("trace") => {
                let values = obj
                    .get("values")
                    .and_then(Json::as_arr)
                    .ok_or("missing `values`")?
                    .iter()
                    .map(|v| hex_to_f64(v.as_str().ok_or("non-string trace value")?))
                    .collect::<Result<Vec<f64>, String>>()?;
                Ok(Response::Trace {
                    name: req_str(&obj, "name")?,
                    values,
                })
            }
            Some("expected") => Ok(Response::Expected {
                name: req_str(&obj, "name")?,
                value: hex_to_f64(&req_str(&obj, "value")?)?,
            }),
            Some("stats") => Ok(Response::Stats(
                obj.get("stats").cloned().unwrap_or(Json::Null),
            )),
            Some("metrics") => Ok(Response::Metrics(req_str(&obj, "text")?)),
            Some("shutdown") => Ok(Response::Shutdown),
            Some(other) => Err(format!("unknown response kind `{other}`")),
            None => Err("missing `kind` field".to_owned()),
        }
    }
}

/// Renders a pattern as a `"0101…"` bit string (index 0 first).
pub fn bits_to_str(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

/// Parses a `"0101…"` bit string back to a pattern.
///
/// # Errors
///
/// Rejects empty strings and non-`0`/`1` characters.
pub fn bits_from_str(s: &str) -> Result<Vec<bool>, String> {
    if s.is_empty() {
        return Err("empty pattern".to_owned());
    }
    s.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("bad pattern bit {other:?}")),
        })
        .collect()
}

/// Renders an `f64` as its 16-hex-digit IEEE-754 bit pattern.
pub fn f64_to_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parses a 16-hex-digit IEEE-754 bit pattern back to the identical
/// `f64`.
///
/// # Errors
///
/// Rejects non-hex input.
pub fn hex_to_f64(hex: &str) -> Result<f64, String> {
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad f64 bit pattern `{hex}`"))
}

fn req_str(obj: &Json, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn req_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing `{key}`"))?
        .as_u64()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer"))
}

fn req_f64(obj: &Json, key: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("missing `{key}`"))?
        .as_f64()
        .ok_or_else(|| format!("`{key}` must be a number"))?;
    if v.is_finite() {
        Ok(v)
    } else {
        Err(format!("`{key}` must be finite"))
    }
}

fn opt_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Load {
                source: "decod".to_owned(),
                options: WireBuildOptions {
                    max_nodes: Some(300),
                    upper_bound: true,
                    node_budget: Some(500),
                    strict: true,
                    deadline_ms: Some(750),
                },
            },
            Request::Eval {
                source: "x.blif".to_owned(),
                options: WireBuildOptions::default(),
                params: WireEvalParams {
                    vectors: 500,
                    sp: 0.5,
                    st: 0.3,
                    seed: u64::MAX,
                    deadline_ms: None,
                },
            },
            Request::Trace {
                source: "decod".to_owned(),
                options: WireBuildOptions {
                    max_nodes: Some(128),
                    upper_bound: true,
                    node_budget: Some(4096),
                    strict: true,
                    deadline_ms: None,
                },
                params: WireEvalParams {
                    vectors: 64,
                    sp: 0.25,
                    st: 0.75,
                    seed: 7,
                    deadline_ms: Some(10),
                },
            },
            Request::TraceDirect {
                source: "decod".to_owned(),
                options: WireBuildOptions::default(),
                patterns: vec![
                    vec![false, true, false, true, true],
                    vec![true, true, false, false, false],
                ],
                deadline_ms: Some(100),
            },
            Request::Expected {
                source: "decod".to_owned(),
                sp: 0.1,
                st: 0.9,
            },
            Request::Stats,
            Request::Metrics,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(Request::parse_line(&line).expect("parses"), req);
        }
    }

    #[test]
    fn build_is_an_alias_for_load() {
        let req = Request::parse_line(r#"{"cmd":"build","source":"decod","max_nodes":100}"#)
            .expect("parses");
        assert!(matches!(req, Request::Load { ref options, .. } if options.max_nodes == Some(100)));
    }

    #[test]
    fn responses_round_trip_bit_exactly() {
        let awkward = [
            0.1 + 0.2,
            f64::NEG_INFINITY,
            -0.0,
            1.0e-308,
            12345.678901234567,
        ];
        for &v in &awkward {
            assert_eq!(
                hex_to_f64(&f64_to_hex(v)).expect("round trip").to_bits(),
                v.to_bits()
            );
        }
        let resps = [
            Response::Load {
                name: "decod".to_owned(),
                instrs: 42,
                terminals: 7,
                bytes: 1024,
                apply_steps: 0,
                resident: true,
            },
            Response::Eval {
                name: "decod".to_owned(),
                transitions: 499,
                sum_ff: 0.1 + 0.2,
                max_ff: 151.0,
            },
            Response::Trace {
                name: "decod".to_owned(),
                values: awkward.to_vec(),
            },
            Response::Expected {
                name: "decod".to_owned(),
                value: -0.0,
            },
            Response::Metrics("charfree_requests_total 7\ncharfree_batches_total 3\n".to_owned()),
            Response::Shutdown,
            Response::Error {
                kind: ErrorKind::Overloaded,
                message: "423 in flight".to_owned(),
                retry_after_ms: Some(25),
            },
        ];
        for resp in resps {
            let line = resp.to_line();
            assert!(!line.contains('\n'), "one line: {line}");
            assert_eq!(Response::parse_line(&line).expect("parses"), resp);
        }
    }

    #[test]
    fn error_kinds_have_stable_wire_names() {
        for kind in [
            ErrorKind::Overloaded,
            ErrorKind::BadRequest,
            ErrorKind::BuildFailed,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Unsupported,
            ErrorKind::Draining,
            ErrorKind::ModelUnavailable,
            ErrorKind::Timeout,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_name(kind.name()), kind);
            assert_eq!(ErrorKind::from_code(kind.code()), kind);
        }
        // Unknown binary codes collapse to Internal, never panic.
        assert_eq!(ErrorKind::from_code(250), ErrorKind::Internal);
    }

    #[test]
    fn retriable_kinds_are_exactly_the_transient_ones() {
        assert!(ErrorKind::Overloaded.retriable());
        assert!(ErrorKind::Draining.retriable());
        assert!(ErrorKind::ModelUnavailable.retriable());
        assert!(!ErrorKind::BadRequest.retriable());
        assert!(!ErrorKind::BuildFailed.retriable());
        assert!(!ErrorKind::DeadlineExceeded.retriable());
        assert!(!ErrorKind::Unsupported.retriable());
        assert!(!ErrorKind::Timeout.retriable());
        assert!(!ErrorKind::Internal.retriable());
    }

    #[test]
    fn tracep_rejects_malformed_patterns() {
        for bad in [
            r#"{"cmd":"tracep","source":"d"}"#,
            r#"{"cmd":"tracep","source":"d","patterns":["01","0x"]}"#,
            r#"{"cmd":"tracep","source":"d","patterns":[""]}"#,
            r#"{"cmd":"tracep","source":"d","patterns":[7]}"#,
        ] {
            assert!(
                Request::parse_line(bad).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }

    #[test]
    fn malformed_requests_are_rejected_with_diagnostics() {
        for bad in [
            "",
            "{}",
            r#"{"cmd":"frobnicate"}"#,
            r#"{"cmd":"eval"}"#,
            r#"{"cmd":"eval","source":"d","vectors":-1,"sp":0.5,"st":0.5,"seed":1}"#,
            r#"{"cmd":"eval","source":"d","vectors":10,"sp":"x","st":0.5,"seed":1}"#,
        ] {
            assert!(
                Request::parse_line(bad).is_err(),
                "`{bad}` must be rejected"
            );
        }
    }
}
