//! The reactor front end: protocol detection, framing, and the service
//! pool that turns frames into work.
//!
//! Threading: the reactor shard threads (crate `charfree-net`) do
//! nothing but framing — they sniff the protocol from the connection's
//! first byte (`{` or whitespace → JSON lines, `C` of `CFB1` → binary,
//! `G` of `GET ` → HTTP metrics), slice complete JSON lines / binary
//! frames out of the read buffer, and hand them to the **service
//! pool**. Service threads parse, run admission control, resolve models
//! (cold symbolic builds happen here, never on an I/O thread) and either
//! answer directly or submit a dispatcher job whose [`ReplySink`] posts
//! the already-encoded response back to the owning shard through the
//! reactor [`Mailbox`].
//!
//! One request is in flight per connection at a time (responses are
//! answered in order); bytes a pipelining client sends early simply
//! accumulate in the connection buffer until the in-flight response
//! completes. A client that half-closes after its last request still
//! gets every response: EOF is deferred while a completion is pending.

use std::io;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use charfree_engine::Kernel;
use charfree_net::{CloseReason, ConnCtx, Handler, Mailbox, Token};
use charfree_sim::MarkovSource;

use crate::batch::{BatchHandle, Job, JobError, JobOutput, ReplySink};
use crate::metrics;
use crate::proto::{ErrorKind, Request, Response, WireBuildOptions, WireEvalParams};
use crate::server::{self, InflightGuard, Shared, MAX_LINE_BYTES, RETRY_AFTER_MS};
use crate::wire;

/// Longest tolerated HTTP request head before the connection is cut.
const MAX_HTTP_HEAD: usize = 8 * 1024;

/// A finished request on its way back to the connection: response bytes
/// already encoded for the connection's protocol, plus whether the
/// connection should close once they are flushed (`shutdown`'s ack).
pub(crate) struct Completion {
    bytes: Vec<u8>,
    close: bool,
}

/// Which wire encoding a connection (or one request on it) speaks.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Json,
    Binary,
}

/// Per-connection protocol state.
enum Mode {
    /// Nothing decisive received yet: sniff the first byte.
    Detecting,
    /// First byte was `C`: waiting for the full 8-byte binary hello.
    Hello,
    /// Newline-delimited JSON requests.
    Json,
    /// Length-prefixed binary frames (hello negotiated).
    Binary,
    /// An HTTP request (metrics scrape); answer once and close.
    Http,
}

/// One framed request on its way to the service pool.
pub(crate) struct SvcRequest {
    token: Token,
    proto: Proto,
    received: Instant,
    raw: Raw,
}

enum Raw {
    Json(String),
    Binary { ty: u8, payload: Vec<u8> },
}

fn encode_response(proto: Proto, resp: &Response) -> Vec<u8> {
    match proto {
        Proto::Json => {
            let mut bytes = resp.to_line().into_bytes();
            bytes.push(b'\n');
            bytes
        }
        Proto::Binary => {
            let mut bytes = Vec::new();
            wire::encode_response(resp, &mut bytes);
            bytes
        }
    }
}

/// The per-connection [`Handler`]: a protocol state machine that only
/// frames — all parsing and evaluation happens off the shard thread.
pub(crate) struct Frontend {
    shared: Arc<Shared>,
    svc: SyncSender<SvcRequest>,
    mode: Mode,
    /// A request is with the service pool / dispatcher; frames buffer
    /// until its completion comes back.
    busy: bool,
    /// The peer half-closed while a request was in flight; close once
    /// the response has been written.
    eof_pending: bool,
}

impl Frontend {
    pub(crate) fn new(shared: Arc<Shared>, svc: SyncSender<SvcRequest>) -> Frontend {
        Frontend {
            shared,
            svc,
            mode: Mode::Detecting,
            busy: false,
            eof_pending: false,
        }
    }

    fn write_error(&self, conn: &mut ConnCtx<'_>, proto: Proto, kind: ErrorKind, message: String) {
        let resp = Response::Error {
            kind,
            message,
            retry_after_ms: None,
        };
        conn.write(&encode_response(proto, &resp));
    }

    fn pump(&mut self, conn: &mut ConnCtx<'_>) {
        loop {
            if conn.closing() {
                return;
            }
            match self.mode {
                Mode::Detecting => {
                    let ws = conn
                        .data()
                        .iter()
                        .take_while(|&&b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
                        .count();
                    if ws > 0 {
                        conn.consume(ws);
                    }
                    let Some(&first) = conn.data().first() else {
                        return;
                    };
                    // Anything that is not a binary hello or an HTTP GET
                    // is treated as JSON lines — including garbage, which
                    // then gets a typed per-line `bad-request` without
                    // costing the connection.
                    self.mode = match first {
                        b'C' => Mode::Hello,
                        b'G' => Mode::Http,
                        _ => Mode::Json,
                    };
                }
                Mode::Hello => {
                    if conn.data().len() < 8 {
                        return;
                    }
                    let mut hello = [0u8; 8];
                    hello.copy_from_slice(&conn.data()[..8]);
                    conn.consume(8);
                    match wire::parse_hello(&hello) {
                        Ok((min, max)) if (min..=max).contains(&wire::VERSION) => {
                            conn.write(&wire::encode_hello_ack(wire::VERSION));
                            self.mode = Mode::Binary;
                        }
                        Ok((min, max)) => {
                            self.shared.stats.record_error();
                            conn.write(&wire::encode_hello_ack(0));
                            self.write_error(
                                conn,
                                Proto::Binary,
                                ErrorKind::Unsupported,
                                format!(
                                    "no common protocol version: server speaks {}, client \
                                     offered {min}..={max}",
                                    wire::VERSION
                                ),
                            );
                            conn.close(CloseReason::Protocol);
                            return;
                        }
                        Err(message) => {
                            self.shared.stats.record_error();
                            conn.write(&wire::encode_hello_ack(0));
                            self.write_error(conn, Proto::Binary, ErrorKind::BadRequest, message);
                            conn.close(CloseReason::Protocol);
                            return;
                        }
                    }
                }
                Mode::Json => {
                    self.pump_json(conn);
                    return;
                }
                Mode::Binary => {
                    self.pump_binary(conn);
                    return;
                }
                Mode::Http => {
                    self.pump_http(conn);
                    return;
                }
            }
        }
    }

    fn pump_json(&mut self, conn: &mut ConnCtx<'_>) {
        while !self.busy && !conn.closing() {
            let data = conn.data();
            let Some(nl) = data.iter().position(|&b| b == b'\n') else {
                if data.len() > MAX_LINE_BYTES {
                    self.shared.stats.record_error();
                    self.write_error(
                        conn,
                        Proto::Json,
                        ErrorKind::BadRequest,
                        format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                    );
                    conn.close(CloseReason::Protocol);
                }
                return;
            };
            let mut line = &data[..nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            let text = String::from_utf8_lossy(line).into_owned();
            conn.consume(nl + 1);
            if text.trim().is_empty() {
                continue;
            }
            self.dispatch(conn, Proto::Json, Raw::Json(text));
        }
    }

    fn pump_binary(&mut self, conn: &mut ConnCtx<'_>) {
        while !self.busy && !conn.closing() {
            match wire::try_frame(conn.data()) {
                Ok(None) => return,
                Ok(Some(frame)) => {
                    let ty = frame.ty;
                    let payload = conn.data()[frame.payload_start..frame.payload_end].to_vec();
                    conn.consume(frame.consumed);
                    self.dispatch(conn, Proto::Binary, Raw::Binary { ty, payload });
                }
                Err(message) => {
                    // Framing errors (hostile length prefix) are
                    // unrecoverable: the stream can no longer be trusted
                    // to be in sync, so answer once and close.
                    self.shared.stats.record_error();
                    self.write_error(conn, Proto::Binary, ErrorKind::BadRequest, message);
                    conn.close(CloseReason::Protocol);
                    return;
                }
            }
        }
    }

    fn pump_http(&mut self, conn: &mut ConnCtx<'_>) {
        let data = conn.data();
        let Some(nl) = data.iter().position(|&b| b == b'\n') else {
            if data.len() > MAX_HTTP_HEAD {
                conn.close(CloseReason::Protocol);
            }
            return;
        };
        let line = String::from_utf8_lossy(&data[..nl]).into_owned();
        let buffered = data.len();
        conn.consume(buffered);
        let mut parts = line.split_whitespace();
        let body = match (parts.next(), parts.next()) {
            (Some("GET"), Some("/metrics")) => {
                metrics::http_response(&metrics::render(&self.shared.snapshot()))
            }
            _ => metrics::http_not_found(),
        };
        conn.write(body.as_bytes());
        conn.close(CloseReason::App);
    }

    fn dispatch(&mut self, conn: &mut ConnCtx<'_>, proto: Proto, raw: Raw) {
        let req = SvcRequest {
            token: conn.token(),
            proto,
            received: Instant::now(),
            raw,
        };
        match self.svc.try_send(req) {
            Ok(()) => {
                self.busy = true;
                conn.touch();
            }
            Err(TrySendError::Full(_)) => {
                // Pre-admission shed: the service queue is sized to the
                // connection cap, so this only fires under pathological
                // pile-up. Typed, retriable, and the connection lives on.
                self.shared.stats.record_shed();
                self.shared.stats.record_error();
                let resp = Response::Error {
                    kind: ErrorKind::Overloaded,
                    message: "service queue full".to_owned(),
                    retry_after_ms: Some(RETRY_AFTER_MS),
                };
                conn.write(&encode_response(proto, &resp));
            }
            Err(TrySendError::Disconnected(_)) => conn.close(CloseReason::App),
        }
    }
}

impl Handler<Completion> for Frontend {
    fn on_data(&mut self, conn: &mut ConnCtx<'_>) {
        self.pump(conn);
    }

    fn on_message(&mut self, msg: Completion, conn: &mut ConnCtx<'_>) {
        self.busy = false;
        conn.write(&msg.bytes);
        conn.touch();
        if msg.close {
            conn.close(CloseReason::App);
            return;
        }
        if conn.draining() {
            conn.close(CloseReason::Drain);
            return;
        }
        self.pump(conn);
        if !self.busy && self.eof_pending && !conn.closing() {
            conn.close(CloseReason::Eof);
        }
    }

    fn on_eof(&mut self, conn: &mut ConnCtx<'_>) {
        if self.busy {
            // Half-close with a request in flight: finish it first.
            self.eof_pending = true;
        } else {
            conn.close(CloseReason::Eof);
        }
    }

    fn on_drain(&mut self, conn: &mut ConnCtx<'_>) {
        // A busy connection finishes its in-flight request; the
        // completion path re-checks the draining flag and closes.
        if !self.busy {
            conn.close(CloseReason::Drain);
        }
    }

    fn on_idle(&mut self, conn: &mut ConnCtx<'_>) {
        if self.busy {
            // The server, not the client, is the slow party.
            conn.touch();
            return;
        }
        self.shared.stats.record_idle_timeout();
        let proto = match self.mode {
            Mode::Binary => Proto::Binary,
            _ => Proto::Json,
        };
        let resp = Response::Error {
            kind: ErrorKind::Timeout,
            message: "idle timeout: no request arrived within the idle window".to_owned(),
            retry_after_ms: None,
        };
        conn.write(&encode_response(proto, &resp));
        conn.close(CloseReason::Idle);
    }
}

// ---- service pool ---------------------------------------------------

/// The fixed pool of service threads between the reactor and the
/// dispatcher.
pub(crate) struct ServicePool {
    threads: Vec<thread::JoinHandle<()>>,
}

impl ServicePool {
    /// Spawns `threads` service workers draining `rx`.
    pub(crate) fn start(
        threads: usize,
        rx: Receiver<SvcRequest>,
        shared: &Arc<Shared>,
        batch: &BatchHandle,
        mailbox: &Mailbox<Completion>,
    ) -> io::Result<ServicePool> {
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(threads.max(1));
        for i in 0..threads.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(shared);
            let batch = batch.clone();
            let mailbox = mailbox.clone();
            pool.push(
                thread::Builder::new()
                    .name(format!("charfree-serve-svc-{i}"))
                    .spawn(move || service_loop(&rx, &shared, &batch, &mailbox))?,
            );
        }
        Ok(ServicePool { threads: pool })
    }

    /// Joins the pool; every frame sender (the reactor) must already be
    /// gone, or this blocks.
    pub(crate) fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn service_loop(
    rx: &Mutex<Receiver<SvcRequest>>,
    shared: &Arc<Shared>,
    batch: &BatchHandle,
    mailbox: &Mailbox<Completion>,
) {
    loop {
        // Hold the lock only for the receive, so a slow request does not
        // serialize the pool.
        let req = {
            let rx = rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match req {
            Ok(req) => handle_request(req, shared, batch, mailbox),
            Err(_) => return, // reactor gone and the queue drained
        }
    }
}

/// Records the outcome, logs it, and posts the encoded response back to
/// the connection's shard.
#[allow(clippy::too_many_arguments)]
fn finish(
    shared: &Shared,
    mailbox: &Mailbox<Completion>,
    token: Token,
    proto: Proto,
    received: Instant,
    cmd: &str,
    response: Response,
    close: bool,
) {
    let latency_us = received.elapsed().as_micros() as u64;
    let (status, is_error) = match &response {
        Response::Error { kind, .. } => (kind.name(), true),
        _ => ("ok", false),
    };
    if is_error {
        shared.stats.record_error();
    } else {
        shared.stats.record_completed(latency_us);
    }
    shared.log_line(
        token,
        &format!("cmd={cmd} status={status} latency_us={latency_us}"),
    );
    mailbox.post(
        token,
        Completion {
            bytes: encode_response(proto, &response),
            close,
        },
    );
}

fn overloaded_response(shared: &Shared) -> Response {
    shared.stats.record_shed();
    Response::Error {
        kind: ErrorKind::Overloaded,
        message: format!("{} requests in flight", shared.max_inflight),
        retry_after_ms: Some(RETRY_AFTER_MS),
    }
}

fn handle_request(
    req: SvcRequest,
    shared: &Arc<Shared>,
    batch: &BatchHandle,
    mailbox: &Mailbox<Completion>,
) {
    let SvcRequest {
        token,
        proto,
        received,
        raw,
    } = req;
    let parsed = match raw {
        Raw::Json(line) => Request::parse_line(&line),
        Raw::Binary { ty, payload } => wire::decode_request(ty, &payload),
    };
    let request = match parsed {
        Ok(request) => request,
        Err(message) => {
            let resp = Response::Error {
                kind: ErrorKind::BadRequest,
                message,
                retry_after_ms: None,
            };
            finish(shared, mailbox, token, proto, received, "?", resp, false);
            return;
        }
    };
    let cmd = request.cmd();
    shared.stats.record_accepted(cmd);
    if shared.draining.load(Ordering::SeqCst) && !matches!(request, Request::Shutdown) {
        let resp = Response::Error {
            kind: ErrorKind::Draining,
            message: "server is draining".to_owned(),
            retry_after_ms: None,
        };
        finish(shared, mailbox, token, proto, received, cmd, resp, false);
        return;
    }
    // stats/metrics/shutdown are control-plane: they bypass the
    // admission window so an overloaded server can still be observed
    // and drained.
    match request {
        Request::Stats => {
            let resp = Response::Stats(shared.snapshot());
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
        }
        Request::Metrics => {
            let resp = Response::Metrics(metrics::render(&shared.snapshot()));
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
        }
        Request::Shutdown => {
            finish(
                shared,
                mailbox,
                token,
                proto,
                received,
                cmd,
                Response::Shutdown,
                true,
            );
            server::begin_drain(shared);
        }
        Request::Load { source, options } => {
            let resp = match server::try_admit(shared) {
                Some(_guard) => server::do_load(shared, &source, &options),
                None => overloaded_response(shared),
            };
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
        }
        Request::Expected { source, sp, st } => {
            let resp = match server::try_admit(shared) {
                Some(_guard) => server::do_expected(shared, &source, sp, st),
                None => overloaded_response(shared),
            };
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
        }
        Request::Eval {
            source,
            options,
            params,
        } => start_eval(
            shared, batch, mailbox, token, proto, received, cmd, &source, &options, &params, false,
        ),
        Request::Trace {
            source,
            options,
            params,
        } => start_eval(
            shared, batch, mailbox, token, proto, received, cmd, &source, &options, &params, true,
        ),
        Request::TraceDirect {
            source,
            options,
            patterns,
            deadline_ms,
        } => start_direct(
            shared,
            batch,
            mailbox,
            token,
            proto,
            received,
            cmd,
            &source,
            &options,
            patterns,
            deadline_ms,
        ),
    }
}

/// `eval`/`trace`: admission, model resolution, Markov pattern
/// generation, then a dispatcher job completing through the mailbox.
#[allow(clippy::too_many_arguments)]
fn start_eval(
    shared: &Arc<Shared>,
    batch: &BatchHandle,
    mailbox: &Mailbox<Completion>,
    token: Token,
    proto: Proto,
    received: Instant,
    cmd: &'static str,
    source: &str,
    options: &WireBuildOptions,
    params: &WireEvalParams,
    want_values: bool,
) {
    let Some(guard) = server::try_admit(shared) else {
        let resp = overloaded_response(shared);
        finish(shared, mailbox, token, proto, received, cmd, resp, false);
        return;
    };
    if params.vectors > shared.max_vectors {
        let resp = server::error(
            ErrorKind::BadRequest,
            format!(
                "vectors={} exceeds this server's per-request cap ({}); split the request or \
                 restart with a larger --max-vectors",
                params.vectors, shared.max_vectors
            ),
        );
        finish(shared, mailbox, token, proto, received, cmd, resp, false);
        return;
    }
    let deadline = params
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    // The request deadline also bounds a cold build (and, being
    // timing-dependent, keeps that build out of the registry).
    let build_options = WireBuildOptions {
        deadline_ms: params.deadline_ms,
        ..options.clone()
    };
    let kernel = match server::resolve(shared, source, &build_options) {
        Ok((kernel, _, _)) => kernel,
        Err(resp) => {
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
            return;
        }
    };
    // Identical pattern generation to the offline CLI: a Markov source
    // over the kernel's inputs, at least two patterns.
    let mut markov = match MarkovSource::new(kernel.num_inputs(), params.sp, params.st, params.seed)
    {
        Ok(markov) => markov,
        Err(e) => {
            let resp = server::error(ErrorKind::BadRequest, e.to_string());
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
            return;
        }
    };
    let patterns = markov.sequence(params.vectors.max(2));
    submit(
        shared,
        batch,
        mailbox,
        token,
        proto,
        received,
        cmd,
        kernel,
        patterns,
        want_values,
        deadline,
        guard,
    );
}

/// `tracep`: explicit patterns straight into the dispatcher.
#[allow(clippy::too_many_arguments)]
fn start_direct(
    shared: &Arc<Shared>,
    batch: &BatchHandle,
    mailbox: &Mailbox<Completion>,
    token: Token,
    proto: Proto,
    received: Instant,
    cmd: &'static str,
    source: &str,
    options: &WireBuildOptions,
    patterns: Vec<Vec<bool>>,
    deadline_ms: Option<u64>,
) {
    let Some(guard) = server::try_admit(shared) else {
        let resp = overloaded_response(shared);
        finish(shared, mailbox, token, proto, received, cmd, resp, false);
        return;
    };
    if patterns.len() > shared.max_vectors {
        let resp = server::error(
            ErrorKind::BadRequest,
            format!(
                "{} patterns exceeds this server's per-request cap ({})",
                patterns.len(),
                shared.max_vectors
            ),
        );
        finish(shared, mailbox, token, proto, received, cmd, resp, false);
        return;
    }
    if patterns.len() < 2 {
        let resp = server::error(
            ErrorKind::BadRequest,
            "tracep needs at least two patterns (transitions are pattern pairs)",
        );
        finish(shared, mailbox, token, proto, received, cmd, resp, false);
        return;
    }
    let deadline = deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let build_options = WireBuildOptions {
        deadline_ms,
        ..options.clone()
    };
    let kernel = match server::resolve(shared, source, &build_options) {
        Ok((kernel, _, _)) => kernel,
        Err(resp) => {
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
            return;
        }
    };
    let width = kernel.num_inputs();
    if patterns.iter().any(|p| p.len() != width) {
        let resp = server::error(
            ErrorKind::BadRequest,
            format!("pattern width must match the model's {width} inputs"),
        );
        finish(shared, mailbox, token, proto, received, cmd, resp, false);
        return;
    }
    submit(
        shared, batch, mailbox, token, proto, received, cmd, kernel, patterns, true, deadline,
        guard,
    );
}

#[allow(clippy::too_many_arguments)]
fn submit(
    shared: &Arc<Shared>,
    batch: &BatchHandle,
    mailbox: &Mailbox<Completion>,
    token: Token,
    proto: Proto,
    received: Instant,
    cmd: &'static str,
    kernel: Arc<Kernel>,
    patterns: Vec<Vec<bool>>,
    want_values: bool,
    deadline: Option<Instant>,
    guard: InflightGuard,
) {
    if let Some(deadline) = deadline {
        if deadline <= Instant::now() {
            let resp = server::error(
                ErrorKind::DeadlineExceeded,
                "deadline expired before dispatch",
            );
            finish(shared, mailbox, token, proto, received, cmd, resp, false);
            return;
        }
    }
    let sink = ReactorReply {
        inner: Some(ReplyInner {
            shared: Arc::clone(shared),
            mailbox: mailbox.clone(),
            token,
            proto,
            received,
            cmd,
            name: kernel.name().to_owned(),
            want_values,
            _guard: guard,
        }),
    };
    let job = Job {
        kernel,
        patterns,
        want_values,
        deadline,
        reply: Box::new(sink),
        fault: None,
    };
    if let Err(job) = batch.try_submit(job) {
        shared.stats.record_shed();
        job.reply.complete(Err(JobError::Shed));
    }
}

/// The async [`ReplySink`]: formats the response on the worker thread
/// and posts it to the connection's shard. The admission slot rides
/// along, so in-flight accounting covers the whole dispatcher queue
/// residency. Dropping the sink without completion (a worker panicked
/// past the job) produces the typed retriable error the drop contract
/// requires.
struct ReactorReply {
    inner: Option<ReplyInner>,
}

struct ReplyInner {
    shared: Arc<Shared>,
    mailbox: Mailbox<Completion>,
    token: Token,
    proto: Proto,
    received: Instant,
    cmd: &'static str,
    name: String,
    want_values: bool,
    _guard: InflightGuard,
}

impl ReplyInner {
    fn finish(self, response: Response) {
        let ReplyInner {
            shared,
            mailbox,
            token,
            proto,
            received,
            cmd,
            _guard: guard,
            ..
        } = self;
        // Release the admission slot *before* the completion is posted:
        // the instant the post lands, the client can see the response
        // and fire its next request, which must find the slot free
        // (exactly the ordering the thread-per-connection server had).
        drop(guard);
        finish(
            &shared, &mailbox, token, proto, received, cmd, response, false,
        );
    }
}

impl ReplySink for ReactorReply {
    fn complete(mut self: Box<Self>, result: Result<JobOutput, JobError>) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let response = match result {
            Ok(output) => {
                if inner.want_values {
                    Response::Trace {
                        name: inner.name.clone(),
                        values: output.values.unwrap_or_default(),
                    }
                } else {
                    Response::Eval {
                        name: inner.name.clone(),
                        transitions: output.summary.transitions,
                        sum_ff: output.summary.sum_ff,
                        max_ff: output.summary.max_ff,
                    }
                }
            }
            Err(JobError::DeadlineExceeded) => Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                message: "deadline expired in queue".to_owned(),
                retry_after_ms: None,
            },
            Err(JobError::Shed) => Response::Error {
                kind: ErrorKind::Overloaded,
                message: "dispatch queue full".to_owned(),
                retry_after_ms: Some(RETRY_AFTER_MS),
            },
        };
        inner.finish(response);
    }
}

impl Drop for ReactorReply {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            // The executing worker panicked mid-batch and the supervisor
            // is restarting it; the request itself was fine.
            inner.finish(Response::Error {
                kind: ErrorKind::Internal,
                message: "dispatcher dropped the job (worker restarted); safe to retry".to_owned(),
                retry_after_ms: Some(RETRY_AFTER_MS),
            });
        }
    }
}
