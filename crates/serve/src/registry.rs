//! Shared warm-model registry.
//!
//! Every connection resolves model operands through one process-wide
//! registry of compiled kernels. Entries are `Arc<Kernel>` so an eviction
//! never invalidates in-flight work: the dispatcher holds its own clone
//! for as long as a micro-batch references the model.
//!
//! The registry is bounded by a *byte* budget (the sum of
//! `Kernel::bytes()` over resident entries), not an entry count, because
//! kernel footprints span four orders of magnitude between a 2-input
//! gate and a wide interleaved benchmark. When an insert pushes the
//! total over budget, least-recently-used entries are evicted until it
//! fits again — except that the entry being inserted is never evicted,
//! so a single over-budget kernel still serves (the budget is a target,
//! not a hard cap; refusing the model entirely would turn every request
//! for it into a rebuild).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use charfree_engine::Kernel;

struct Entry {
    kernel: Arc<Kernel>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    resident_bytes: usize,
    clock: u64,
}

/// A byte-budgeted LRU cache of compiled kernels, shared by every
/// connection and the micro-batch dispatcher.
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry that aims to keep at most `budget_bytes` of
    /// kernel payload resident.
    pub fn new(budget_bytes: usize) -> ModelRegistry {
        ModelRegistry {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
            }),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a kernel by registry key, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<Arc<Kernel>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.kernel))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a kernel under `key`, then evicts
    /// least-recently-used peers until the byte budget holds. The entry
    /// just inserted is exempt from eviction.
    pub fn insert(&self, key: &str, kernel: Arc<Kernel>) {
        let bytes = kernel.bytes();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.insert(
            key.to_owned(),
            Entry {
                kernel,
                bytes,
                last_used: clock,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        while inner.resident_bytes > self.budget && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(victim) => {
                    if let Some(evicted) = inner.entries.remove(&victim) {
                        inner.resident_bytes -= evicted.bytes;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// Point-in-time counters: (resident entries, resident bytes, hits,
    /// misses, evictions).
    pub fn stats(&self) -> (usize, usize, u64, u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (
            inner.entries.len(),
            inner.resident_bytes,
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Reconciles the running `resident_bytes` ledger against a fresh
    /// sum over the live entries. A mismatch means bytes were
    /// double-freed or leaked across an insert/evict race.
    ///
    /// # Errors
    ///
    /// Describes the divergence (ledger vs. recomputed).
    pub fn verify_ledger(&self) -> Result<(), String> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let recomputed: usize = inner.entries.values().map(|e| e.bytes).sum();
        if recomputed == inner.resident_bytes {
            Ok(())
        } else {
            Err(format!(
                "registry ledger diverged: resident_bytes={} but entries sum to {}",
                inner.resident_bytes, recomputed
            ))
        }
    }
}

/// FNV-1a 64-bit hash (the registry's shard router; stable, std-only,
/// and good enough to spread registry keys uniformly).
fn fnv1a(key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A key-hash-sharded registry: N independent [`ModelRegistry`] shards
/// splitting one global byte budget, each with its own build lock.
///
/// Sharding removes the two global chokepoints of the single registry:
/// the registry mutex (every request's resolve path) and the build lock
/// (held across entire cold model builds — previously one slow build
/// serialized *all* cold builds). Keys route by FNV-1a hash, so a key's
/// shard is stable across restarts and across the wire.
pub struct ShardedRegistry {
    shards: Vec<ModelRegistry>,
    build_locks: Vec<Mutex<()>>,
}

impl ShardedRegistry {
    /// Default shard count.
    pub const DEFAULT_SHARDS: usize = 8;

    /// Creates `shards` shards splitting `budget_bytes` evenly (each
    /// shard gets at least one byte so oversized-entry handling keeps
    /// working).
    pub fn new(shards: usize, budget_bytes: usize) -> ShardedRegistry {
        let shards = shards.clamp(1, 256);
        let per_shard = (budget_bytes / shards).max(1);
        ShardedRegistry {
            shards: (0..shards).map(|_| ModelRegistry::new(per_shard)).collect(),
            build_locks: (0..shards).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to.
    pub fn shard_index(&self, key: &str) -> usize {
        (fnv1a(key) % self.shards.len() as u64) as usize
    }

    /// Looks up a kernel, refreshing recency in its shard.
    pub fn get(&self, key: &str) -> Option<Arc<Kernel>> {
        self.shards[self.shard_index(key)].get(key)
    }

    /// Inserts (or refreshes) a kernel in its shard, evicting that
    /// shard's LRU entries past the per-shard budget.
    pub fn insert(&self, key: &str, kernel: Arc<Kernel>) {
        self.shards[self.shard_index(key)].insert(key, kernel);
    }

    /// The build lock for `key`'s shard: cold builds serialize within a
    /// shard (so identical concurrent requests build once) but never
    /// across shards.
    pub fn build_lock(&self, key: &str) -> &Mutex<()> {
        &self.build_locks[self.shard_index(key)]
    }

    /// Counters summed across shards: (resident entries, resident
    /// bytes, hits, misses, evictions).
    pub fn stats(&self) -> (usize, usize, u64, u64, u64) {
        let mut total = (0usize, 0usize, 0u64, 0u64, 0u64);
        for shard in &self.shards {
            let (entries, bytes, hits, misses, evictions) = shard.stats();
            total.0 += entries;
            total.1 += bytes;
            total.2 += hits;
            total.3 += misses;
            total.4 += evictions;
        }
        total
    }

    /// Per-shard counters, in shard order (for metrics and tests).
    pub fn per_shard_stats(&self) -> Vec<(usize, usize, u64, u64, u64)> {
        self.shards.iter().map(ModelRegistry::stats).collect()
    }

    /// Reconciles every shard's byte ledger.
    ///
    /// # Errors
    ///
    /// The first shard divergence found, prefixed with its shard index.
    pub fn verify_ledger(&self) -> Result<(), String> {
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .verify_ledger()
                .map_err(|e| format!("shard {i}: {e}"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::ModelBuilder;
    use charfree_netlist::{benchmarks, Library, Netlist};

    fn kernel_for(bench: fn(&Library) -> Netlist) -> Arc<Kernel> {
        let library = Library::test_library();
        let model = ModelBuilder::new(&bench(&library)).build();
        Arc::new(Kernel::compile(&model))
    }

    #[test]
    fn lru_evicts_by_recency_within_byte_budget() {
        let a = kernel_for(benchmarks::decod);
        let b = kernel_for(benchmarks::cm85);
        let c = kernel_for(benchmarks::mux);
        // Budget fits roughly two of the three kernels.
        let budget = a.bytes() + b.bytes() + c.bytes() / 2;
        let reg = ModelRegistry::new(budget);
        reg.insert("a", Arc::clone(&a));
        reg.insert("b", Arc::clone(&b));
        assert!(reg.get("a").is_some(), "refresh `a` so `b` is the LRU");
        reg.insert("c", Arc::clone(&c));
        assert!(reg.get("b").is_none(), "LRU entry was evicted");
        assert!(reg.get("a").is_some());
        assert!(reg.get("c").is_some());
        let (entries, bytes, _, _, evictions) = reg.stats();
        assert_eq!(entries, 2);
        assert!(bytes <= budget);
        assert_eq!(evictions, 1);
    }

    #[test]
    fn oversized_entry_survives_alone() {
        let a = kernel_for(benchmarks::decod);
        let reg = ModelRegistry::new(1); // budget smaller than any kernel
        reg.insert("a", Arc::clone(&a));
        assert!(
            reg.get("a").is_some(),
            "an over-budget kernel is kept rather than thrashing rebuilds"
        );
        let (entries, _, _, _, _) = reg.stats();
        assert_eq!(entries, 1);
    }

    #[test]
    fn reinsert_under_same_key_replaces_without_leaking_bytes() {
        let a = kernel_for(benchmarks::decod);
        let reg = ModelRegistry::new(usize::MAX);
        reg.insert("a", Arc::clone(&a));
        reg.insert("a", Arc::clone(&a));
        let (entries, bytes, _, _, _) = reg.stats();
        assert_eq!(entries, 1);
        assert_eq!(bytes, a.bytes());
        reg.verify_ledger().expect("ledger reconciles");
    }

    #[test]
    fn concurrent_load_eval_races_never_corrupt_the_ledger_or_inflight_work() {
        use charfree_engine::TraceEngine;
        use charfree_sim::MarkovSource;

        let kernels: Vec<Arc<Kernel>> = vec![
            kernel_for(benchmarks::decod),
            kernel_for(benchmarks::cm85),
            kernel_for(benchmarks::mux),
        ];
        // Budget fits barely one kernel, so every insert storm evicts —
        // the worst case for ledger accounting.
        let budget = kernels.iter().map(|k| k.bytes()).min().unwrap_or(1);
        let reg = ModelRegistry::new(budget);
        // Offline references, computed once.
        let patterns: Vec<Vec<Vec<bool>>> = kernels
            .iter()
            .map(|k| {
                MarkovSource::new(k.num_inputs(), 0.5, 0.4, 11)
                    .expect("feasible")
                    .sequence(40)
            })
            .collect();
        let reference: Vec<u64> = kernels
            .iter()
            .zip(&patterns)
            .map(|(k, p)| TraceEngine::new(k).evaluate(p).sum_ff.to_bits())
            .collect();

        std::thread::scope(|scope| {
            for t in 0..4usize {
                let reg = &reg;
                let kernels = &kernels;
                let patterns = &patterns;
                let reference = &reference;
                scope.spawn(move || {
                    for round in 0..200usize {
                        let i = (t + round) % kernels.len();
                        let key = format!("k{i}");
                        // Model resolution under churn: get-or-insert,
                        // exactly like the server's resolve().
                        let kernel = match reg.get(&key) {
                            Some(kernel) => kernel,
                            None => {
                                let kernel = Arc::clone(&kernels[i]);
                                reg.insert(&key, Arc::clone(&kernel));
                                kernel
                            }
                        };
                        // "Mid-batch eviction": other threads' inserts
                        // will evict this key while we still hold the
                        // Arc. Evaluation must stay bit-exact.
                        let got = TraceEngine::new(&kernel).evaluate(&patterns[i]);
                        assert_eq!(got.sum_ff.to_bits(), reference[i], "kernel {i}");
                    }
                });
            }
        });

        reg.verify_ledger().expect("ledger reconciles after churn");
        let (entries, bytes, hits, misses, evictions) = reg.stats();
        assert!(entries >= 1);
        assert!(evictions > 0, "budget pressure must have evicted");
        assert!(hits + misses >= 800, "every round probed the registry");
        // The ledger never exceeds budget by more than the one exempt
        // (just-inserted) entry allows.
        let max_kernel = kernels.iter().map(|k| k.bytes()).max().unwrap_or(0);
        assert!(bytes <= budget + max_kernel, "bytes={bytes}");
    }

    /// Two keys guaranteed to live on different shards of an N-shard
    /// registry.
    fn cross_shard_keys(reg: &ShardedRegistry) -> (String, String) {
        let a = "k0".to_owned();
        let shard_a = reg.shard_index(&a);
        for i in 1..10_000 {
            let b = format!("k{i}");
            if reg.shard_index(&b) != shard_a {
                return (a, b);
            }
        }
        panic!("no cross-shard key pair found in 10k candidates");
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        let reg = ShardedRegistry::new(8, 1 << 20);
        for i in 0..1000 {
            let key = format!("model-{i}\0strict=false");
            let shard = reg.shard_index(&key);
            assert!(shard < reg.shard_count());
            assert_eq!(shard, reg.shard_index(&key), "routing must be stable");
        }
    }

    #[test]
    fn a_held_build_lock_on_one_shard_never_blocks_another() {
        use std::sync::mpsc::channel;
        use std::time::Duration;

        let reg = std::sync::Arc::new(ShardedRegistry::new(8, usize::MAX));
        let (key_a, key_b) = cross_shard_keys(&reg);
        let kernel = kernel_for(benchmarks::decod);

        // Simulate a slow cold build on key_a's shard: hold its build
        // lock for the whole test.
        let guard = reg.build_lock(&key_a).lock().expect("lock a");
        let (done_tx, done_rx) = channel();
        let reg2 = std::sync::Arc::clone(&reg);
        let kernel2 = Arc::clone(&kernel);
        let key_b2 = key_b.clone();
        let worker = std::thread::spawn(move || {
            // A cold resolve of key_b: probe, take key_b's build lock,
            // insert. Under the old global build lock this deadlocks
            // against the held guard; under sharding it must finish.
            assert!(reg2.get(&key_b2).is_none());
            let _guard_b = reg2.build_lock(&key_b2).lock().expect("lock b");
            reg2.insert(&key_b2, kernel2);
            done_tx.send(()).expect("report completion");
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("cross-shard resolve must not block on shard A's build lock");
        worker.join().expect("worker joins");
        drop(guard);
        assert!(reg.get(&key_b).is_some());
    }

    #[test]
    fn concurrent_cross_shard_churn_sums_eviction_accounting_correctly() {
        let kernels: Vec<Arc<Kernel>> = vec![
            kernel_for(benchmarks::decod),
            kernel_for(benchmarks::cm85),
            kernel_for(benchmarks::mux),
        ];
        // Per-shard budget fits barely one kernel so churn evicts in
        // every shard that sees more than one key.
        let min_bytes = kernels.iter().map(|k| k.bytes()).min().unwrap_or(1);
        let reg = ShardedRegistry::new(4, min_bytes * 4);
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let reg = &reg;
                let kernels = &kernels;
                scope.spawn(move || {
                    for round in 0..200usize {
                        let i = (t + round) % 12;
                        let key = format!("k{i}");
                        let kernel = &kernels[i % kernels.len()];
                        match reg.get(&key) {
                            Some(k) => assert_eq!(k.bytes(), kernel.bytes()),
                            None => reg.insert(&key, Arc::clone(kernel)),
                        }
                    }
                });
            }
        });
        reg.verify_ledger().expect("every shard ledger reconciles");
        let summed = reg.stats();
        let per_shard = reg.per_shard_stats();
        let fold = per_shard.iter().fold((0, 0, 0, 0, 0), |acc, s| {
            (
                acc.0 + s.0,
                acc.1 + s.1,
                acc.2 + s.2,
                acc.3 + s.3,
                acc.4 + s.4,
            )
        });
        assert_eq!(summed, fold, "global stats must equal per-shard sum");
        assert!(summed.4 > 0, "per-shard budget pressure must have evicted");
        assert!(
            per_shard.iter().filter(|s| s.2 + s.3 > 0).count() > 1,
            "keys must actually spread across shards"
        );
    }
}
