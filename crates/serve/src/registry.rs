//! Shared warm-model registry.
//!
//! Every connection resolves model operands through one process-wide
//! registry of compiled kernels. Entries are `Arc<Kernel>` so an eviction
//! never invalidates in-flight work: the dispatcher holds its own clone
//! for as long as a micro-batch references the model.
//!
//! The registry is bounded by a *byte* budget (the sum of
//! `Kernel::bytes()` over resident entries), not an entry count, because
//! kernel footprints span four orders of magnitude between a 2-input
//! gate and a wide interleaved benchmark. When an insert pushes the
//! total over budget, least-recently-used entries are evicted until it
//! fits again — except that the entry being inserted is never evicted,
//! so a single over-budget kernel still serves (the budget is a target,
//! not a hard cap; refusing the model entirely would turn every request
//! for it into a rebuild).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use charfree_engine::Kernel;

struct Entry {
    kernel: Arc<Kernel>,
    bytes: usize,
    last_used: u64,
}

struct Inner {
    entries: HashMap<String, Entry>,
    resident_bytes: usize,
    clock: u64,
}

/// A byte-budgeted LRU cache of compiled kernels, shared by every
/// connection and the micro-batch dispatcher.
pub struct ModelRegistry {
    inner: Mutex<Inner>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry that aims to keep at most `budget_bytes` of
    /// kernel payload resident.
    pub fn new(budget_bytes: usize) -> ModelRegistry {
        ModelRegistry {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                resident_bytes: 0,
                clock: 0,
            }),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a kernel by registry key, refreshing its recency.
    pub fn get(&self, key: &str) -> Option<Arc<Kernel>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(key) {
            Some(entry) => {
                entry.last_used = clock;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.kernel))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a kernel under `key`, then evicts
    /// least-recently-used peers until the byte budget holds. The entry
    /// just inserted is exempt from eviction.
    pub fn insert(&self, key: &str, kernel: Arc<Kernel>) {
        let bytes = kernel.bytes();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.insert(
            key.to_owned(),
            Entry {
                kernel,
                bytes,
                last_used: clock,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        while inner.resident_bytes > self.budget && inner.entries.len() > 1 {
            let victim = inner
                .entries
                .iter()
                .filter(|(k, _)| k.as_str() != key)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(victim) => {
                    if let Some(evicted) = inner.entries.remove(&victim) {
                        inner.resident_bytes -= evicted.bytes;
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// Point-in-time counters: (resident entries, resident bytes, hits,
    /// misses, evictions).
    pub fn stats(&self) -> (usize, usize, u64, u64, u64) {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (
            inner.entries.len(),
            inner.resident_bytes,
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::ModelBuilder;
    use charfree_netlist::{benchmarks, Library, Netlist};

    fn kernel_for(bench: fn(&Library) -> Netlist) -> Arc<Kernel> {
        let library = Library::test_library();
        let model = ModelBuilder::new(&bench(&library)).build();
        Arc::new(Kernel::compile(&model))
    }

    #[test]
    fn lru_evicts_by_recency_within_byte_budget() {
        let a = kernel_for(benchmarks::decod);
        let b = kernel_for(benchmarks::cm85);
        let c = kernel_for(benchmarks::mux);
        // Budget fits roughly two of the three kernels.
        let budget = a.bytes() + b.bytes() + c.bytes() / 2;
        let reg = ModelRegistry::new(budget);
        reg.insert("a", Arc::clone(&a));
        reg.insert("b", Arc::clone(&b));
        assert!(reg.get("a").is_some(), "refresh `a` so `b` is the LRU");
        reg.insert("c", Arc::clone(&c));
        assert!(reg.get("b").is_none(), "LRU entry was evicted");
        assert!(reg.get("a").is_some());
        assert!(reg.get("c").is_some());
        let (entries, bytes, _, _, evictions) = reg.stats();
        assert_eq!(entries, 2);
        assert!(bytes <= budget);
        assert_eq!(evictions, 1);
    }

    #[test]
    fn oversized_entry_survives_alone() {
        let a = kernel_for(benchmarks::decod);
        let reg = ModelRegistry::new(1); // budget smaller than any kernel
        reg.insert("a", Arc::clone(&a));
        assert!(
            reg.get("a").is_some(),
            "an over-budget kernel is kept rather than thrashing rebuilds"
        );
        let (entries, _, _, _, _) = reg.stats();
        assert_eq!(entries, 1);
    }

    #[test]
    fn reinsert_under_same_key_replaces_without_leaking_bytes() {
        let a = kernel_for(benchmarks::decod);
        let reg = ModelRegistry::new(usize::MAX);
        reg.insert("a", Arc::clone(&a));
        reg.insert("a", Arc::clone(&a));
        let (entries, bytes, _, _, _) = reg.stats();
        assert_eq!(entries, 1);
        assert_eq!(bytes, a.bytes());
    }
}
