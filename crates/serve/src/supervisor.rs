//! Supervision primitives: the per-model circuit breaker.
//!
//! Model builds are the server's only expensive, fallible cold path. A
//! model whose build keeps failing (bad netlist, impossible budget)
//! would otherwise burn a build-lock slot on every request that names
//! it — queueing doomed work behind the global build lock. The breaker
//! watches consecutive build failures per registry key and, after K of
//! them, trips: requests for that key are refused immediately with a
//! typed `model-unavailable` error carrying `retry_after_ms`, while
//! every other model keeps building normally.
//!
//! State machine per key:
//!
//! ```text
//!            K consecutive failures
//!   Closed ─────────────────────────▶ Open(until)
//!     ▲                                   │ timer expires
//!     │ probe succeeds                    ▼
//!     └───────────────────────────── HalfOpen ──▶ Open (probe fails,
//!                                     (one probe       window doubles,
//!                                      admitted)       capped)
//! ```
//!
//! The open window grows exponentially per re-trip (base × 2^n, capped)
//! so a persistently broken model converges to cheap, rare probes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive build failures before the breaker trips (K).
    pub failure_threshold: u32,
    /// Initial open window after a trip.
    pub open_base: Duration,
    /// Ceiling for the exponentially growing open window.
    pub open_cap: Duration,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_base: Duration::from_millis(500),
            open_cap: Duration::from_secs(30),
        }
    }
}

/// Verdict of [`CircuitBreaker::admit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerDecision {
    /// Proceed with the build.
    Allow,
    /// The circuit is open; retry after the given delay.
    Deny {
        /// Milliseconds until the breaker is worth re-probing.
        retry_after_ms: u64,
    },
}

#[derive(Debug, Clone, Copy)]
enum State {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

#[derive(Debug)]
struct Entry {
    state: State,
    consecutive_failures: u32,
    /// How many times this key has tripped (drives the backoff power).
    opens: u32,
}

/// Per-model circuit breaker keyed by registry key.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    entries: Mutex<HashMap<String, Entry>>,
    trips: AtomicU64,
}

impl CircuitBreaker {
    /// A breaker with all circuits closed.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            entries: Mutex::new(HashMap::new()),
            trips: AtomicU64::new(0),
        }
    }

    fn open_window(&self, opens: u32) -> Duration {
        let factor = 1u32 << opens.saturating_sub(1).min(16);
        (self.config.open_base * factor).min(self.config.open_cap)
    }

    /// Should a build for `key` proceed? An expired open window admits
    /// exactly one probe (half-open); concurrent requests during the
    /// probe are denied so a broken model costs one build at a time.
    pub fn admit(&self, key: &str) -> BreakerDecision {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let Some(entry) = entries.get_mut(key) else {
            return BreakerDecision::Allow;
        };
        match entry.state {
            State::Closed => BreakerDecision::Allow,
            State::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    entry.state = State::HalfOpen;
                    BreakerDecision::Allow
                } else {
                    BreakerDecision::Deny {
                        retry_after_ms: (until - now).as_millis().max(1) as u64,
                    }
                }
            }
            State::HalfOpen => BreakerDecision::Deny {
                retry_after_ms: self.open_window(entry.opens).as_millis().max(1) as u64,
            },
        }
    }

    /// A build for `key` succeeded: close the circuit and forget the
    /// failure history.
    pub fn record_success(&self, key: &str) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.remove(key);
    }

    /// A build for `key` failed. In `Closed`, counts toward the trip
    /// threshold; in `HalfOpen`, re-opens with a doubled (capped)
    /// window.
    pub fn record_failure(&self, key: &str) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        let entry = entries.entry(key.to_owned()).or_insert(Entry {
            state: State::Closed,
            consecutive_failures: 0,
            opens: 0,
        });
        match entry.state {
            State::Closed => {
                entry.consecutive_failures += 1;
                if entry.consecutive_failures >= self.config.failure_threshold {
                    entry.opens += 1;
                    entry.state = State::Open {
                        until: Instant::now() + self.open_window(entry.opens),
                    };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                }
            }
            State::HalfOpen | State::Open { .. } => {
                entry.opens = entry.opens.saturating_add(1);
                entry.state = State::Open {
                    until: Instant::now() + self.open_window(entry.opens),
                };
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total trips (Closed→Open and HalfOpen→Open transitions).
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Keys whose circuit is currently open or half-open.
    pub fn open_circuits(&self) -> usize {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .values()
            .filter(|e| !matches!(e.state, State::Closed))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_base: Duration::from_millis(30),
            open_cap: Duration::from_millis(120),
        }
    }

    #[test]
    fn trips_after_k_consecutive_failures_then_half_opens() {
        let breaker = CircuitBreaker::new(fast_config());
        assert_eq!(breaker.admit("m"), BreakerDecision::Allow);
        breaker.record_failure("m");
        breaker.record_failure("m");
        assert_eq!(breaker.admit("m"), BreakerDecision::Allow, "below K");
        breaker.record_failure("m");
        assert!(matches!(breaker.admit("m"), BreakerDecision::Deny { .. }));
        assert_eq!(breaker.trips(), 1);
        assert_eq!(breaker.open_circuits(), 1);

        // Timer expiry admits exactly one probe; a second concurrent
        // request is denied while the probe is in flight.
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(breaker.admit("m"), BreakerDecision::Allow, "probe");
        assert!(matches!(breaker.admit("m"), BreakerDecision::Deny { .. }));

        // Probe success closes the circuit for good.
        breaker.record_success("m");
        assert_eq!(breaker.admit("m"), BreakerDecision::Allow);
        assert_eq!(breaker.open_circuits(), 0);
    }

    #[test]
    fn failed_probe_reopens_with_doubled_capped_window() {
        let breaker = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            breaker.record_failure("m");
        }
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(breaker.admit("m"), BreakerDecision::Allow, "probe");
        breaker.record_failure("m");
        let BreakerDecision::Deny { retry_after_ms } = breaker.admit("m") else {
            panic!("must reopen after failed probe");
        };
        // Second open: 2 × 30ms = 60ms window (minus elapsed time).
        assert!(retry_after_ms <= 60, "window doubles: {retry_after_ms}");
        assert_eq!(breaker.trips(), 2);
        // Repeated failed probes cap at open_cap.
        for _ in 0..8 {
            std::thread::sleep(Duration::from_millis(2));
            if matches!(breaker.admit("m"), BreakerDecision::Allow) {
                breaker.record_failure("m");
            }
        }
        let BreakerDecision::Deny { retry_after_ms } = breaker.admit("m") else {
            // The window may have just expired; trip it again and check.
            breaker.record_failure("m");
            let BreakerDecision::Deny { retry_after_ms } = breaker.admit("m") else {
                panic!("must be open");
            };
            assert!(retry_after_ms <= 120);
            return;
        };
        assert!(retry_after_ms <= 120, "capped: {retry_after_ms}");
    }

    #[test]
    fn successes_reset_the_consecutive_counter() {
        let breaker = CircuitBreaker::new(fast_config());
        for _ in 0..100 {
            breaker.record_failure("m");
            breaker.record_failure("m");
            breaker.record_success("m");
        }
        assert_eq!(breaker.admit("m"), BreakerDecision::Allow);
        assert_eq!(breaker.trips(), 0);
    }

    #[test]
    fn keys_are_independent() {
        let breaker = CircuitBreaker::new(fast_config());
        for _ in 0..3 {
            breaker.record_failure("bad");
        }
        assert!(matches!(breaker.admit("bad"), BreakerDecision::Deny { .. }));
        assert_eq!(breaker.admit("good"), BreakerDecision::Allow);
    }
}
