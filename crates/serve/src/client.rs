//! Blocking client for the wire protocol.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{Request, Response};

/// How long a client waits for one response line before giving up (a
/// cold build of a large benchmark is the slow path this must cover).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(600);

/// A blocking connection to a `charfree serve` instance; requests are
/// answered in order on one socket.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`).
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O failures, timeouts, and malformed response lines (reported as
    /// `InvalidData`).
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse_line(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}
