//! Blocking client for the wire protocols (JSON lines or binary
//! frames), with optional retry/backoff.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{Request, Response};
use crate::wire;

/// How long a client waits for one response line before giving up (a
/// cold build of a large benchmark is the slow path this must cover).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(600);

/// Which wire encoding a [`Client`] speaks. Both carry the same
/// requests and responses with bit-identical f64 results; binary skips
/// JSON formatting/parsing and ships pattern blocks and trace values as
/// raw little-endian words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Newline-delimited JSON requests and responses.
    Json,
    /// Length-prefixed binary frames (magic `CFB1`, negotiated version).
    Binary,
}

impl Proto {
    /// Parses a `--proto` flag value.
    ///
    /// # Errors
    ///
    /// Anything other than `json` or `binary`.
    pub fn parse(s: &str) -> Result<Proto, String> {
        match s {
            "json" => Ok(Proto::Json),
            "binary" => Ok(Proto::Binary),
            other => Err(format!("unknown protocol `{other}` (expected json|binary)")),
        }
    }

    /// The flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Proto::Json => "json",
            Proto::Binary => "binary",
        }
    }
}

/// Retry behavior for [`Client::request_with_retries`].
///
/// A request is retried when the server sheds it with a retriable typed
/// error (`overloaded`, `draining`, `model-unavailable` — see
/// [`crate::ErrorKind::retriable`]), when any error response carries a
/// `retry_after_ms` hint, or when the transport itself drops
/// mid-request (the client reconnects first). Definitive failures
/// (`bad-request`, `build-failed`, …) are never retried.
///
/// The wait before attempt *n* is `max(server hint, base·2ⁿ)` capped at
/// `cap`, with deterministic "equal jitter" (half fixed, half hashed
/// from `seed` and the attempt number) so a thundering herd of shed
/// clients decorrelates without a global RNG.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = current single-shot
    /// behavior).
    pub retries: u32,
    /// First backoff step.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Jitter seed; vary per client to decorrelate retry storms.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The jittered wait before retry `attempt` (0-based), honoring the
    /// server's `retry_after_ms` hint as a floor.
    fn backoff(&self, attempt: u32, hint_ms: Option<u64>) -> Duration {
        let factor = 1u32 << attempt.min(16);
        let exp = (self.base * factor).min(self.cap);
        let floor = Duration::from_millis(hint_ms.unwrap_or(0));
        let wait = exp.max(floor);
        // Equal jitter: half the wait is fixed, half is a deterministic
        // hash of (seed, attempt).
        let half_ms = wait.as_millis().max(2) as u64 / 2;
        let jitter = charfree_pipeline::faultio::splitmix64(self.seed ^ (u64::from(attempt) << 32))
            % (half_ms + 1);
        Duration::from_millis(half_ms + jitter)
    }
}

/// Is this transport error worth a reconnect-and-retry? Connection
/// drops mid-request (a draining or restarting server) qualify; local
/// configuration errors and malformed responses do not.
fn reconnectable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::UnexpectedEof
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::ConnectionRefused
    )
}

/// A blocking connection to a `charfree serve` instance; requests are
/// answered in order on one socket.
pub struct Client {
    addr: String,
    proto: Proto,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7878`) speaking JSON lines.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_with(addr, Proto::Json)
    }

    /// Connects speaking the given protocol. For [`Proto::Binary`] this
    /// performs the hello/ack version negotiation before returning.
    ///
    /// # Errors
    ///
    /// Connect/configuration failures, and (binary) a rejected or
    /// malformed hello ack (`InvalidData`).
    pub fn connect_with(addr: &str, proto: Proto) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(RESPONSE_TIMEOUT))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut client = Client {
            addr: addr.to_owned(),
            proto,
            reader: BufReader::new(stream),
            writer,
        };
        if proto == Proto::Binary {
            client
                .writer
                .write_all(&wire::encode_hello(wire::VERSION, wire::VERSION))?;
            client.writer.flush()?;
            let mut ack = [0u8; 6];
            client.reader.read_exact(&mut ack)?;
            let chosen = wire::parse_hello_ack(&ack)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if chosen != wire::VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("server chose unsupported protocol version {chosen}"),
                ));
            }
        }
        Ok(client)
    }

    /// The negotiated protocol.
    pub fn proto(&self) -> Proto {
        self.proto
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// I/O failures, timeouts, and malformed responses (reported as
    /// `InvalidData`).
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        match self.proto {
            Proto::Json => self.request_json(request),
            Proto::Binary => self.request_binary(request),
        }
    }

    fn request_json(&mut self, request: &Request) -> io::Result<Response> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::parse_line(line.trim_end())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    fn request_binary(&mut self, request: &Request) -> io::Result<Response> {
        let mut frame = Vec::new();
        wire::encode_request(request, &mut frame);
        self.writer.write_all(&frame)?;
        self.writer.flush()?;
        let mut prefix = [0u8; 4];
        self.reader.read_exact(&mut prefix)?;
        let len = u32::from_le_bytes(prefix) as usize;
        if len == 0 || len > wire::MAX_FRAME_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid response frame length {len}"),
            ));
        }
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body)?;
        wire::decode_response(body[0], &body[1..])
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends one request, retrying retriable shed responses and dropped
    /// connections per `policy`. With `policy.retries == 0` this is
    /// exactly [`Client::request`].
    ///
    /// # Errors
    ///
    /// The final attempt's failure, after the retry budget is spent.
    pub fn request_with_retries(
        &mut self,
        request: &Request,
        policy: &RetryPolicy,
    ) -> io::Result<Response> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.request(request);
            let hint = match &outcome {
                Ok(Response::Error {
                    kind,
                    retry_after_ms,
                    ..
                }) if kind.retriable() || retry_after_ms.is_some() => Some(*retry_after_ms),
                Err(e) if reconnectable(e) => Some(None),
                _ => return outcome,
            };
            if attempt >= policy.retries {
                return outcome;
            }
            let hint = hint.unwrap_or(None);
            std::thread::sleep(policy.backoff(attempt, hint));
            attempt += 1;
            if outcome.is_err() {
                // The transport died; rebuild it (same protocol) before
                // retrying. If the server is still down, keep burning the
                // retry budget on the connect error.
                match Client::connect_with(&self.addr, self.proto) {
                    Ok(fresh) => *self = fresh,
                    Err(_) => continue,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_honors_the_server_hint() {
        let policy = RetryPolicy {
            retries: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            seed: 7,
        };
        // Deterministic per (seed, attempt).
        assert_eq!(policy.backoff(0, None), policy.backoff(0, None));
        // Grows, then caps: every wait is within [half, full] of the
        // capped exponential.
        for attempt in 0..6 {
            let wait = policy.backoff(attempt, None);
            let exp = (policy.base * (1 << attempt)).min(policy.cap);
            assert!(wait <= exp, "attempt {attempt}: {wait:?} > {exp:?}");
            assert!(
                wait >= exp / 2 - Duration::from_millis(1),
                "attempt {attempt}: {wait:?} below half of {exp:?}"
            );
        }
        // A server hint above the exponential floors the wait.
        let hinted = policy.backoff(0, Some(500));
        assert!(hinted >= Duration::from_millis(250), "{hinted:?}");
    }

    #[test]
    fn reconnectable_errors_are_the_transport_drops() {
        for kind in [
            io::ErrorKind::UnexpectedEof,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::BrokenPipe,
        ] {
            assert!(reconnectable(&io::Error::new(kind, "x")), "{kind:?}");
        }
        assert!(!reconnectable(&io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed response"
        )));
        assert_eq!(Proto::parse("binary"), Ok(Proto::Binary));
        assert!(Proto::parse("grpc").is_err());
    }
}
