//! Cross-connection micro-batching.
//!
//! Evaluation requests from *different* connections are coalesced into
//! shared 64-lane [`PatternBlock`]s before hitting the kernel. A
//! coordinator thread collects jobs for up to `batch_window`, groups
//! them by kernel identity, and hands each group to a fixed worker pool;
//! the worker packs every group member's transitions into one block,
//! evaluates it once, and scatters the per-transition values back to
//! each requester.
//!
//! # The bit-identical-batching invariant
//!
//! Coalescing must be *unobservable* in results. Two properties make
//! that hold:
//!
//! 1. [`Kernel::eval_batch_into`] computes each lane's value from that
//!    lane's bits alone — a transition's value does not depend on which
//!    lanes surround it, so packing requests together (in any order, at
//!    any offset) yields the same per-transition values as packing each
//!    request alone.
//! 2. The per-request summary is reduced with
//!    [`TraceSummary::from_values`] over [`DEFAULT_CHUNK`]-sized runs —
//!    the exact association [`TraceEngine`](charfree_engine::TraceEngine)
//!    uses offline — so floating-point summation order matches the
//!    single-request path bit for bit.
//!
//! Shedding happens at submit time: the job queue is a bounded
//! `sync_channel` and [`BatchHandle::try_submit`] hands the job back on
//! a full queue instead of blocking the connection thread.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use charfree_engine::{Kernel, PatternBlock, TraceSummary, DEFAULT_CHUNK};

use crate::stats::ServerStats;

/// Cap on how many jobs one window may coalesce, bounding the memory a
/// single micro-batch can pin.
const MAX_BATCH_JOBS: usize = 256;

/// First restart delay after a worker panic.
const RESTART_BACKOFF_BASE: Duration = Duration::from_millis(5);

/// Ceiling for the exponentially growing restart delay.
const RESTART_BACKOFF_CAP: Duration = Duration::from_millis(250);

/// An injected failure a job carries for supervision tests and the
/// conform `chaos` campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFault {
    /// The executing worker panics before evaluating the batch.
    PanicInWorker,
}

/// Where a job's result goes.
///
/// The blocking front end waits on a channel ([`ChannelReply`]); the
/// reactor front end completes asynchronously (format the response,
/// post it to the connection's shard, wake the reactor) without any
/// thread parked per in-flight request.
///
/// **Drop contract:** a sink dropped without [`complete`](ReplySink::complete)
/// being called means the executing worker panicked and unwound past the
/// job. Implementations must convert that drop into a typed, retriable
/// error for the waiting client — `ChannelReply` does it by
/// disconnecting its channel; an async sink must do it in `Drop`.
pub trait ReplySink: Send {
    /// Consumes the sink with the job's outcome. Called at most once.
    fn complete(self: Box<Self>, result: Result<JobOutput, JobError>);
}

/// The channel-backed [`ReplySink`] used by blocking callers: completion
/// sends on the capacity-1 channel; an abandoning drop disconnects it.
pub struct ChannelReply(pub SyncSender<Result<JobOutput, JobError>>);

impl ReplySink for ChannelReply {
    fn complete(self: Box<Self>, result: Result<JobOutput, JobError>) {
        let _ = self.0.send(result);
    }
}

/// One evaluation request, ready to batch.
pub struct Job {
    /// Kernel to evaluate on (an `Arc` clone pins it across evictions).
    pub kernel: Arc<Kernel>,
    /// The pattern window; `len - 1` transitions are evaluated.
    pub patterns: Vec<Vec<bool>>,
    /// `true` for `trace` (per-transition values shipped back), `false`
    /// for `eval` (summary only).
    pub want_values: bool,
    /// Absolute deadline; expired jobs are shed at execution time.
    pub deadline: Option<Instant>,
    /// Where the result goes (see the [`ReplySink`] drop contract).
    pub reply: Box<dyn ReplySink>,
    /// Injected fault for supervision testing; `None` in production.
    pub fault: Option<JobFault>,
}

/// A completed job.
#[derive(Debug)]
pub struct JobOutput {
    /// Chunk-reduced summary, bit-identical to the offline path.
    pub summary: TraceSummary,
    /// Per-transition values when the job asked for them.
    pub values: Option<Vec<f64>>,
}

/// Why a job was not evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// The deadline expired before a worker reached the job.
    DeadlineExceeded,
    /// The submit queue was full; the job was shed without evaluating.
    /// (Produced by callers that get the job handed back from
    /// [`BatchHandle::try_submit`] and complete its sink themselves.)
    Shed,
}

struct MicroBatch {
    kernel: Arc<Kernel>,
    jobs: Vec<Job>,
}

/// Cloneable submission side of the dispatcher, held by connection
/// threads. All handles must drop before
/// [`Dispatcher::shutdown`] can finish draining.
#[derive(Clone)]
pub struct BatchHandle {
    tx: SyncSender<Job>,
}

impl BatchHandle {
    /// Enqueues a job without blocking. On a full (or closed) queue the
    /// job is handed back so the caller can shed it with a typed
    /// `overloaded` response.
    pub fn try_submit(&self, job: Job) -> Result<(), Job> {
        self.tx.try_send(job).map_err(|e| match e {
            TrySendError::Full(job) | TrySendError::Disconnected(job) => job,
        })
    }
}

/// The micro-batching dispatcher: one coordinator thread + a fixed
/// worker pool.
pub struct Dispatcher {
    tx: Option<SyncSender<Job>>,
    coordinator: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Dispatcher {
    /// Starts the dispatcher: jobs submitted through [`BatchHandle`]s
    /// are collected for up to `window` (zero disables coalescing
    /// delay), grouped by kernel, and executed on `workers` threads.
    /// The submit queue holds at most `queue_cap` jobs; beyond that,
    /// [`BatchHandle::try_submit`] sheds.
    pub fn start(
        workers: usize,
        window: Duration,
        queue_cap: usize,
        stats: Arc<ServerStats>,
    ) -> Dispatcher {
        let workers = workers.max(1);
        let (tx, rx) = sync_channel::<Job>(queue_cap.max(1));
        let (batch_tx, batch_rx) = sync_channel::<MicroBatch>(workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let coordinator = thread::Builder::new()
            .name("charfree-batch-coord".to_owned())
            .spawn(move || coordinate(rx, batch_tx, window))
            .expect("spawn coordinator thread");

        let pool = (0..workers)
            .map(|i| {
                let batch_rx = Arc::clone(&batch_rx);
                let stats = Arc::clone(&stats);
                thread::Builder::new()
                    .name(format!("charfree-batch-worker-{i}"))
                    .spawn(move || work(&batch_rx, &stats))
                    .expect("spawn worker thread")
            })
            .collect();

        Dispatcher {
            tx: Some(tx),
            coordinator: Some(coordinator),
            workers: pool,
        }
    }

    /// A new submission handle for a connection thread.
    pub fn handle(&self) -> BatchHandle {
        BatchHandle {
            tx: self
                .tx
                .as_ref()
                .expect("dispatcher already shut down")
                .clone(),
        }
    }

    /// Graceful drain: closes the submit queue, lets the coordinator
    /// flush every job already accepted, and joins all threads. Every
    /// [`BatchHandle`] must already be dropped, otherwise the queue
    /// stays open and this blocks.
    pub fn shutdown(mut self) {
        self.tx.take();
        if let Some(coordinator) = self.coordinator.take() {
            let _ = coordinator.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn coordinate(rx: Receiver<Job>, batch_tx: SyncSender<MicroBatch>, window: Duration) {
    loop {
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return, // every handle dropped and the queue is empty
        };
        let mut jobs = vec![first];
        if !window.is_zero() {
            let wake = Instant::now() + window;
            // The full window is a *cap*, not a wait: once the submit
            // queue has stayed empty for a short grace period the window
            // closes early. Closed-loop clients cannot enqueue more work
            // until their in-flight job completes, so waiting out the
            // whole window after the queue runs dry is pure dead time.
            let grace = (window / 16).max(Duration::from_micros(10));
            while jobs.len() < MAX_BATCH_JOBS {
                let now = Instant::now();
                if now >= wake {
                    break;
                }
                match rx.recv_timeout(grace.min(wake - now)) {
                    Ok(job) => jobs.push(job),
                    // On disconnect the flush below still runs; the next
                    // outer recv() observes the closed queue and returns.
                    Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        // Group by kernel identity, preserving first-seen order so the
        // flush is deterministic.
        let mut order: Vec<*const Kernel> = Vec::new();
        let mut groups: HashMap<*const Kernel, MicroBatch> = HashMap::new();
        for job in jobs {
            let key = Arc::as_ptr(&job.kernel);
            let entry = groups.entry(key).or_insert_with(|| {
                order.push(key);
                MicroBatch {
                    kernel: Arc::clone(&job.kernel),
                    jobs: Vec::new(),
                }
            });
            entry.jobs.push(job);
        }
        for key in order {
            if let Some(batch) = groups.remove(&key) {
                if batch_tx.send(batch).is_err() {
                    return; // workers are gone; nothing left to flush to
                }
            }
        }
    }
}

fn work(batch_rx: &Mutex<Receiver<MicroBatch>>, stats: &ServerStats) {
    let mut consecutive_panics: u32 = 0;
    loop {
        // Hold the lock only for the receive so idle workers queue up
        // behind it rather than serializing evaluation.
        let batch = {
            let rx = batch_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        let MicroBatch { kernel, jobs } = match batch {
            Ok(batch) => batch,
            Err(_) => return, // coordinator exited
        };
        // Supervision: a panicking batch must not take the worker down.
        // The panic unwinds past the jobs' reply senders, so every
        // waiting connection observes a disconnected channel and
        // responds with a typed, retriable error — then the worker
        // restarts after a capped exponential backoff.
        match catch_unwind(AssertUnwindSafe(|| execute(&kernel, jobs, stats))) {
            Ok(()) => consecutive_panics = 0,
            Err(_) => {
                stats.record_worker_panic();
                let factor = 1u32 << consecutive_panics.min(16);
                thread::sleep((RESTART_BACKOFF_BASE * factor).min(RESTART_BACKOFF_CAP));
                consecutive_panics = consecutive_panics.saturating_add(1);
            }
        }
    }
}

fn execute(kernel: &Kernel, jobs: Vec<Job>, stats: &ServerStats) {
    let now = Instant::now();
    let mut live = Vec::with_capacity(jobs.len());
    for job in jobs {
        match job.deadline {
            Some(deadline) if deadline <= now => {
                job.reply.complete(Err(JobError::DeadlineExceeded));
            }
            _ => live.push(job),
        }
    }
    if live.is_empty() {
        return;
    }
    if live
        .iter()
        .any(|job| job.fault == Some(JobFault::PanicInWorker))
    {
        panic!("injected worker fault (JobFault::PanicInWorker)");
    }

    let mut block = PatternBlock::new(kernel.num_vars() as usize);
    let mut spans = Vec::with_capacity(live.len());
    for job in &live {
        let offset = block.len();
        block.extend_from_patterns(kernel, &job.patterns);
        spans.push((offset, block.len() - offset));
    }

    let mut values = vec![0.0f64; block.len()];
    if !block.is_empty() {
        kernel.eval_batch_into(&block, &mut values);
        let groups = block.len().div_ceil(64);
        stats.record_batch(live.len(), block.len() / groups);
    } else {
        stats.record_batch(live.len(), 1);
    }

    for (job, (offset, len)) in live.into_iter().zip(spans) {
        let slice = &values[offset..offset + len];
        // DEFAULT_CHUNK association == the offline TraceEngine reduction,
        // which is what keeps batched summaries bit-identical.
        let summary = TraceSummary::from_values(slice, DEFAULT_CHUNK);
        let output = JobOutput {
            summary,
            values: job.want_values.then(|| slice.to_vec()),
        };
        job.reply.complete(Ok(output));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_core::ModelBuilder;
    use charfree_engine::TraceEngine;
    use charfree_netlist::{benchmarks, Library, Netlist};
    use charfree_sim::MarkovSource;

    fn kernel_for(bench: fn(&Library) -> Netlist) -> Arc<Kernel> {
        let library = Library::test_library();
        let model = ModelBuilder::new(&bench(&library)).build();
        Arc::new(Kernel::compile(&model))
    }

    fn patterns_for(kernel: &Kernel, vectors: usize, seed: u64) -> Vec<Vec<bool>> {
        MarkovSource::new(kernel.num_inputs(), 0.5, 0.4, seed)
            .expect("feasible source")
            .sequence(vectors)
    }

    #[test]
    fn coalesced_jobs_match_offline_evaluation_bit_for_bit() {
        let decod = kernel_for(benchmarks::decod);
        let cm85 = kernel_for(benchmarks::cm85);
        let stats = Arc::new(ServerStats::new());
        let dispatcher = Dispatcher::start(2, Duration::from_millis(40), 64, Arc::clone(&stats));
        let handle = dispatcher.handle();

        // Mixed workload: three requests on one kernel (lengths chosen to
        // land mid-64-lane-group) plus one on another, submitted together
        // so the window coalesces them.
        let cases: Vec<(Arc<Kernel>, usize, u64, bool)> = vec![
            (Arc::clone(&decod), 130, 1, false),
            (Arc::clone(&decod), 7, 2, true),
            (Arc::clone(&decod), 4099, 3, false),
            (Arc::clone(&cm85), 65, 4, true),
        ];
        let mut replies = Vec::new();
        for (kernel, vectors, seed, want_values) in &cases {
            let (reply_tx, reply_rx) = sync_channel(1);
            let job = Job {
                kernel: Arc::clone(kernel),
                patterns: patterns_for(kernel, *vectors, *seed),
                want_values: *want_values,
                deadline: None,
                reply: Box::new(ChannelReply(reply_tx)),
                fault: None,
            };
            assert!(handle.try_submit(job).is_ok());
            replies.push(reply_rx);
        }
        for ((kernel, vectors, seed, want_values), reply) in cases.iter().zip(replies) {
            let got = reply
                .recv()
                .expect("worker replies")
                .expect("job evaluates");
            let patterns = patterns_for(kernel, *vectors, *seed);
            let offline = TraceEngine::new(kernel).jobs(2).evaluate(&patterns);
            assert_eq!(got.summary.transitions, offline.transitions);
            assert_eq!(got.summary.sum_ff.to_bits(), offline.sum_ff.to_bits());
            assert_eq!(got.summary.max_ff.to_bits(), offline.max_ff.to_bits());
            match (want_values, got.values) {
                (true, Some(values)) => {
                    let offline_values = TraceEngine::new(kernel).jobs(2).trace(&patterns);
                    assert_eq!(values.len(), offline_values.len());
                    for (a, b) in values.iter().zip(&offline_values) {
                        assert_eq!(a.to_bits(), b.to_bits());
                    }
                }
                (false, None) => {}
                (want, got) => panic!("want_values={want} but got values={}", got.is_some()),
            }
        }
        drop(handle);
        dispatcher.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_with_a_typed_error() {
        let decod = kernel_for(benchmarks::decod);
        let stats = Arc::new(ServerStats::new());
        let dispatcher = Dispatcher::start(1, Duration::from_millis(5), 8, Arc::clone(&stats));
        let handle = dispatcher.handle();
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job {
            kernel: Arc::clone(&decod),
            patterns: patterns_for(&decod, 100, 9),
            want_values: false,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            reply: Box::new(ChannelReply(reply_tx)),
            fault: None,
        };
        assert!(handle.try_submit(job).is_ok());
        match reply_rx.recv().expect("reply arrives") {
            Err(JobError::DeadlineExceeded) => {}
            other => panic!("expired job must shed with a deadline error, got {other:?}"),
        }
        drop(handle);
        dispatcher.shutdown();
    }

    #[test]
    fn full_queue_hands_the_job_back() {
        let decod = kernel_for(benchmarks::decod);
        let stats = Arc::new(ServerStats::new());
        // Stall the single worker behind a long window so the queue
        // backs up deterministically.
        let dispatcher = Dispatcher::start(1, Duration::from_secs(5), 1, stats);
        let handle = dispatcher.handle();
        let mut shed = 0;
        let mut kept_replies = Vec::new();
        for seed in 0..8 {
            let (reply_tx, reply_rx) = sync_channel(1);
            let job = Job {
                kernel: Arc::clone(&decod),
                patterns: patterns_for(&decod, 10, seed),
                want_values: false,
                deadline: None,
                reply: Box::new(ChannelReply(reply_tx)),
                fault: None,
            };
            match handle.try_submit(job) {
                Ok(()) => kept_replies.push(reply_rx),
                Err(_returned_job) => shed += 1,
            }
        }
        assert!(shed > 0, "a 1-deep queue must shed an 8-burst");
        // Accepted jobs still complete once the window elapses.
        for reply in kept_replies {
            assert!(reply
                .recv_timeout(Duration::from_secs(30))
                .expect("accepted job completes")
                .is_ok());
        }
        drop(handle);
        dispatcher.shutdown();
    }

    #[test]
    fn worker_panics_are_supervised_and_later_jobs_still_complete() {
        let decod = kernel_for(benchmarks::decod);
        let stats = Arc::new(ServerStats::new());
        // A single worker: if the panic killed it for good, the healthy
        // jobs below would hang instead of completing.
        let dispatcher = Dispatcher::start(1, Duration::ZERO, 16, Arc::clone(&stats));
        let handle = dispatcher.handle();

        for round in 0..3u64 {
            // A poisoned job: its reply channel must disconnect (typed
            // error at the connection layer), not hang.
            let (poison_tx, poison_rx) = sync_channel(1);
            let poison = Job {
                kernel: Arc::clone(&decod),
                patterns: patterns_for(&decod, 10, 100 + round),
                want_values: false,
                deadline: None,
                reply: Box::new(ChannelReply(poison_tx)),
                fault: Some(JobFault::PanicInWorker),
            };
            assert!(handle.try_submit(poison).is_ok());
            assert!(
                poison_rx.recv_timeout(Duration::from_secs(30)).is_err(),
                "panicked batch must drop its replies"
            );

            // The restarted worker evaluates the next job bit-exactly.
            let (reply_tx, reply_rx) = sync_channel(1);
            let job = Job {
                kernel: Arc::clone(&decod),
                patterns: patterns_for(&decod, 50, round),
                want_values: false,
                deadline: None,
                reply: Box::new(ChannelReply(reply_tx)),
                fault: None,
            };
            assert!(handle.try_submit(job).is_ok());
            let got = reply_rx
                .recv_timeout(Duration::from_secs(30))
                .expect("restarted worker replies")
                .expect("job evaluates");
            let patterns = patterns_for(&decod, 50, round);
            let offline = TraceEngine::new(&decod).evaluate(&patterns);
            assert_eq!(got.summary.sum_ff.to_bits(), offline.sum_ff.to_bits());
        }
        assert_eq!(stats.worker_panics(), 3);
        drop(handle);
        dispatcher.shutdown();
    }
}
