//! End-to-end server tests over real sockets: bit-identical parity under
//! cross-connection micro-batching, admission-control shedding, and
//! graceful drain semantics.

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use charfree_engine::TraceEngine;
use charfree_netlist::Library;
use charfree_pipeline::{PipelineCtx, Source};
use charfree_serve::{
    Client, ErrorKind, Request, Response, ServeConfig, Server, WireBuildOptions, WireEvalParams,
};

fn test_config() -> ServeConfig {
    let mut config = ServeConfig::new(Library::test_library());
    config.addr = "127.0.0.1:0".to_owned();
    config.log = false;
    config
}

fn eval_params(vectors: usize, seed: u64) -> WireEvalParams {
    WireEvalParams {
        vectors,
        sp: 0.5,
        st: 0.4,
        seed,
        deadline_ms: None,
    }
}

/// The offline reference: the same pattern generation and evaluation the
/// `charfree eval`/`trace` subcommands run, with no server involved.
fn offline(source: &str, params: &WireEvalParams) -> (String, Vec<f64>) {
    let mut ctx = PipelineCtx::new(Library::test_library());
    let kernel = ctx.kernel_for(&Source::infer(source)).expect("builds");
    let patterns =
        charfree_sim::MarkovSource::new(kernel.num_inputs(), params.sp, params.st, params.seed)
            .expect("feasible")
            .sequence(params.vectors.max(2));
    let values = TraceEngine::new(&kernel).trace(&patterns);
    (kernel.name().to_owned(), values)
}

#[test]
fn multi_connection_mixed_workload_is_bit_identical_to_offline() {
    let mut config = test_config();
    config.jobs = 2;
    config.batch_window = Duration::from_millis(30);
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();

    // Mixed replay: eval and trace requests on two models from six
    // concurrent connections, released together so the 30ms window
    // actually coalesces them into shared pattern blocks.
    let cases: Vec<(&str, usize, u64, bool)> = vec![
        ("decod", 130, 1, false),
        ("decod", 7, 2, true),
        ("decod", 4099, 3, false),
        ("cm85", 65, 4, true),
        ("cm85", 513, 5, false),
        ("decod", 1000, 6, true),
    ];
    let barrier = Arc::new(Barrier::new(cases.len()));
    let handles: Vec<_> = cases
        .iter()
        .map(|&(source, vectors, seed, want_trace)| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connects");
                let params = eval_params(vectors, seed);
                let request = if want_trace {
                    Request::Trace {
                        source: source.to_owned(),
                        options: WireBuildOptions::default(),
                        params: params.clone(),
                    }
                } else {
                    Request::Eval {
                        source: source.to_owned(),
                        options: WireBuildOptions::default(),
                        params: params.clone(),
                    }
                };
                barrier.wait();
                let response = client.request(&request).expect("responds");
                (source, params, want_trace, response)
            })
        })
        .collect();

    for handle in handles {
        let (source, params, want_trace, response) = handle.join().expect("client thread");
        let (name, values) = offline(source, &params);
        match response {
            Response::Eval {
                name: got_name,
                transitions,
                sum_ff,
                max_ff,
            } => {
                assert!(!want_trace);
                let reference = charfree_engine::TraceSummary::from_values(
                    &values,
                    charfree_engine::DEFAULT_CHUNK,
                );
                assert_eq!(got_name, name);
                assert_eq!(transitions, reference.transitions);
                assert_eq!(sum_ff.to_bits(), reference.sum_ff.to_bits(), "{source}");
                assert_eq!(max_ff.to_bits(), reference.max_ff.to_bits(), "{source}");
            }
            Response::Trace {
                name: got_name,
                values: got_values,
            } => {
                assert!(want_trace);
                assert_eq!(got_name, name);
                assert_eq!(got_values.len(), values.len());
                for (t, (a, b)) in got_values.iter().zip(&values).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{source} transition {t}");
                }
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    // The coalescing must actually have happened: fewer executed batches
    // than requests (at least two requests shared a window).
    let mut client = Client::connect(&addr).expect("connects");
    if let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") {
        let batches = stats
            .get("batches")
            .and_then(|v| v.as_u64())
            .expect("batches");
        let batched = stats
            .get("batched_requests")
            .and_then(|v| v.as_u64())
            .expect("batched_requests");
        assert_eq!(batched, 6, "all six requests went through the dispatcher");
        assert!(
            batches < batched,
            "coalescing never engaged: {batches} batches for {batched} requests"
        );
    } else {
        panic!("stats request failed");
    }

    assert!(matches!(
        client.request(&Request::Shutdown).expect("shutdown"),
        Response::Shutdown
    ));
    server.wait();
}

#[test]
fn warm_loads_do_zero_apply_steps() {
    let cache = std::env::temp_dir().join(format!("charfree-serve-test-{}", std::process::id()));
    let mut config = test_config();
    config.cache_dir = Some(cache.clone());
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connects");
    let load = Request::Load {
        source: "decod".to_owned(),
        options: WireBuildOptions::default(),
    };
    let cold = client.request(&load).expect("cold load");
    let warm = client.request(&load).expect("warm load");
    match (cold, warm) {
        (
            Response::Load {
                apply_steps: cold_steps,
                resident: false,
                ..
            },
            Response::Load {
                apply_steps: 0,
                resident: true,
                ..
            },
        ) => assert!(cold_steps > 0, "a cold build performs apply steps"),
        other => panic!("unexpected load responses {other:?}"),
    }

    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
    let _ = std::fs::remove_dir_all(cache);
}

#[test]
fn overload_sheds_with_typed_errors_and_recovers() {
    let mut config = test_config();
    config.max_inflight = 1;
    // A long window keeps the one admitted request in flight while the
    // burst arrives, so shedding engages deterministically.
    config.batch_window = Duration::from_millis(300);
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();

    let barrier = Arc::new(Barrier::new(5));
    let handles: Vec<_> = (0..5u64)
        .map(|seed| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connects");
                let request = Request::Eval {
                    source: "decod".to_owned(),
                    options: WireBuildOptions::default(),
                    params: eval_params(50, seed),
                };
                barrier.wait();
                client.request(&request).expect("responds")
            })
        })
        .collect();
    let mut ok = 0;
    let mut shed = 0;
    for handle in handles {
        match handle.join().expect("client thread") {
            Response::Eval { .. } => ok += 1,
            Response::Error {
                kind: ErrorKind::Overloaded,
                retry_after_ms,
                ..
            } => {
                assert!(retry_after_ms.is_some(), "shed responses carry a backoff");
                shed += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(ok >= 1, "at least the admitted request completes");
    assert!(shed >= 1, "a 5-burst against max_inflight=1 must shed");

    // The server recovers: a lone request after the burst succeeds.
    let mut client = Client::connect(&addr).expect("connects");
    assert!(matches!(
        client
            .request(&Request::Eval {
                source: "decod".to_owned(),
                options: WireBuildOptions::default(),
                params: eval_params(50, 99),
            })
            .expect("responds"),
        Response::Eval { .. }
    ));
    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

#[test]
fn graceful_drain_completes_accepted_requests() {
    let mut config = test_config();
    // The window keeps the accepted request in flight long enough for
    // the shutdown to land first.
    config.batch_window = Duration::from_millis(200);
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();

    let worker = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connects");
            client
                .request(&Request::Eval {
                    source: "decod".to_owned(),
                    options: WireBuildOptions::default(),
                    params: eval_params(2000, 7),
                })
                .expect("in-flight request survives the drain")
        })
    };
    // Let the eval request reach the dispatcher, then drain.
    thread::sleep(Duration::from_millis(60));
    let mut control = Client::connect(&addr).expect("connects");
    assert!(matches!(
        control.request(&Request::Shutdown).expect("shutdown"),
        Response::Shutdown
    ));
    server.wait(); // returns only once everything is flushed

    let response = worker.join().expect("worker thread");
    let params = eval_params(2000, 7);
    let (_, values) = offline("decod", &params);
    let reference =
        charfree_engine::TraceSummary::from_values(&values, charfree_engine::DEFAULT_CHUNK);
    match response {
        Response::Eval {
            sum_ff,
            transitions,
            ..
        } => {
            assert_eq!(transitions, reference.transitions);
            assert_eq!(sum_ff.to_bits(), reference.sum_ff.to_bits());
        }
        other => panic!("the accepted request must complete, got {other:?}"),
    }

    // And the port no longer accepts work.
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut client) => {
            // A race can let one last connect through before the listener
            // closes; it must at least refuse to serve.
            match client.request(&Request::Stats) {
                Err(_) => {}
                Ok(Response::Error { .. }) => {}
                Ok(other) => panic!("drained server answered {other:?}"),
            }
        }
    }
}

#[test]
fn expected_matches_the_kernel_analytic_path() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    let mut ctx = PipelineCtx::new(Library::test_library());
    let kernel = ctx.kernel_for(&Source::infer("decod")).expect("builds");
    let reference = kernel.expected_capacitance(0.3, 0.6);

    match client
        .request(&Request::Expected {
            source: "decod".to_owned(),
            sp: 0.3,
            st: 0.6,
        })
        .expect("responds")
    {
        Response::Expected { name, value } => {
            assert_eq!(name, kernel.name());
            assert_eq!(value.to_bits(), reference.to_bits());
        }
        other => panic!("unexpected response {other:?}"),
    }
    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

#[test]
fn deeply_nested_request_line_is_rejected_without_crashing() {
    // ~200KB of `[` is well under the 1MB line limit but used to drive
    // the recursive-descent JSON parser ~200k frames deep, overflowing
    // the connection thread's stack and aborting the whole process. It
    // must instead come back as a typed bad-request, with the server
    // fully alive afterwards.
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(&addr).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let attack = "[".repeat(200_000);
    writeln!(writer, "{attack}").expect("writes");
    let mut line = String::new();
    reader.read_line(&mut line).expect("reads");
    match Response::parse_line(line.trim_end()).expect("parses") {
        Response::Error {
            kind: ErrorKind::BadRequest,
            ..
        } => {}
        other => panic!("deep nesting got {other:?}"),
    }

    // The process survived and still serves.
    let mut client = Client::connect(&addr).expect("connects");
    assert!(matches!(
        client.request(&Request::Stats).expect("stats"),
        Response::Stats(_)
    ));
    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

#[test]
fn oversized_vectors_requests_are_rejected_not_evaluated() {
    let mut config = test_config();
    config.max_vectors = 100;
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    // One past the cap: a typed bad-request, before any pattern storage
    // is allocated.
    match client
        .request(&Request::Eval {
            source: "decod".to_owned(),
            options: WireBuildOptions::default(),
            params: eval_params(101, 1),
        })
        .expect("responds")
    {
        Response::Error {
            kind: ErrorKind::BadRequest,
            message,
            ..
        } => assert!(message.contains("max-vectors"), "{message}"),
        other => panic!("over-cap request got {other:?}"),
    }
    // At the cap: served normally.
    assert!(matches!(
        client
            .request(&Request::Eval {
                source: "decod".to_owned(),
                options: WireBuildOptions::default(),
                params: eval_params(100, 1),
            })
            .expect("responds"),
        Response::Eval { .. }
    ));
    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

#[test]
fn eval_targets_the_loaded_build_options() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    let options = WireBuildOptions {
        max_nodes: Some(64),
        ..WireBuildOptions::default()
    };
    let load = |client: &mut Client, options: &WireBuildOptions| match client
        .request(&Request::Load {
            source: "decod".to_owned(),
            options: options.clone(),
        })
        .expect("load responds")
    {
        Response::Load { resident, .. } => resident,
        other => panic!("load got {other:?}"),
    };
    assert!(!load(&mut client, &options), "first load is cold");
    // Evaluating with the same options must hit the loaded model, not
    // silently build and evaluate a second, default-option model.
    assert!(matches!(
        client
            .request(&Request::Eval {
                source: "decod".to_owned(),
                options: options.clone(),
                params: eval_params(50, 3),
            })
            .expect("responds"),
        Response::Eval { .. }
    ));
    assert!(
        load(&mut client, &options),
        "the options build is still the resident one after eval"
    );
    assert!(
        !load(&mut client, &WireBuildOptions::default()),
        "no default-option model was built behind the client's back"
    );

    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

#[test]
fn deadline_bounded_builds_never_become_registry_resident() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    let load = |client: &mut Client, options: &WireBuildOptions| match client
        .request(&Request::Load {
            source: "cm85".to_owned(),
            options: options.clone(),
        })
        .expect("load responds")
    {
        Response::Load { resident, .. } => resident,
        other => panic!("load got {other:?}"),
    };
    // A deadline-bounded build is timing-dependent (the degradation
    // point depends on wall clock), so it serves its own request but is
    // never inserted: a repeat load is cold again.
    let deadline_options = WireBuildOptions {
        deadline_ms: Some(60_000),
        ..WireBuildOptions::default()
    };
    assert!(!load(&mut client, &deadline_options));
    assert!(
        !load(&mut client, &deadline_options),
        "a deadline-bounded build must not have been cached"
    );
    // A deterministic build under the same structural key does insert,
    // and subsequent deadline-bounded requests may reuse it.
    assert!(!load(&mut client, &WireBuildOptions::default()));
    assert!(load(&mut client, &WireBuildOptions::default()));
    assert!(
        load(&mut client, &deadline_options),
        "a resident deterministic build satisfies a deadline-bounded request"
    );
    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

#[test]
fn malformed_lines_get_typed_bad_request_responses() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    use std::io::{BufRead, BufReader, Write};
    let stream = std::net::TcpStream::connect(&addr).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for bad in ["this is not json", "{\"cmd\":\"frobnicate\"}", "{}"] {
        writeln!(writer, "{bad}").expect("writes");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        match Response::parse_line(line.trim_end()).expect("parses") {
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            } => {}
            other => panic!("`{bad}` got {other:?}"),
        }
    }
    drop(writer);
    drop(reader);
    let mut client = Client::connect(&addr).expect("connects");
    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

/// Every counter in the `stats` payload reconciles exactly against a
/// scripted single-connection session: per-command tallies sum to
/// `accepted`, completed + errors accounts for every response (modulo
/// the in-flight stats request itself), the batch-fill histogram sums
/// to the batch count, and the registry reports exactly one cold
/// resolve (two misses: the pre- and post-build-lock probes) plus one
/// warm hit per follow-up request.
#[test]
fn stats_counters_reconcile_after_scripted_session() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    let options = WireBuildOptions::default();
    // 1. Cold load: 2 registry misses (double-checked build lock).
    assert!(matches!(
        client
            .request(&Request::Load {
                source: "decod".to_owned(),
                options: options.clone(),
            })
            .expect("load"),
        Response::Load { .. }
    ));
    // 2-3. Two warm evals, 4. one warm trace: 3 hits, 3 batched jobs.
    for seed in [1u64, 2] {
        assert!(matches!(
            client
                .request(&Request::Eval {
                    source: "decod".to_owned(),
                    options: options.clone(),
                    params: eval_params(16, seed),
                })
                .expect("eval"),
            Response::Eval { .. }
        ));
    }
    assert!(matches!(
        client
            .request(&Request::Trace {
                source: "decod".to_owned(),
                options: options.clone(),
                params: eval_params(16, 3),
            })
            .expect("trace"),
        Response::Trace { .. }
    ));
    // 5. Expected: warm hit, analytic path (not batched).
    assert!(matches!(
        client
            .request(&Request::Expected {
                source: "decod".to_owned(),
                sp: 0.5,
                st: 0.4,
            })
            .expect("expected"),
        Response::Expected { .. }
    ));
    // 6. A load that parses but cannot build: accepted, then an error
    // (and two more registry misses from the failed resolve).
    assert!(matches!(
        client
            .request(&Request::Load {
                source: "no-such-bench-zzz".to_owned(),
                options,
            })
            .expect("responds"),
        Response::Error { .. }
    ));
    // 7. A malformed line: an error that was never *accepted* (it dies
    // before command dispatch), so it must not disturb per_command.
    {
        use std::io::{BufRead, BufReader, Write};
        let stream = std::net::TcpStream::connect(&addr).expect("connects");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        writeln!(writer, "this is not json").expect("writes");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        assert!(matches!(
            Response::parse_line(line.trim_end()).expect("parses"),
            Response::Error {
                kind: ErrorKind::BadRequest,
                ..
            }
        ));
    }

    // 8. Snapshot. The stats request itself is already counted as
    // accepted, but its completion lands only after the snapshot.
    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("stats request failed");
    };
    let get = |key: &str| -> u64 {
        stats
            .get(key)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("stats payload missing `{key}`: {stats:?}"))
    };
    let per = stats.get("per_command").expect("per_command");
    let per_cmd = |key: &str| -> u64 { per.get(key).and_then(|v| v.as_u64()).expect("per-cmd") };

    assert_eq!(per_cmd("load"), 2);
    assert_eq!(per_cmd("eval"), 2);
    assert_eq!(per_cmd("trace"), 1);
    assert_eq!(per_cmd("expected"), 1);
    assert_eq!(per_cmd("stats"), 1);
    assert_eq!(per_cmd("shutdown"), 0);
    let per_sum: u64 = ["load", "eval", "trace", "expected", "stats", "shutdown"]
        .iter()
        .map(|c| per_cmd(c))
        .sum();
    assert_eq!(get("accepted"), per_sum, "accepted = sum of per-command");

    // 5 ok responses before the snapshot; 2 errors (failed build +
    // malformed line); the in-flight stats request is accepted but not
    // yet completed; nothing was shed in a calm sequential session.
    assert_eq!(get("completed"), 5);
    assert_eq!(get("errors"), 2);
    assert_eq!(get("shed"), 0);
    assert_eq!(
        get("completed") + get("errors") + 1,
        get("accepted") + 1,
        "every accepted request except the in-flight stats resolved; \
         the malformed line added an error without an acceptance"
    );

    // Exactly the three eval/trace jobs went through the dispatcher, in
    // at least one and at most three micro-batches, and the fill
    // histogram files one entry per executed batch.
    assert_eq!(get("batched_requests"), 3);
    let batches = get("batches");
    assert!((1..=3).contains(&batches), "batches = {batches}");
    let fill_sum: u64 = match stats.get("batch_fill") {
        Some(charfree_serve::json::Json::Arr(cells)) => {
            cells.iter().filter_map(|v| v.as_u64()).sum()
        }
        other => panic!("batch_fill missing or mistyped: {other:?}"),
    };
    assert_eq!(fill_sum, batches, "one fill sample per executed batch");

    // Registry: one resident model; 1 cold resolve (2 misses) + 1
    // failed resolve (2 misses) + 4 warm resolves (1 hit each).
    let registry = stats.get("registry").expect("registry");
    let reg = |key: &str| -> u64 {
        registry
            .get(key)
            .and_then(|v| v.as_u64())
            .expect("registry field")
    };
    assert_eq!(reg("entries"), 1);
    assert_eq!(reg("hits"), 4);
    assert_eq!(reg("misses"), 4);
    assert_eq!(reg("evictions"), 0);

    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}
