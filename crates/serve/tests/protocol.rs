//! Wire-protocol robustness over real sockets: binary framing attacks
//! (truncated/oversized prefixes, bad magic, mid-frame disconnects,
//! version mismatch) must produce typed errors — never a hang or a
//! panic; JSON and binary answers must be bit-identical; the idle
//! timeout must cut slow-loris connections with a typed error; and the
//! metrics endpoints must serve the stable counter names.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use charfree_netlist::Library;
use charfree_serve::{
    wire, Client, ErrorKind, Proto, Request, Response, ServeConfig, Server, WireBuildOptions,
    WireEvalParams,
};

fn test_config() -> ServeConfig {
    let mut config = ServeConfig::new(Library::test_library());
    config.addr = "127.0.0.1:0".to_owned();
    config.log = false;
    config
}

fn eval_params(vectors: usize, seed: u64) -> WireEvalParams {
    WireEvalParams {
        vectors,
        sp: 0.5,
        st: 0.4,
        seed,
        deadline_ms: None,
    }
}

fn shutdown(server: Server, addr: &str) {
    let mut client = Client::connect(addr).expect("connects for shutdown");
    client.request(&Request::Shutdown).expect("shutdown");
    server.wait();
}

/// Reads the 6-byte hello ack off a raw stream.
fn read_ack(stream: &mut TcpStream) -> [u8; 6] {
    let mut ack = [0u8; 6];
    stream.read_exact(&mut ack).expect("ack arrives");
    ack
}

/// Reads one binary frame (length prefix + body) off a raw stream and
/// decodes it.
fn read_frame(stream: &mut TcpStream) -> Response {
    let mut prefix = [0u8; 4];
    stream
        .read_exact(&mut prefix)
        .expect("frame prefix arrives");
    let len = u32::from_le_bytes(prefix) as usize;
    assert!(len > 0 && len <= wire::MAX_FRAME_BYTES, "sane length {len}");
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("frame body arrives");
    wire::decode_response(body[0], &body[1..]).expect("frame decodes")
}

/// Reads to EOF with a bounded timeout, so a server that wrongly keeps
/// the connection open fails the test instead of hanging it.
fn assert_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    let mut sink = [0u8; 256];
    loop {
        match stream.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) => panic!("expected EOF, got {e}"),
        }
    }
}

#[test]
fn binary_and_json_protocols_answer_bit_identically() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    let mut json = Client::connect_with(&addr, Proto::Json).expect("json connects");
    let mut binary = Client::connect_with(&addr, Proto::Binary).expect("binary negotiates");

    for (vectors, seed) in [(7usize, 1u64), (130, 2), (1000, 3)] {
        let request = Request::Trace {
            source: "decod".to_owned(),
            options: WireBuildOptions::default(),
            params: eval_params(vectors, seed),
        };
        let a = json.request(&request).expect("json responds");
        let b = binary.request(&request).expect("binary responds");
        match (a, b) {
            (Response::Trace { values: ja, .. }, Response::Trace { values: jb, .. }) => {
                assert_eq!(ja.len(), jb.len());
                for (x, y) in ja.iter().zip(&jb) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "JSON and binary trace values must be bit-identical"
                    );
                }
            }
            other => panic!("unexpected responses {other:?}"),
        }
    }

    // eval summaries too (transitions + f64 aggregates).
    let request = Request::Eval {
        source: "cm85".to_owned(),
        options: WireBuildOptions::default(),
        params: eval_params(513, 9),
    };
    let a = json.request(&request).expect("json responds");
    let b = binary.request(&request).expect("binary responds");
    match (a, b) {
        (
            Response::Eval {
                transitions: ta,
                sum_ff: sa,
                max_ff: ma,
                ..
            },
            Response::Eval {
                transitions: tb,
                sum_ff: sb,
                max_ff: mb,
                ..
            },
        ) => {
            assert_eq!(ta, tb);
            assert_eq!(sa.to_bits(), sb.to_bits());
            assert_eq!(ma.to_bits(), mb.to_bits());
        }
        other => panic!("unexpected responses {other:?}"),
    }
    shutdown(server, &addr);
}

#[test]
fn binary_tracep_ships_explicit_patterns_and_stats_and_metrics_frames_work() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();
    let mut client = Client::connect_with(&addr, Proto::Binary).expect("negotiates");

    // decod has 5 inputs; send an explicit 4-pattern staircase.
    let patterns: Vec<Vec<bool>> = (0..4u8)
        .map(|i| (0..5).map(|b| (i >> (b % 2)) & 1 == 1).collect())
        .collect();
    let request = Request::TraceDirect {
        source: "decod".to_owned(),
        options: WireBuildOptions::default(),
        patterns: patterns.clone(),
        deadline_ms: None,
    };
    match client.request(&request).expect("tracep responds") {
        Response::Trace { values, .. } => assert_eq!(values.len(), patterns.len() - 1),
        other => panic!("tracep got {other:?}"),
    }

    match client.request(&Request::Stats).expect("stats responds") {
        Response::Stats(snapshot) => {
            let accepted = snapshot.get("accepted").and_then(|v| v.as_u64());
            assert!(accepted.is_some_and(|n| n >= 2), "{accepted:?}");
        }
        other => panic!("stats got {other:?}"),
    }
    match client.request(&Request::Metrics).expect("metrics responds") {
        Response::Metrics(text) => {
            assert!(text.contains("charfree_accepted_total"), "{text}");
            assert!(
                text.contains("charfree_requests_total{cmd=\"tracep\"} 1"),
                "{text}"
            );
        }
        other => panic!("metrics got {other:?}"),
    }
    shutdown(server, &addr);
}

#[test]
fn bad_magic_gets_a_rejection_ack_and_a_typed_error() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connects");
    // First byte `C` routes to the binary hello path; the magic is wrong.
    stream.write_all(b"CXB1\x01\x00\x01\x00").expect("writes");
    let ack = read_ack(&mut stream);
    assert_eq!(u16::from_le_bytes([ack[4], ack[5]]), 0, "rejection ack");
    match read_frame(&mut stream) {
        Response::Error {
            kind: ErrorKind::BadRequest,
            message,
            ..
        } => assert!(message.contains("magic"), "{message}"),
        other => panic!("bad magic got {other:?}"),
    }
    assert_closed(&mut stream);
    shutdown(server, &addr);
}

#[test]
fn version_mismatch_is_a_typed_unsupported_error() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    let mut stream = TcpStream::connect(&addr).expect("connects");
    // Offer only versions 5..=9; the server speaks 1.
    stream.write_all(&wire::encode_hello(5, 9)).expect("writes");
    let ack = read_ack(&mut stream);
    assert_eq!(u16::from_le_bytes([ack[4], ack[5]]), 0, "rejection ack");
    match read_frame(&mut stream) {
        Response::Error {
            kind: ErrorKind::Unsupported,
            message,
            ..
        } => assert!(message.contains("version"), "{message}"),
        other => panic!("version mismatch got {other:?}"),
    }
    assert_closed(&mut stream);
    shutdown(server, &addr);
}

#[test]
fn hostile_length_prefixes_get_typed_errors_not_buffering() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    // Oversized: claims a frame far past MAX_FRAME_BYTES. The server
    // must reject from the prefix alone, without waiting for the body.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .write_all(&wire::encode_hello(wire::VERSION, wire::VERSION))
        .expect("hello");
    let ack = read_ack(&mut stream);
    assert_eq!(
        u16::from_le_bytes([ack[4], ack[5]]),
        wire::VERSION,
        "negotiates"
    );
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("oversized prefix");
    match read_frame(&mut stream) {
        Response::Error {
            kind: ErrorKind::BadRequest,
            message,
            ..
        } => assert!(message.contains("oversized"), "{message}"),
        other => panic!("oversized prefix got {other:?}"),
    }
    assert_closed(&mut stream);

    // Zero-length: a frame with no type byte is equally unrecoverable.
    let mut stream = TcpStream::connect(&addr).expect("connects");
    stream
        .write_all(&wire::encode_hello(wire::VERSION, wire::VERSION))
        .expect("hello");
    let _ = read_ack(&mut stream);
    stream.write_all(&0u32.to_le_bytes()).expect("zero prefix");
    match read_frame(&mut stream) {
        Response::Error {
            kind: ErrorKind::BadRequest,
            ..
        } => {}
        other => panic!("zero prefix got {other:?}"),
    }
    assert_closed(&mut stream);
    shutdown(server, &addr);
}

#[test]
fn mid_frame_disconnects_never_wedge_the_server() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    // Several abrupt disconnects at different cut points: after the
    // hello, after a bare prefix, and mid-body.
    for cut in 0..3 {
        let mut stream = TcpStream::connect(&addr).expect("connects");
        stream
            .write_all(&wire::encode_hello(wire::VERSION, wire::VERSION))
            .expect("hello");
        let _ = read_ack(&mut stream);
        let mut frame = Vec::new();
        wire::encode_request(
            &Request::Load {
                source: "decod".to_owned(),
                options: WireBuildOptions::default(),
            },
            &mut frame,
        );
        let keep = match cut {
            0 => 0,
            1 => 4,
            _ => frame.len() - 3,
        };
        stream.write_all(&frame[..keep]).expect("partial frame");
        drop(stream); // mid-frame disconnect
    }

    // The server is still fully functional for a fresh binary client.
    let mut client = Client::connect_with(&addr, Proto::Binary).expect("negotiates");
    match client
        .request(&Request::Load {
            source: "decod".to_owned(),
            options: WireBuildOptions::default(),
        })
        .expect("load responds")
    {
        Response::Load { name, .. } => assert_eq!(name, "decod"),
        other => panic!("load got {other:?}"),
    }
    shutdown(server, &addr);
}

#[test]
fn slow_loris_connections_are_cut_with_a_typed_timeout() {
    let mut config = test_config();
    config.idle_timeout = Duration::from_millis(150);
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();

    // A half request and then silence: the idle cutoff must answer with
    // a typed timeout error and close.
    let stream = TcpStream::connect(&addr).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    writer.write_all(b"{\"cmd\":\"ev").expect("partial request");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    reader.read_line(&mut line).expect("timeout line arrives");
    match Response::parse_line(line.trim_end()).expect("parses") {
        Response::Error {
            kind: ErrorKind::Timeout,
            message,
            ..
        } => assert!(message.contains("idle"), "{message}"),
        other => panic!("slow loris got {other:?}"),
    }
    let n = reader.read_line(&mut line).expect("then EOF");
    assert_eq!(n, 0, "connection closes after the timeout error");

    // The cut is visible in stats: an idle timeout and an idle-reason
    // net close.
    let mut client = Client::connect(&addr).expect("connects");
    match client.request(&Request::Stats).expect("stats") {
        Response::Stats(snapshot) => {
            let idle = snapshot
                .get("resilience")
                .and_then(|r| r.get("idle_timeouts"))
                .and_then(|v| v.as_u64());
            assert_eq!(idle, Some(1), "idle_timeouts counts the cut");
            let closed = snapshot
                .get("net")
                .and_then(|n| n.get("closed_idle"))
                .and_then(|v| v.as_u64());
            assert_eq!(closed, Some(1), "net close reason is idle");
        }
        other => panic!("stats got {other:?}"),
    }
    shutdown(server, &addr);
}

#[test]
fn get_metrics_is_served_on_the_main_port_and_the_dedicated_listener() {
    let mut config = test_config();
    config.metrics_addr = Some("127.0.0.1:0".to_owned());
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();
    let maddr = server.metrics_addr().expect("metrics listener").to_string();

    // Warm one counter so the scrape has something to show.
    let mut client = Client::connect(&addr).expect("connects");
    client
        .request(&Request::Load {
            source: "decod".to_owned(),
            options: WireBuildOptions::default(),
        })
        .expect("load");

    for target in [&addr, &maddr] {
        let mut stream = TcpStream::connect(target).expect("connects");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
            .expect("request");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout set");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("response");
        assert!(body.starts_with("HTTP/1.0 200 OK\r\n"), "{body}");
        for needle in [
            "charfree_accepted_total",
            "charfree_requests_total{cmd=\"load\"} 1",
            "charfree_registry_entries 1",
            "charfree_net_connections_total",
        ] {
            assert!(body.contains(needle), "missing `{needle}` in:\n{body}");
        }
    }

    // Any other path 404s.
    let mut stream = TcpStream::connect(&maddr).expect("connects");
    stream
        .write_all(b"GET /other HTTP/1.0\r\n\r\n")
        .expect("request");
    let mut body = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    stream.read_to_string(&mut body).expect("response");
    assert!(body.starts_with("HTTP/1.0 404"), "{body}");
    shutdown(server, &addr);
}

#[test]
fn half_closing_one_shot_clients_still_get_their_response() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();

    // Send one request and immediately half-close the write side (the
    // `printf ... | nc` pattern). The in-flight response must still
    // arrive before the server closes.
    let stream = TcpStream::connect(&addr).expect("connects");
    let mut writer = stream.try_clone().expect("clone");
    writer
        .write_all(b"{\"cmd\":\"load\",\"source\":\"decod\"}\n")
        .expect("writes");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout set");
    reader.read_line(&mut line).expect("response arrives");
    match Response::parse_line(line.trim_end()).expect("parses") {
        Response::Load { name, .. } => assert_eq!(name, "decod"),
        other => panic!("half-close got {other:?}"),
    }
    shutdown(server, &addr);
}
