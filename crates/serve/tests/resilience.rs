//! Crash-safety and self-healing, end to end over real sockets: startup
//! recovery of a torn artifact store, the per-model build circuit
//! breaker on the wire, and client retry/backoff riding the server's
//! `retry_after_ms` hints.

use std::fs;
use std::path::PathBuf;
use std::time::Duration;

use charfree_netlist::Library;
use charfree_pipeline::{ArtifactStore, PipelineCtx, Source};
use charfree_serve::{
    BreakerConfig, Client, ErrorKind, Request, Response, RetryPolicy, ServeConfig, Server,
    WireBuildOptions, WireEvalParams,
};

fn test_config() -> ServeConfig {
    let mut config = ServeConfig::new(Library::test_library());
    config.addr = "127.0.0.1:0".to_owned();
    config.log = false;
    config
}

fn eval_params(vectors: usize, seed: u64) -> WireEvalParams {
    WireEvalParams {
        vectors,
        sp: 0.5,
        st: 0.4,
        seed,
        deadline_ms: None,
    }
}

fn offline_trace(source: &str, params: &WireEvalParams) -> Vec<f64> {
    let mut ctx = PipelineCtx::new(Library::test_library());
    let kernel = ctx.kernel_for(&Source::infer(source)).expect("builds");
    let patterns =
        charfree_sim::MarkovSource::new(kernel.num_inputs(), params.sp, params.st, params.seed)
            .expect("feasible")
            .sequence(params.vectors.max(2));
    charfree_engine::TraceEngine::new(&kernel).trace(&patterns)
}

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("charfree-resilience-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn shutdown(server: Server, addr: &str) {
    let mut client = Client::connect(addr).expect("connects for shutdown");
    let _ = client.request(&Request::Shutdown);
    server.wait();
}

/// The `kill -9` acceptance scenario: a cache torn mid-publish (truncated
/// kernel artifact + a journal whose last record is a dangling `begin`)
/// must boot, quarantine the torn entry during startup recovery, serve
/// the request via rebuild bit-identically, and heal the cache entry to
/// bytes identical to a clean cold write.
#[test]
fn server_boots_on_a_torn_store_quarantines_and_heals_byte_identically() {
    let dir = scratch("torn-boot");
    let cache = dir.join("cache");

    // A clean reference cache, written offline by the same pipeline the
    // server runs.
    let clean = dir.join("clean-cache");
    {
        let mut ctx =
            PipelineCtx::new(Library::test_library()).with_store(ArtifactStore::new(&clean));
        ctx.kernel_for(&Source::infer("decod")).expect("builds");
    }
    // The victim cache starts identical...
    {
        let mut ctx =
            PipelineCtx::new(Library::test_library()).with_store(ArtifactStore::new(&cache));
        ctx.kernel_for(&Source::infer("decod")).expect("builds");
    }
    // ...then gets the post-crash treatment: truncate every artifact and
    // leave a dangling `begin` at the journal tail.
    let mut torn = 0usize;
    for entry in fs::read_dir(&cache).expect("read cache") {
        let path = entry.expect("entry").path();
        if !is_artifact(&path) {
            continue;
        }
        let bytes = fs::read(&path).expect("read artifact");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("tear artifact");
        torn += 1;
    }
    assert!(torn >= 1, "the warm build must have stored artifacts");
    let journal = ArtifactStore::new(&cache).journal_path();
    let mut log = fs::read(&journal).expect("journal exists");
    log.extend_from_slice(b"begin feedfacefeedfacefeedfacefeedface.cfk\n");
    fs::write(&journal, log).expect("append dangling begin");

    // Boot on the torn store. Startup recovery must quarantine the torn
    // entries out from under their keys.
    let mut config = test_config();
    config.cache_dir = Some(cache.clone());
    let server = Server::start(config).expect("boots on a torn store");
    let addr = server.addr().to_string();
    let quarantine = ArtifactStore::new(&cache).quarantine_dir();
    let quarantined = fs::read_dir(&quarantine)
        .map(|entries| entries.filter_map(Result::ok).count())
        .unwrap_or(0);
    assert!(
        quarantined >= 1,
        "startup recovery must quarantine the torn artifacts"
    );

    // The request is served via rebuild, bit-identical to offline.
    let params = eval_params(40, 77);
    let want = offline_trace("decod", &params);
    let mut client = Client::connect(&addr).expect("connects");
    match client
        .request(&Request::Trace {
            source: "decod".to_owned(),
            options: WireBuildOptions::default(),
            params: params.clone(),
        })
        .expect("responds")
    {
        Response::Trace { values, .. } => {
            assert_eq!(values.len(), want.len());
            for (t, (got, want)) in values.iter().zip(&want).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "transition {t}");
            }
        }
        other => panic!("expected a trace, got {other:?}"),
    }
    shutdown(server, &addr);

    // The healed entries are byte-identical to the clean reference
    // cache. One exception: a model's `report` line records the build's
    // measured CPU time, the single legitimately nondeterministic byte
    // range in any artifact — mask it, compare everything else exactly.
    let mut compared = 0usize;
    for entry in fs::read_dir(&clean).expect("read clean") {
        let path = entry.expect("entry").path();
        if !is_artifact(&path) {
            continue;
        }
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("file name")
            .to_owned();
        let clean_bytes = mask_build_time(&fs::read(&path).expect("clean bytes"));
        let healed_bytes =
            mask_build_time(&fs::read(cache.join(&name)).expect("healed entry exists"));
        assert_eq!(
            clean_bytes, healed_bytes,
            "{name} must heal byte-identically"
        );
        compared += 1;
    }
    assert!(compared >= 1, "the reference cache must hold artifacts");
    let _ = fs::remove_dir_all(&dir);
}

/// Blanks the one wall-clock-dependent field in the artifact formats:
/// the model's `report <rounds> <collapsed> <exact> <cpu-seconds>` line.
fn mask_build_time(bytes: &[u8]) -> Vec<u8> {
    let Ok(text) = std::str::from_utf8(bytes) else {
        return bytes.to_vec();
    };
    text.lines()
        .map(|line| {
            if line.starts_with("report ") {
                let kept: Vec<&str> = line.split_whitespace().take(4).collect();
                format!("{} <cpu>", kept.join(" "))
            } else {
                line.to_owned()
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
        .into_bytes()
}

/// A content-addressed artifact file (`.cfm` model / `.cfk` kernel) —
/// everything else in a cache dir (journal, quarantine) is bookkeeping.
fn is_artifact(path: &std::path::Path) -> bool {
    path.is_file()
        && matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("cfm") | Some("cfk")
        )
}

/// The breaker on the wire: K deterministic build failures trip a typed
/// `model-unavailable` with a `retry_after_ms` hint, an unrelated model
/// keeps serving while the circuit is open, and a retrying client rides
/// the hint through the half-open probe to a bit-exact answer once the
/// cause is fixed.
#[test]
fn breaker_trips_on_the_wire_and_a_retrying_client_heals_through_it() {
    let dir = scratch("breaker");
    let late = dir.join("late.blif");

    let mut config = test_config();
    config.jobs = 1;
    config.breaker = BreakerConfig {
        failure_threshold: 2,
        open_base: Duration::from_millis(150),
        open_cap: Duration::from_secs(2),
    };
    let server = Server::start(config).expect("binds");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    let request = |source: String| Request::Trace {
        source,
        options: WireBuildOptions::default(),
        params: eval_params(16, 5),
    };

    // Two deterministic failures: the netlist file does not exist yet.
    for attempt in 0..2 {
        match client
            .request(&request(late.display().to_string()))
            .expect("responds")
        {
            Response::Error { kind, .. } => assert!(
                !matches!(kind, ErrorKind::ModelUnavailable),
                "attempt {attempt} tripped early"
            ),
            other => panic!("attempt {attempt}: expected a failure, got {other:?}"),
        }
    }
    // Trip: typed, with a retry hint.
    match client
        .request(&request(late.display().to_string()))
        .expect("responds")
    {
        Response::Error {
            kind: ErrorKind::ModelUnavailable,
            retry_after_ms: Some(ms),
            ..
        } => assert!(ms > 0, "retry_after_ms must be positive"),
        other => panic!("expected model-unavailable, got {other:?}"),
    }
    // An unrelated model is unaffected by the open circuit.
    match client
        .request(&request("decod".to_owned()))
        .expect("responds")
    {
        Response::Trace { values, .. } => assert!(!values.is_empty()),
        other => panic!("healthy model failed while circuit open: {other:?}"),
    }

    // Fix the cause; `request_with_retries` honors the hint, waits out
    // the open window, and the half-open probe closes the circuit.
    let netlist = charfree_netlist::benchmarks::cm85(&Library::test_library());
    fs::write(&late, charfree_netlist::blif::write(&netlist)).expect("write netlist");
    let want = offline_trace(&late.display().to_string(), &eval_params(16, 5));
    let policy = RetryPolicy {
        retries: 8,
        base: Duration::from_millis(25),
        cap: Duration::from_millis(500),
        seed: 42,
    };
    match client
        .request_with_retries(&request(late.display().to_string()), &policy)
        .expect("heals")
    {
        Response::Trace { values, .. } => {
            for (t, (got, want)) in values.iter().zip(&want).enumerate() {
                assert_eq!(got.to_bits(), want.to_bits(), "transition {t}");
            }
        }
        other => panic!("circuit did not heal: {other:?}"),
    }
    shutdown(server, &addr);
    let _ = fs::remove_dir_all(&dir);
}

/// A draining server sheds with a typed `draining` error; a retrying
/// client treats it as retriable (here it simply exhausts its budget and
/// surfaces the typed error — never a hang, never garbage).
#[test]
fn draining_responses_are_typed_and_retriable() {
    let server = Server::start(test_config()).expect("binds");
    let addr = server.addr().to_string();
    let handle = server.drain_handle();
    handle.request_drain();
    assert!(handle.is_draining());

    let policy = RetryPolicy {
        retries: 2,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(20),
        seed: 1,
    };
    let request = Request::Trace {
        source: "decod".to_owned(),
        options: WireBuildOptions::default(),
        params: eval_params(8, 3),
    };
    // The drain may win the race and close the listener first; a typed
    // transport drop is the other legal outcome besides a typed
    // `draining` error. What is never legal: a hang or served work.
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut client) => match client.request_with_retries(&request, &policy) {
            Ok(Response::Error { kind, .. }) => {
                assert!(matches!(kind, ErrorKind::Draining), "got {kind:?}");
                assert!(kind.retriable(), "draining must be a retriable kind");
            }
            Err(_) => {}
            Ok(other) => panic!("a draining server must not serve new work: {other:?}"),
        },
    }
    server.wait();
}
