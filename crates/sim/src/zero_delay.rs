//! Zero-delay gate-level simulation — the paper's golden model.
//!
//! Under the zero-delay model every gate output changes at most once per
//! input transition, and the only structural power phenomenon is the charge
//! of load capacitances on *rising* outputs (paper, Section 2): for a
//! transition `(xⁱ, xᶠ)` the switched capacitance is
//! `C(xⁱ,xᶠ) = Σ_{gⱼ ∈ S_R} C_j` with
//! `S_R = { g_j | g_j(xⁱ)=0 ∧ g_j(xᶠ)=1 }` (Eqs. 2–3).

use charfree_netlist::units::{Capacitance, Energy, Voltage};
use charfree_netlist::{CellKind, Netlist};

/// A compiled zero-delay simulator for one netlist.
///
/// Compilation flattens the netlist into dense index arrays so repeated
/// evaluation is branch-light; the word-parallel entry points process 64
/// patterns per sweep.
///
/// # Examples
///
/// Example 1 of the paper: `C(11, 00) = 90 fF` on the Fig. 2 unit.
///
/// ```
/// use charfree_netlist::benchmarks::paper_unit;
/// use charfree_sim::ZeroDelaySim;
///
/// let unit = paper_unit();
/// let sim = ZeroDelaySim::new(&unit);
/// let c = sim.switching_capacitance(&[true, true], &[false, false]);
/// assert_eq!(c.femtofarads(), 90.0);
/// ```
#[derive(Debug, Clone)]
pub struct ZeroDelaySim {
    num_inputs: usize,
    num_signals: usize,
    /// Flattened gates in topological order.
    gates: Vec<CompiledGate>,
}

#[derive(Debug, Clone)]
struct CompiledGate {
    kind: CellKind,
    inputs: Vec<u32>,
    output: u32,
    load_ff: f64,
}

impl ZeroDelaySim {
    /// Compiles `netlist` for simulation.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::validate`].
    pub fn new(netlist: &Netlist) -> Self {
        netlist.validate().expect("netlist must be valid");
        // Primary-input signals must map to assignment positions; build a
        // signal-index remap: inputs first (in declaration order), then gate
        // outputs in topological order.
        let mut remap = vec![u32::MAX; netlist.num_signals()];
        for (i, &sig) in netlist.inputs().iter().enumerate() {
            remap[sig.index()] = i as u32;
        }
        for (next, (_, gate)) in (netlist.num_inputs() as u32..).zip(netlist.gates()) {
            remap[gate.output().index()] = next;
        }
        let gates = netlist
            .gates()
            .map(|(_, gate)| CompiledGate {
                kind: gate.kind(),
                inputs: gate.inputs().iter().map(|s| remap[s.index()]).collect(),
                output: remap[gate.output().index()],
                load_ff: gate.load().femtofarads(),
            })
            .collect();
        ZeroDelaySim {
            num_inputs: netlist.num_inputs(),
            num_signals: netlist.num_signals(),
            gates,
        }
    }

    /// Number of primary inputs expected in every pattern.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of gates.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Evaluates all signal values for one input pattern. The returned
    /// vector holds inputs first (in declaration order), then gate outputs
    /// in topological order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs, "pattern width mismatch");
        let mut values = vec![false; self.num_signals];
        values[..inputs.len()].copy_from_slice(inputs);
        let mut pins = Vec::with_capacity(4);
        for gate in &self.gates {
            pins.clear();
            pins.extend(gate.inputs.iter().map(|&i| values[i as usize]));
            values[gate.output as usize] = gate.kind.eval(&pins);
        }
        values
    }

    /// The switched capacitance for the input transition `(xi, xf)`
    /// (Eqs. 2–3): total load of all gates whose output rises.
    ///
    /// # Panics
    ///
    /// Panics if either pattern has the wrong width.
    pub fn switching_capacitance(&self, xi: &[bool], xf: &[bool]) -> Capacitance {
        let vi = self.eval(xi);
        let vf = self.eval(xf);
        let mut total = 0.0;
        for gate in &self.gates {
            let o = gate.output as usize;
            if !vi[o] && vf[o] {
                total += gate.load_ff;
            }
        }
        Capacitance(total)
    }

    /// Supply energy drawn for the transition, `e = Vdd²·C` (Eq. 1).
    pub fn energy(&self, xi: &[bool], xf: &[bool], vdd: Voltage) -> Energy {
        Energy::from_switched(self.switching_capacitance(xi, xf), vdd)
    }

    /// Word-parallel evaluation: bit `b` of every word is an independent
    /// simulation slot. Returns all signal words (inputs first, then gate
    /// outputs).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn eval_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "pattern width mismatch");
        let mut values = vec![0u64; self.num_signals];
        values[..inputs.len()].copy_from_slice(inputs);
        let mut pins = Vec::with_capacity(4);
        for gate in &self.gates {
            pins.clear();
            pins.extend(gate.inputs.iter().map(|&i| values[i as usize]));
            values[gate.output as usize] = gate.kind.eval_word(&pins);
        }
        values
    }

    /// Per-cycle switched capacitances for a pattern *sequence*.
    ///
    /// For `T` patterns this returns `T - 1` values: entry `t` is
    /// `C(pattern_t, pattern_{t+1})`. Internally the sequence is simulated
    /// 64 cycles per word; the rising-edge extraction costs one shift/mask
    /// pass per gate per word.
    ///
    /// # Panics
    ///
    /// Panics if any pattern has the wrong width or fewer than two patterns
    /// are supplied.
    pub fn switching_trace(&self, patterns: &[Vec<bool>]) -> Vec<Capacitance> {
        assert!(patterns.len() >= 2, "a trace needs at least two patterns");
        let t = patterns.len();
        let words = t.div_ceil(64);
        // Pack input signals: word w of input i holds cycles 64w..64w+63.
        let mut packed: Vec<Vec<u64>> = vec![vec![0u64; self.num_inputs]; words];
        for (cycle, p) in patterns.iter().enumerate() {
            assert_eq!(p.len(), self.num_inputs, "pattern width mismatch");
            let (w, b) = (cycle / 64, cycle % 64);
            for (i, &bit) in p.iter().enumerate() {
                if bit {
                    packed[w][i] |= 1u64 << b;
                }
            }
        }

        let mut energies = vec![0.0f64; t - 1];
        let mut prev_values: Option<Vec<u64>> = None;
        for (w, inputs) in packed.iter().enumerate() {
            let values = self.eval_words(inputs);
            let base = w * 64;
            let cycles_here = (t - base).min(64);
            for gate in &self.gates {
                let o = gate.output as usize;
                let v = values[o];
                // Transitions inside this word: cycle c -> c+1 is bit c vs
                // bit c+1.
                let mut rise = !v & (v >> 1);
                // Mask off transitions beyond the trace end.
                if cycles_here < 64 {
                    rise &= (1u64 << (cycles_here - 1)) - 1;
                }
                while rise != 0 {
                    let b = rise.trailing_zeros() as usize;
                    energies[base + b] += gate.load_ff;
                    rise &= rise - 1;
                }
                // Boundary transition from the previous word (its bit 63 to
                // our bit 0).
                if let Some(prev) = &prev_values {
                    let was = prev[o] >> 63 & 1;
                    let now = v & 1;
                    if was == 0 && now == 1 {
                        energies[base - 1] += gate.load_ff;
                    }
                }
            }
            prev_values = Some(values);
        }
        energies.into_iter().map(Capacitance).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charfree_netlist::benchmarks::{cm85, paper_unit};
    use charfree_netlist::Library;

    #[test]
    fn example1_switching_capacitance() {
        let sim = ZeroDelaySim::new(&paper_unit());
        // Fig. 2b rows.
        let c = |xi: [bool; 2], xf: [bool; 2]| sim.switching_capacitance(&xi, &xf).femtofarads();
        assert_eq!(c([true, true], [false, false]), 90.0);
        assert_eq!(c([false, false], [false, false]), 0.0);
        assert_eq!(c([false, false], [false, true]), 10.0);
        assert_eq!(c([false, false], [true, false]), 10.0);
        assert_eq!(c([false, false], [true, true]), 10.0);
    }

    #[test]
    fn exhaustive_lut_is_consistent() {
        // Recompute the full Fig. 2b LUT through Eq. 4 semantics by hand.
        let sim = ZeroDelaySim::new(&paper_unit());
        for xi_bits in 0..4u32 {
            for xf_bits in 0..4u32 {
                let xi = [xi_bits & 1 != 0, xi_bits & 2 != 0];
                let xf = [xf_bits & 1 != 0, xf_bits & 2 != 0];
                let g = |x: [bool; 2]| [!x[0], !x[1], x[0] || x[1]];
                let (gi, gf) = (g(xi), g(xf));
                let loads = [40.0, 50.0, 10.0];
                let want: f64 = (0..3).filter(|&j| !gi[j] && gf[j]).map(|j| loads[j]).sum();
                assert_eq!(
                    sim.switching_capacitance(&xi, &xf).femtofarads(),
                    want,
                    "xi={xi_bits:02b} xf={xf_bits:02b}"
                );
            }
        }
    }

    #[test]
    fn energy_uses_vdd_squared() {
        let sim = ZeroDelaySim::new(&paper_unit());
        let e = sim.energy(&[true, true], &[false, false], Voltage(2.0));
        assert_eq!(e.femtojoules(), 4.0 * 90.0);
    }

    #[test]
    fn word_eval_matches_scalar() {
        let lib = Library::test_library();
        let sim = ZeroDelaySim::new(&cm85(&lib));
        let n = sim.num_inputs();
        // 64 random-ish patterns per word.
        let mut words = vec![0u64; n];
        let mut scalars: Vec<Vec<bool>> = Vec::new();
        let mut state = 0xdead_beefu64;
        for slot in 0..64 {
            let mut pat = Vec::with_capacity(n);
            for word in words.iter_mut() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let bit = state >> 62 & 1 == 1;
                pat.push(bit);
                if bit {
                    *word |= 1u64 << slot;
                }
            }
            scalars.push(pat);
        }
        let word_values = sim.eval_words(&words);
        for (slot, pat) in scalars.iter().enumerate() {
            let scalar_values = sim.eval(pat);
            for (sig, &wv) in word_values.iter().enumerate() {
                assert_eq!(
                    wv >> slot & 1 == 1,
                    scalar_values[sig],
                    "slot={slot} sig={sig}"
                );
            }
        }
    }

    #[test]
    fn trace_matches_pairwise_evaluation() {
        let lib = Library::test_library();
        let sim = ZeroDelaySim::new(&cm85(&lib));
        let n = sim.num_inputs();
        let mut state = 0x1234u64;
        let patterns: Vec<Vec<bool>> = (0..150)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 62 & 1 == 1
                    })
                    .collect()
            })
            .collect();
        let trace = sim.switching_trace(&patterns);
        assert_eq!(trace.len(), patterns.len() - 1);
        for t in 0..patterns.len() - 1 {
            let want = sim.switching_capacitance(&patterns[t], &patterns[t + 1]);
            assert!(
                (trace[t].femtofarads() - want.femtofarads()).abs() < 1e-9,
                "cycle {t}"
            );
        }
    }

    #[test]
    fn trace_word_boundary_is_exact() {
        // Length 65/66 traces exercise the word boundary at cycle 63→64.
        let sim = ZeroDelaySim::new(&paper_unit());
        for len in [2usize, 63, 64, 65, 66, 130] {
            let patterns: Vec<Vec<bool>> = (0..len).map(|t| vec![t % 2 == 0, t % 3 == 0]).collect();
            let trace = sim.switching_trace(&patterns);
            for t in 0..len - 1 {
                let want = sim.switching_capacitance(&patterns[t], &patterns[t + 1]);
                assert_eq!(trace[t], want, "len={len} cycle={t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let sim = ZeroDelaySim::new(&paper_unit());
        let _ = sim.eval(&[true]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn short_trace_panics() {
        let sim = ZeroDelaySim::new(&paper_unit());
        let _ = sim.switching_trace(&[vec![false, false]]);
    }
}
