//! Per-cycle energy traces and their summary statistics.

use charfree_netlist::units::{Capacitance, Energy, Power, Voltage};

/// A per-cycle energy trace produced by simulating a pattern sequence.
///
/// Cycle `t` covers the transition from pattern `t` to pattern `t+1`;
/// with the paper's notation, `p = e / T` where `T` is the cycle period.
///
/// # Examples
///
/// ```
/// use charfree_netlist::units::{Capacitance, Voltage};
/// use charfree_sim::EnergyTrace;
///
/// let caps = vec![Capacitance(90.0), Capacitance(0.0), Capacitance(10.0)];
/// let trace = EnergyTrace::from_switched(&caps, Voltage(1.0), 10.0);
/// assert!((trace.average_energy().femtojoules() - 100.0 / 3.0).abs() < 1e-12);
/// assert_eq!(trace.peak_energy().femtojoules(), 90.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyTrace {
    energies: Vec<Energy>,
    period_ns: f64,
}

impl EnergyTrace {
    /// Builds a trace from per-cycle switched capacitances at supply `vdd`
    /// and cycle period `period_ns` (nanoseconds).
    ///
    /// # Panics
    ///
    /// Panics if `period_ns <= 0` or the trace is empty.
    pub fn from_switched(caps: &[Capacitance], vdd: Voltage, period_ns: f64) -> Self {
        assert!(period_ns > 0.0, "period must be positive");
        assert!(!caps.is_empty(), "empty trace");
        EnergyTrace {
            energies: caps
                .iter()
                .map(|&c| Energy::from_switched(c, vdd))
                .collect(),
            period_ns,
        }
    }

    /// Number of cycles.
    pub fn len(&self) -> usize {
        self.energies.len()
    }

    /// `true` if the trace has no cycles (cannot be constructed publicly).
    pub fn is_empty(&self) -> bool {
        self.energies.is_empty()
    }

    /// Per-cycle energies.
    pub fn energies(&self) -> &[Energy] {
        &self.energies
    }

    /// Mean per-cycle energy.
    pub fn average_energy(&self) -> Energy {
        Energy(self.energies.iter().map(|e| e.femtojoules()).sum::<f64>() / self.len() as f64)
    }

    /// Largest single-cycle energy (peak).
    pub fn peak_energy(&self) -> Energy {
        Energy(
            self.energies
                .iter()
                .map(|e| e.femtojoules())
                .fold(f64::NEG_INFINITY, f64::max),
        )
    }

    /// Total energy over the whole trace.
    pub fn total_energy(&self) -> Energy {
        Energy(self.energies.iter().map(|e| e.femtojoules()).sum())
    }

    /// Mean power, `avg(e)/T`.
    pub fn average_power(&self) -> Power {
        self.average_energy() / self.period_ns
    }

    /// Peak power, `max(e)/T`.
    pub fn peak_power(&self) -> Power {
        self.peak_energy() / self.period_ns
    }

    /// The largest total energy of any `window` consecutive cycles — the
    /// thermally relevant peak (a single hot cycle matters less than a hot
    /// burst).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn windowed_peak_energy(&self, window: usize) -> Energy {
        assert!(window >= 1, "window must be at least 1");
        let window = window.min(self.len());
        let mut sum: f64 = self.energies[..window]
            .iter()
            .map(|e| e.femtojoules())
            .sum();
        let mut best = sum;
        for t in window..self.len() {
            sum += self.energies[t].femtojoules() - self.energies[t - window].femtojoules();
            best = best.max(sum);
        }
        Energy(best)
    }

    /// Fraction of cycles whose energy is at least `threshold`.
    pub fn duty_above(&self, threshold: Energy) -> f64 {
        let hits = self
            .energies
            .iter()
            .filter(|e| e.femtojoules() >= threshold.femtojoules())
            .count();
        hits as f64 / self.len() as f64
    }

    /// Histogram of per-cycle energies over `buckets` equal-width bins
    /// spanning `[0, peak]`. Returns `(bin upper edge, count)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0`.
    pub fn histogram(&self, buckets: usize) -> Vec<(Energy, usize)> {
        assert!(buckets >= 1, "need at least one bucket");
        let peak = self.peak_energy().femtojoules().max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; buckets];
        for e in &self.energies {
            let idx = ((e.femtojoules() / peak * buckets as f64) as usize).min(buckets - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (Energy(peak * (i + 1) as f64 / buckets as f64), c))
            .collect()
    }

    /// Writes the trace as CSV (`cycle,energy_fj,power_uw` with a header).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_csv<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        writeln!(w, "cycle,energy_fj,power_uw")?;
        for (t, e) in self.energies.iter().enumerate() {
            writeln!(
                w,
                "{t},{:.6},{:.6}",
                e.femtojoules(),
                e.femtojoules() / self.period_ns
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> EnergyTrace {
        EnergyTrace::from_switched(
            &[Capacitance(90.0), Capacitance(0.0), Capacitance(10.0)],
            Voltage(1.0),
            10.0,
        )
    }

    #[test]
    fn summary_statistics() {
        let t = trace();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.total_energy().femtojoules(), 100.0);
        assert_eq!(t.peak_energy().femtojoules(), 90.0);
        assert!((t.average_power().microwatts() - 100.0 / 3.0 / 10.0).abs() < 1e-12);
        assert_eq!(t.peak_power().microwatts(), 9.0);
        assert_eq!(t.energies().len(), 3);
    }

    #[test]
    fn vdd_scales_quadratically() {
        let t1 = EnergyTrace::from_switched(&[Capacitance(10.0)], Voltage(1.0), 1.0);
        let t2 = EnergyTrace::from_switched(&[Capacitance(10.0)], Voltage(2.0), 1.0);
        assert_eq!(
            t2.total_energy().femtojoules(),
            4.0 * t1.total_energy().femtojoules()
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = EnergyTrace::from_switched(&[Capacitance(1.0)], Voltage(1.0), 0.0);
    }
}

#[cfg(test)]
mod analysis_tests {
    use super::*;

    fn ramp() -> EnergyTrace {
        let caps: Vec<Capacitance> = (0..10).map(|i| Capacitance(i as f64)).collect();
        EnergyTrace::from_switched(&caps, Voltage(1.0), 1.0)
    }

    #[test]
    fn windowed_peak_finds_the_hot_burst() {
        let t = ramp();
        // Best 3-window is the last three cycles: 7 + 8 + 9.
        assert_eq!(t.windowed_peak_energy(3).femtojoules(), 24.0);
        // Window of 1 is the plain peak; oversized windows clamp to total.
        assert_eq!(t.windowed_peak_energy(1), t.peak_energy());
        assert_eq!(t.windowed_peak_energy(100), t.total_energy());
    }

    #[test]
    fn duty_cycle_fraction() {
        let t = ramp();
        assert_eq!(t.duty_above(Energy(5.0)), 0.5);
        assert_eq!(t.duty_above(Energy(0.0)), 1.0);
        assert_eq!(t.duty_above(Energy(100.0)), 0.0);
    }

    #[test]
    fn histogram_partitions_all_cycles() {
        let t = ramp();
        let h = t.histogram(3);
        assert_eq!(h.len(), 3);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, t.len());
        // Upper edges ascend to the peak.
        assert_eq!(h[2].0, t.peak_energy());
        assert!(h[0].0 < h[1].0 && h[1].0 < h[2].0);
    }

    #[test]
    fn csv_round_trip_shape() {
        let t = ramp();
        let mut buf = Vec::new();
        t.write_csv(&mut buf).expect("writes");
        let text = String::from_utf8(buf).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), t.len() + 1);
        assert!(lines[0].starts_with("cycle,"));
        assert!(lines[1].starts_with("0,"));
    }
}
