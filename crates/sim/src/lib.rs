//! # charfree-sim — golden-model simulation and pattern sources
//!
//! Simulation support for *"Characterization-Free Behavioral Power
//! Modeling"* (DATE'98):
//!
//! * [`ZeroDelaySim`] — the paper's golden model: zero-delay gate-level
//!   evaluation and the switched capacitance `C(xⁱ,xᶠ)` of Eqs. 2–3, with
//!   scalar, 64-way word-parallel, and whole-trace entry points;
//! * [`UnitDelaySim`] — a unit-delay simulator quantifying the glitch
//!   (parasitic) energy the zero-delay model deliberately ignores;
//! * [`MarkovSource`] — per-bit Markov pattern generators hitting any
//!   feasible `(sp, st)` signal/transition-probability target, plus the
//!   experiment grid [`statistics_grid`] and [`ExhaustivePairs`];
//! * [`EnergyTrace`] — per-cycle energy traces with average/peak power.
//!
//! ## Example
//!
//! ```
//! use charfree_netlist::{benchmarks, Library};
//! use charfree_sim::{MarkovSource, ZeroDelaySim};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let library = Library::test_library();
//! let cm85 = benchmarks::cm85(&library);
//! let sim = ZeroDelaySim::new(&cm85);
//! let mut source = MarkovSource::new(cm85.num_inputs(), 0.5, 0.5, 1)?;
//! let patterns = source.sequence(1000);
//! let trace = sim.switching_trace(&patterns);
//! assert_eq!(trace.len(), 999);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `.unwrap()` is banned crate-wide; `.expect()` remains available for
// invariants with a stated justification, and tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod burst;
mod patterns;
mod trace;
mod unit_delay;
mod zero_delay;

pub use burst::BurstSource;
pub use patterns::{
    measure_statistics, statistics_grid, ExhaustivePairs, InvalidStatisticsError, MarkovSource,
};
pub use trace::EnergyTrace;
pub use unit_delay::{UnitDelayError, UnitDelayReport, UnitDelaySim};
pub use zero_delay::ZeroDelaySim;
