//! Input-pattern sources with controlled statistics.
//!
//! The paper sweeps input statistics through two parameters: the average
//! **signal probability** `sp` (probability a bit is 1) and the average
//! **transition probability** `st` (probability a bit flips between
//! consecutive patterns). A per-bit two-state Markov chain realizes any
//! feasible `(sp, st)` pair exactly in expectation:
//!
//! * `P(0→1) = st / (2(1−sp))`, `P(1→0) = st / (2·sp)`
//!
//! which has stationary probability `sp` and flip probability `st`.
//! Feasibility requires `st ≤ 2·sp` and `st ≤ 2(1−sp)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Error for infeasible `(sp, st)` combinations.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidStatisticsError {
    sp: f64,
    st: f64,
}

impl fmt::Display for InvalidStatisticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "infeasible input statistics sp={}, st={} (need 0<sp<1, 0<=st<=2·min(sp,1-sp))",
            self.sp, self.st
        )
    }
}

impl Error for InvalidStatisticsError {}

/// A per-bit Markov pattern source realizing target `(sp, st)` statistics.
///
/// # Examples
///
/// ```
/// use charfree_sim::MarkovSource;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut src = MarkovSource::new(8, 0.5, 0.2, 42)?;
/// let seq = src.sequence(10_000);
/// let (sp, st) = charfree_sim::measure_statistics(&seq);
/// assert!((sp - 0.5).abs() < 0.03);
/// assert!((st - 0.2).abs() < 0.03);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MarkovSource {
    num_bits: usize,
    p01: f64,
    p10: f64,
    sp: f64,
    state: Vec<bool>,
    rng: StdRng,
}

impl MarkovSource {
    /// Creates a source for `num_bits`-wide patterns with target signal
    /// probability `sp` and transition probability `st`, seeded
    /// deterministically.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStatisticsError`] if `sp ∉ (0,1)` or
    /// `st > 2·min(sp, 1−sp)` or `st < 0`.
    pub fn new(
        num_bits: usize,
        sp: f64,
        st: f64,
        seed: u64,
    ) -> Result<Self, InvalidStatisticsError> {
        if !(sp > 0.0 && sp < 1.0) || st < 0.0 || st > 2.0 * sp.min(1.0 - sp) {
            return Err(InvalidStatisticsError { sp, st });
        }
        let p01 = st / (2.0 * (1.0 - sp));
        let p10 = st / (2.0 * sp);
        let mut rng = StdRng::seed_from_u64(seed);
        // Draw the initial state from the stationary distribution.
        let state = (0..num_bits).map(|_| rng.gen_bool(sp)).collect();
        Ok(MarkovSource {
            num_bits,
            p01,
            p10,
            sp,
            state,
            rng,
        })
    }

    /// Pattern width.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    /// Target signal probability.
    pub fn sp(&self) -> f64 {
        self.sp
    }

    /// Advances the chain and returns the next pattern.
    pub fn next_pattern(&mut self) -> Vec<bool> {
        for bit in &mut self.state {
            let flip = if *bit {
                self.rng.gen_bool(self.p10)
            } else {
                self.rng.gen_bool(self.p01)
            };
            if flip {
                *bit = !*bit;
            }
        }
        self.state.clone()
    }

    /// Generates a sequence of `len` patterns (including the first drawn
    /// state transitioned once — the sequence is stationary throughout).
    pub fn sequence(&mut self, len: usize) -> Vec<Vec<bool>> {
        (0..len).map(|_| self.next_pattern()).collect()
    }
}

/// Measures `(sp, st)` of a pattern sequence: the average fraction of ones
/// and the average fraction of flipped bits between consecutive patterns.
///
/// # Panics
///
/// Panics if `seq` is empty or patterns have inconsistent widths.
pub fn measure_statistics(seq: &[Vec<bool>]) -> (f64, f64) {
    assert!(!seq.is_empty(), "empty sequence");
    let width = seq[0].len();
    let mut ones = 0usize;
    let mut flips = 0usize;
    for (t, p) in seq.iter().enumerate() {
        assert_eq!(p.len(), width, "inconsistent pattern width");
        ones += p.iter().filter(|&&b| b).count();
        if t > 0 {
            flips += p.iter().zip(&seq[t - 1]).filter(|(a, b)| a != b).count();
        }
    }
    let sp = ones as f64 / (seq.len() * width) as f64;
    let st = if seq.len() > 1 {
        flips as f64 / ((seq.len() - 1) * width) as f64
    } else {
        0.0
    };
    (sp, st)
}

/// Iterator over **all** `(xⁱ, xᶠ)` transition pairs of an `n`-bit input —
/// the exhaustive enumeration the paper calls unfeasible for large `n`
/// (here used to verify models exactly on small circuits).
///
/// # Examples
///
/// ```
/// use charfree_sim::ExhaustivePairs;
/// let pairs: Vec<_> = ExhaustivePairs::new(2).collect();
/// assert_eq!(pairs.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct ExhaustivePairs {
    num_bits: u32,
    next: u64,
    total: u64,
}

impl ExhaustivePairs {
    /// All transition pairs over `num_bits` inputs (`4^num_bits` of them).
    ///
    /// # Panics
    ///
    /// Panics if `num_bits > 16` (the enumeration would exceed 2³² pairs).
    pub fn new(num_bits: u32) -> Self {
        assert!(
            num_bits <= 16,
            "exhaustive enumeration is 4^n; n > 16 unfeasible"
        );
        ExhaustivePairs {
            num_bits,
            next: 0,
            total: 1u64 << (2 * num_bits),
        }
    }
}

impl Iterator for ExhaustivePairs {
    type Item = (Vec<bool>, Vec<bool>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.total {
            return None;
        }
        let code = self.next;
        self.next += 1;
        let n = self.num_bits as usize;
        let xi = (0..n).map(|b| code >> b & 1 == 1).collect();
        let xf = (0..n).map(|b| code >> (n + b) & 1 == 1).collect();
        Some((xi, xf))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.total - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ExhaustivePairs {}

/// The grid of `(sp, st)` operating points used to evaluate out-of-sample
/// accuracy (Table 1 / Fig. 7a protocol): signal probabilities
/// `{0.2, 0.35, 0.5, 0.65, 0.8}` crossed with transition probabilities
/// `{0.1 … 0.9}`, filtered for Markov feasibility.
pub fn statistics_grid() -> Vec<(f64, f64)> {
    let sps = [0.2, 0.35, 0.5, 0.65, 0.8];
    let sts = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let mut grid = Vec::new();
    for &sp in &sps {
        for &st in &sts {
            if st <= 2.0 * f64::min(sp, 1.0 - sp) {
                grid.push((sp, st));
            }
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_hits_target_statistics() {
        for (sp, st) in [(0.5, 0.5), (0.5, 0.1), (0.3, 0.2), (0.8, 0.35), (0.5, 0.9)] {
            let mut src = MarkovSource::new(16, sp, st, 7).expect("feasible");
            let seq = src.sequence(20_000);
            let (msp, mst) = measure_statistics(&seq);
            assert!((msp - sp).abs() < 0.02, "sp target {sp} measured {msp}");
            assert!((mst - st).abs() < 0.02, "st target {st} measured {mst}");
        }
    }

    #[test]
    fn markov_rejects_infeasible() {
        assert!(MarkovSource::new(4, 0.0, 0.1, 0).is_err());
        assert!(MarkovSource::new(4, 1.0, 0.1, 0).is_err());
        assert!(MarkovSource::new(4, 0.1, 0.5, 0).is_err()); // st > 2*sp
        assert!(MarkovSource::new(4, 0.9, 0.5, 0).is_err()); // st > 2*(1-sp)
        assert!(MarkovSource::new(4, 0.5, -0.1, 0).is_err());
        let err = MarkovSource::new(4, 0.1, 0.5, 0).expect_err("infeasible");
        assert!(err.to_string().contains("infeasible"));
    }

    #[test]
    fn markov_is_deterministic_per_seed() {
        let mut a = MarkovSource::new(8, 0.5, 0.3, 99).expect("ok");
        let mut b = MarkovSource::new(8, 0.5, 0.3, 99).expect("ok");
        assert_eq!(a.sequence(100), b.sequence(100));
        let mut c = MarkovSource::new(8, 0.5, 0.3, 100).expect("ok");
        assert_ne!(a.sequence(100), c.sequence(100));
    }

    #[test]
    fn exhaustive_pairs_cover_everything() {
        let pairs: Vec<_> = ExhaustivePairs::new(3).collect();
        assert_eq!(pairs.len(), 64);
        let unique: std::collections::HashSet<_> = pairs.iter().cloned().collect();
        assert_eq!(unique.len(), 64);
        assert_eq!(ExhaustivePairs::new(3).len(), 64);
    }

    #[test]
    fn grid_is_feasible() {
        let grid = statistics_grid();
        assert!(grid.len() > 20);
        for (sp, st) in grid {
            assert!(MarkovSource::new(4, sp, st, 0).is_ok(), "({sp},{st})");
        }
        // The full (0.5, st) column is present for Fig. 7a.
        assert!(
            statistics_grid()
                .iter()
                .filter(|(sp, _)| *sp == 0.5)
                .count()
                >= 9
        );
    }

    #[test]
    fn measure_statistics_basics() {
        let seq = vec![vec![true, false], vec![false, false]];
        let (sp, st) = measure_statistics(&seq);
        assert_eq!(sp, 0.25);
        assert_eq!(st, 0.5);
    }
}
