//! Bursty (bimodal) workload sources.
//!
//! Real RT-level traffic is rarely stationary: buses idle for long
//! stretches and then burst. A [`BurstSource`] alternates between a
//! low-activity and a high-activity Markov regime with geometrically
//! distributed dwell times — the classic two-state MMPP-style workload —
//! which is exactly the situation where statically characterized power
//! models are furthest from their training distribution and the paper's
//! statistics-independent models shine.

use crate::patterns::{InvalidStatisticsError, MarkovSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-regime bursty pattern source.
///
/// # Examples
///
/// ```
/// use charfree_sim::BurstSource;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut src = BurstSource::new(8, (0.5, 0.05), (0.5, 0.8), 0.02, 0.1, 42)?;
/// let seq = src.sequence(5000);
/// let (_, st) = charfree_sim::measure_statistics(&seq);
/// assert!(st > 0.05 && st < 0.8, "blended activity, got {st}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BurstSource {
    idle: MarkovSource,
    burst: MarkovSource,
    /// Probability of leaving the idle regime per cycle.
    enter_burst: f64,
    /// Probability of leaving the burst regime per cycle.
    exit_burst: f64,
    in_burst: bool,
    rng: StdRng,
}

impl BurstSource {
    /// Creates a source whose idle regime has statistics `idle_stats =
    /// (sp, st)` and whose burst regime has `burst_stats`, switching with
    /// per-cycle probabilities `enter_burst` / `exit_burst`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidStatisticsError`] if either regime's statistics
    /// are Markov-infeasible.
    ///
    /// # Panics
    ///
    /// Panics if the regime-switching probabilities are outside `[0, 1]`.
    pub fn new(
        num_bits: usize,
        idle_stats: (f64, f64),
        burst_stats: (f64, f64),
        enter_burst: f64,
        exit_burst: f64,
        seed: u64,
    ) -> Result<Self, InvalidStatisticsError> {
        assert!(
            (0.0..=1.0).contains(&enter_burst) && (0.0..=1.0).contains(&exit_burst),
            "switching probabilities must be in [0,1]"
        );
        Ok(BurstSource {
            idle: MarkovSource::new(num_bits, idle_stats.0, idle_stats.1, seed ^ 0x1d1e)?,
            burst: MarkovSource::new(num_bits, burst_stats.0, burst_stats.1, seed ^ 0xb4b4)?,
            enter_burst,
            exit_burst,
            in_burst: false,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// `true` while the source is in its burst regime.
    pub fn in_burst(&self) -> bool {
        self.in_burst
    }

    /// Advances one cycle and returns the next pattern.
    pub fn next_pattern(&mut self) -> Vec<bool> {
        let flip = if self.in_burst {
            self.rng.gen_bool(self.exit_burst)
        } else {
            self.rng.gen_bool(self.enter_burst)
        };
        if flip {
            self.in_burst = !self.in_burst;
        }
        // Both regimes advance so the hand-over keeps per-bit continuity
        // plausible; the active regime's pattern is emitted.
        let idle = self.idle.next_pattern();
        let burst = self.burst.next_pattern();
        if self.in_burst {
            burst
        } else {
            idle
        }
    }

    /// Generates `len` patterns.
    pub fn sequence(&mut self, len: usize) -> Vec<Vec<bool>> {
        (0..len).map(|_| self.next_pattern()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::measure_statistics;

    #[test]
    fn blends_the_two_regimes() {
        let mut src =
            BurstSource::new(16, (0.5, 0.05), (0.5, 0.7), 0.05, 0.05, 3).expect("feasible");
        let seq = src.sequence(20_000);
        let (sp, st) = measure_statistics(&seq);
        assert!((sp - 0.5).abs() < 0.05, "sp stays near 0.5, got {sp}");
        // Expected st ≈ mean of regimes at equal dwell ≈ 0.37, plus the
        // switching discontinuities; loose band.
        assert!(st > 0.15 && st < 0.6, "blended st, got {st}");
    }

    #[test]
    fn dwell_times_follow_switch_probabilities() {
        let mut src = BurstSource::new(4, (0.5, 0.1), (0.5, 0.9), 0.01, 0.2, 9).expect("feasible");
        let mut bursts = 0usize;
        let mut burst_cycles = 0usize;
        let mut prev = false;
        for _ in 0..50_000 {
            let _ = src.next_pattern();
            if src.in_burst() {
                burst_cycles += 1;
                if !prev {
                    bursts += 1;
                }
            }
            prev = src.in_burst();
        }
        assert!(bursts > 100, "plenty of bursts, got {bursts}");
        let mean_dwell = burst_cycles as f64 / bursts as f64;
        // Geometric with p = 0.2 -> mean 5.
        assert!(
            (mean_dwell - 5.0).abs() < 1.0,
            "mean burst dwell ~5, got {mean_dwell}"
        );
    }

    #[test]
    fn infeasible_regimes_rejected() {
        assert!(BurstSource::new(4, (0.1, 0.9), (0.5, 0.5), 0.1, 0.1, 0).is_err());
        assert!(BurstSource::new(4, (0.5, 0.5), (0.9, 0.9), 0.1, 0.1, 0).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = BurstSource::new(8, (0.5, 0.1), (0.5, 0.8), 0.1, 0.1, 7).expect("ok");
        let mut b = BurstSource::new(8, (0.5, 0.1), (0.5, 0.8), 0.1, 0.1, 7).expect("ok");
        assert_eq!(a.sequence(200), b.sequence(200));
    }
}
