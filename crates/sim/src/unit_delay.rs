//! Unit-delay gate-level simulation with glitch accounting.
//!
//! The paper deliberately restricts its golden model to **zero delay**,
//! classifying spurious transitions (glitches) as *parasitic* phenomena
//! outside the analytical model's scope (Section 2). This module provides a
//! unit-delay simulator so that gap can be *measured*: every gate switches
//! one time unit after its inputs, so unequal path depths create glitches,
//! and each rising edge — spurious or not — charges the gate's load.
//!
//! For any transition, the unit-delay switched capacitance is ≥ the
//! zero-delay one (a net final rise implies at least one rising edge), so
//! the difference is exactly the glitch energy the analytical model cannot
//! see.

use charfree_netlist::units::Capacitance;
use charfree_netlist::{CellKind, Netlist};

/// Result of one unit-delay transition simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitDelayReport {
    /// Total capacitance charged across *all* rising edges.
    pub switched: Capacitance,
    /// Capacitance charged by gates whose final value differs from a rise —
    /// i.e. the part a zero-delay model cannot attribute (glitches).
    pub glitch: Capacitance,
    /// Number of simulation time steps until the circuit settled.
    pub settle_time: u32,
    /// Total number of rising edges observed.
    pub rising_edges: u32,
}

/// A compiled unit-delay simulator.
///
/// # Examples
///
/// ```
/// use charfree_netlist::benchmarks::paper_unit;
/// use charfree_sim::{UnitDelaySim, ZeroDelaySim};
///
/// let unit = paper_unit();
/// let ud = UnitDelaySim::new(&unit);
/// let zd = ZeroDelaySim::new(&unit);
/// let report = ud.simulate_transition(&[true, true], &[false, false]);
/// let zero = zd.switching_capacitance(&[true, true], &[false, false]);
/// assert!(report.switched >= zero);
/// ```
#[derive(Debug, Clone)]
pub struct UnitDelaySim {
    num_inputs: usize,
    num_signals: usize,
    gates: Vec<(CellKind, Vec<u32>, u32, f64)>,
    max_steps: u32,
}

impl UnitDelaySim {
    /// Compiles `netlist` for unit-delay simulation.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn new(netlist: &Netlist) -> Self {
        netlist.validate().expect("netlist must be valid");
        let mut remap = vec![u32::MAX; netlist.num_signals()];
        for (i, &sig) in netlist.inputs().iter().enumerate() {
            remap[sig.index()] = i as u32;
        }
        let mut next = netlist.num_inputs() as u32;
        for (_, gate) in netlist.gates() {
            remap[gate.output().index()] = next;
            next += 1;
        }
        let gates = netlist
            .gates()
            .map(|(_, g)| {
                (
                    g.kind(),
                    g.inputs().iter().map(|s| remap[s.index()]).collect(),
                    remap[g.output().index()],
                    g.load().femtofarads(),
                )
            })
            .collect();
        UnitDelaySim {
            num_inputs: netlist.num_inputs(),
            num_signals: netlist.num_signals(),
            gates,
            // A combinational unit-delay network settles within `depth`
            // steps; use a generous bound and assert on it.
            max_steps: netlist.depth() + 2,
        }
    }

    fn settle(&self, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.num_signals];
        values[..inputs.len()].copy_from_slice(inputs);
        // Zero-delay settling gives the steady state directly (gates are in
        // topological order).
        let mut pins = Vec::with_capacity(4);
        for (kind, ins, out, _) in &self.gates {
            pins.clear();
            pins.extend(ins.iter().map(|&i| values[i as usize]));
            values[*out as usize] = kind.eval(&pins);
        }
        values
    }

    /// Simulates the transition from settled state `xi` to applied inputs
    /// `xf`, stepping every gate with one unit of delay, until the network
    /// settles.
    ///
    /// # Panics
    ///
    /// Panics if pattern widths are wrong.
    pub fn simulate_transition(&self, xi: &[bool], xf: &[bool]) -> UnitDelayReport {
        assert_eq!(xi.len(), self.num_inputs, "pattern width mismatch");
        assert_eq!(xf.len(), self.num_inputs, "pattern width mismatch");
        let mut values = self.settle(xi);
        let initial: Vec<bool> = values.clone();
        // Apply the new inputs instantaneously at t = 0.
        values[..xf.len()].copy_from_slice(xf);

        let mut switched = 0.0f64;
        let mut rising_edges = 0u32;
        let mut settle_time = 0u32;
        let mut pins = Vec::with_capacity(4);
        for step in 1..=self.max_steps {
            let mut next = values.clone();
            let mut changed = false;
            for (kind, ins, out, load) in &self.gates {
                pins.clear();
                pins.extend(ins.iter().map(|&i| values[i as usize]));
                let v = kind.eval(&pins);
                let o = *out as usize;
                if v != values[o] {
                    changed = true;
                    if v {
                        switched += load;
                        rising_edges += 1;
                    }
                }
                next[o] = v;
            }
            values = next;
            if !changed {
                settle_time = step - 1;
                break;
            }
            assert!(
                step < self.max_steps,
                "unit-delay network failed to settle within depth bound"
            );
        }

        // Zero-delay attribution: gates that finally rose.
        let mut zero_delay = 0.0f64;
        for (_, _, out, load) in &self.gates {
            let o = *out as usize;
            if !initial[o] && values[o] {
                zero_delay += load;
            }
        }
        UnitDelayReport {
            switched: Capacitance(switched),
            glitch: Capacitance(switched - zero_delay),
            settle_time,
            rising_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZeroDelaySim;
    use charfree_netlist::benchmarks::{self, paper_unit};
    use charfree_netlist::{CellKind, Library};

    #[test]
    fn no_glitches_on_balanced_unit() {
        // The Fig. 2 unit is depth 1 — no reconvergent paths, no glitches.
        let u = paper_unit();
        let ud = UnitDelaySim::new(&u);
        let zd = ZeroDelaySim::new(&u);
        for xi_bits in 0..4u32 {
            for xf_bits in 0..4u32 {
                let xi = [xi_bits & 1 != 0, xi_bits & 2 != 0];
                let xf = [xf_bits & 1 != 0, xf_bits & 2 != 0];
                let r = ud.simulate_transition(&xi, &xf);
                assert_eq!(r.glitch, Capacitance(0.0));
                assert_eq!(r.switched, zd.switching_capacitance(&xi, &xf));
            }
        }
    }

    #[test]
    fn reconvergent_path_glitches() {
        // y = a XOR (a inverted twice) is constant 0 but glitches when a
        // rises: the direct path switches the XOR before the 2-inverter
        // path catches up.
        let mut n = charfree_netlist::Netlist::new("glitchy");
        let a = n.add_input("a").expect("fresh");
        let i1 = n.add_gate(CellKind::Inv, &[a]).expect("ok");
        let i2 = n.add_gate(CellKind::Inv, &[i1]).expect("ok");
        let y = n.add_gate(CellKind::Xor2, &[a, i2]).expect("ok");
        n.mark_output(y).expect("ok");
        n.annotate_loads(&Library::test_library());

        let ud = UnitDelaySim::new(&n);
        let r = ud.simulate_transition(&[false], &[true]);
        assert!(
            r.glitch.femtofarads() > 0.0,
            "rising input must glitch the XOR: {r:?}"
        );
        // The zero-delay model sees nothing on the XOR output (0 -> 0).
        let zd = ZeroDelaySim::new(&n);
        let z = zd.switching_capacitance(&[false], &[true]);
        assert!(r.switched > z);
    }

    #[test]
    fn unit_delay_dominates_zero_delay_everywhere() {
        let lib = Library::test_library();
        let n = benchmarks::cm85(&lib);
        let ud = UnitDelaySim::new(&n);
        let zd = ZeroDelaySim::new(&n);
        let mut state = 77u64;
        let mut glitchy = 0usize;
        for _ in 0..200 {
            let mut next_pattern = || -> Vec<bool> {
                (0..11)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 62 & 1 == 1
                    })
                    .collect()
            };
            let xi = next_pattern();
            let xf = next_pattern();
            let r = ud.simulate_transition(&xi, &xf);
            let z = zd.switching_capacitance(&xi, &xf);
            assert!(
                r.switched.femtofarads() >= z.femtofarads() - 1e-9,
                "unit-delay must dominate"
            );
            assert!(r.glitch.femtofarads() >= -1e-9);
            if r.glitch.femtofarads() > 0.0 {
                glitchy += 1;
            }
        }
        assert!(glitchy > 0, "cm85 has unbalanced paths; some glitches expected");
    }

    #[test]
    fn settles_within_depth() {
        let lib = Library::test_library();
        let n = benchmarks::parity(&lib);
        let ud = UnitDelaySim::new(&n);
        let r = ud.simulate_transition(&vec![false; 16], &vec![true; 16]);
        assert!(r.settle_time <= n.depth() + 1);
    }
}
