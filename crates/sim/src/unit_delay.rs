//! Unit-delay gate-level simulation with glitch accounting.
//!
//! The paper deliberately restricts its golden model to **zero delay**,
//! classifying spurious transitions (glitches) as *parasitic* phenomena
//! outside the analytical model's scope (Section 2). This module provides a
//! unit-delay simulator so that gap can be *measured*: every gate switches
//! one time unit after its inputs, so unequal path depths create glitches,
//! and each rising edge — spurious or not — charges the gate's load.
//!
//! For any transition, the unit-delay switched capacitance is ≥ the
//! zero-delay one (a net final rise implies at least one rising edge), so
//! the difference is exactly the glitch energy the analytical model cannot
//! see.

use charfree_netlist::units::Capacitance;
use charfree_netlist::{CellKind, Netlist};
use std::error::Error;
use std::fmt;

/// Errors produced by unit-delay simulation.
///
/// A valid combinational netlist always settles within its depth bound, so
/// these only fire on malformed inputs, on netlists with feedback smuggled
/// past validation, or when the caller tightens the bounds via
/// [`UnitDelaySim::with_max_steps`] / [`UnitDelaySim::with_max_events`]
/// (e.g. as a fault-injection hook in tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitDelayError {
    /// The pattern width does not match the netlist's input count.
    PatternWidth {
        /// Number of primary inputs the netlist has.
        expected: usize,
        /// Number of bits the caller supplied.
        got: usize,
    },
    /// The network did not reach a fixed point within the step bound —
    /// the signature of (emulated) feedback or oscillation.
    NonSettling {
        /// The step bound that was exhausted.
        max_steps: u32,
    },
    /// The total number of value-change events exceeded the configured
    /// cap — the event-queue analogue of an arena overflow.
    EventOverflow {
        /// The event cap that was exceeded.
        max_events: u64,
    },
}

impl fmt::Display for UnitDelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitDelayError::PatternWidth { expected, got } => {
                write!(
                    f,
                    "pattern width mismatch: expected {expected} bits, got {got}"
                )
            }
            UnitDelayError::NonSettling { max_steps } => write!(
                f,
                "unit-delay network failed to settle within {max_steps} steps"
            ),
            UnitDelayError::EventOverflow { max_events } => {
                write!(f, "event count exceeded the cap of {max_events}")
            }
        }
    }
}

impl Error for UnitDelayError {}

/// Result of one unit-delay transition simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitDelayReport {
    /// Total capacitance charged across *all* rising edges.
    pub switched: Capacitance,
    /// Capacitance charged by gates whose final value differs from a rise —
    /// i.e. the part a zero-delay model cannot attribute (glitches).
    pub glitch: Capacitance,
    /// Number of simulation time steps until the circuit settled.
    pub settle_time: u32,
    /// Total number of rising edges observed.
    pub rising_edges: u32,
}

/// A compiled unit-delay simulator.
///
/// # Examples
///
/// ```
/// use charfree_netlist::benchmarks::paper_unit;
/// use charfree_sim::{UnitDelaySim, ZeroDelaySim};
///
/// let unit = paper_unit();
/// let ud = UnitDelaySim::new(&unit);
/// let zd = ZeroDelaySim::new(&unit);
/// let report = ud.simulate_transition(&[true, true], &[false, false]);
/// let zero = zd.switching_capacitance(&[true, true], &[false, false]);
/// assert!(report.switched >= zero);
/// ```
#[derive(Debug, Clone)]
pub struct UnitDelaySim {
    num_inputs: usize,
    num_signals: usize,
    gates: Vec<(CellKind, Vec<u32>, u32, f64)>,
    max_steps: u32,
    max_events: u64,
}

impl UnitDelaySim {
    /// Compiles `netlist` for unit-delay simulation.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails validation.
    pub fn new(netlist: &Netlist) -> Self {
        netlist.validate().expect("netlist must be valid");
        let mut remap = vec![u32::MAX; netlist.num_signals()];
        for (i, &sig) in netlist.inputs().iter().enumerate() {
            remap[sig.index()] = i as u32;
        }
        for (next, (_, gate)) in (netlist.num_inputs() as u32..).zip(netlist.gates()) {
            remap[gate.output().index()] = next;
        }
        let gates = netlist
            .gates()
            .map(|(_, g)| {
                (
                    g.kind(),
                    g.inputs().iter().map(|s| remap[s.index()]).collect(),
                    remap[g.output().index()],
                    g.load().femtofarads(),
                )
            })
            .collect();
        UnitDelaySim {
            num_inputs: netlist.num_inputs(),
            num_signals: netlist.num_signals(),
            gates,
            // A combinational unit-delay network settles within `depth`
            // steps; use a generous bound and report non-settlement as an
            // error rather than asserting.
            max_steps: netlist.depth() + 2,
            max_events: u64::MAX,
        }
    }

    /// Overrides the settling bound (default: netlist depth + 2).
    ///
    /// Lowering it below the true settling time makes
    /// [`try_simulate_transition`](Self::try_simulate_transition) return
    /// [`UnitDelayError::NonSettling`] — useful for exercising the error
    /// path without constructing a feedback netlist.
    #[must_use]
    pub fn with_max_steps(mut self, max_steps: u32) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Caps the total number of value-change events per transition
    /// (default: unlimited). Exceeding it yields
    /// [`UnitDelayError::EventOverflow`].
    #[must_use]
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }

    fn settle(&self, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.num_signals];
        values[..inputs.len()].copy_from_slice(inputs);
        // Zero-delay settling gives the steady state directly (gates are in
        // topological order).
        let mut pins = Vec::with_capacity(4);
        for (kind, ins, out, _) in &self.gates {
            pins.clear();
            pins.extend(ins.iter().map(|&i| values[i as usize]));
            values[*out as usize] = kind.eval(&pins);
        }
        values
    }

    /// Simulates the transition from settled state `xi` to applied inputs
    /// `xf`, stepping every gate with one unit of delay, until the network
    /// settles.
    ///
    /// Infallible convenience wrapper over
    /// [`try_simulate_transition`](Self::try_simulate_transition).
    ///
    /// # Panics
    ///
    /// Panics if pattern widths are wrong, the network does not settle, or
    /// the event cap is exceeded.
    pub fn simulate_transition(&self, xi: &[bool], xf: &[bool]) -> UnitDelayReport {
        self.try_simulate_transition(xi, xf)
            .unwrap_or_else(|e| panic!("unit-delay simulation failed: {e}"))
    }

    /// Fallible form of [`simulate_transition`](Self::simulate_transition):
    /// returns an error instead of panicking when the pattern width is
    /// wrong, the network fails to settle within the step bound (feedback
    /// or oscillation), or the value-change event count exceeds the cap.
    ///
    /// # Errors
    ///
    /// See [`UnitDelayError`].
    pub fn try_simulate_transition(
        &self,
        xi: &[bool],
        xf: &[bool],
    ) -> Result<UnitDelayReport, UnitDelayError> {
        for pattern in [xi, xf] {
            if pattern.len() != self.num_inputs {
                return Err(UnitDelayError::PatternWidth {
                    expected: self.num_inputs,
                    got: pattern.len(),
                });
            }
        }
        let mut values = self.settle(xi);
        let initial: Vec<bool> = values.clone();
        // Apply the new inputs instantaneously at t = 0.
        values[..xf.len()].copy_from_slice(xf);

        let mut switched = 0.0f64;
        let mut rising_edges = 0u32;
        let mut events = 0u64;
        let mut settled = None;
        let mut pins = Vec::with_capacity(4);
        for step in 1..=self.max_steps {
            let mut next = values.clone();
            let mut changed = false;
            for (kind, ins, out, load) in &self.gates {
                pins.clear();
                pins.extend(ins.iter().map(|&i| values[i as usize]));
                let v = kind.eval(&pins);
                let o = *out as usize;
                if v != values[o] {
                    changed = true;
                    events += 1;
                    if v {
                        switched += load;
                        rising_edges += 1;
                    }
                }
                next[o] = v;
            }
            values = next;
            if events > self.max_events {
                return Err(UnitDelayError::EventOverflow {
                    max_events: self.max_events,
                });
            }
            if !changed {
                settled = Some(step - 1);
                break;
            }
        }
        let Some(settle_time) = settled else {
            return Err(UnitDelayError::NonSettling {
                max_steps: self.max_steps,
            });
        };

        // Zero-delay attribution: gates that finally rose.
        let mut zero_delay = 0.0f64;
        for (_, _, out, load) in &self.gates {
            let o = *out as usize;
            if !initial[o] && values[o] {
                zero_delay += load;
            }
        }
        Ok(UnitDelayReport {
            switched: Capacitance(switched),
            glitch: Capacitance(switched - zero_delay),
            settle_time,
            rising_edges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ZeroDelaySim;
    use charfree_netlist::benchmarks::{self, paper_unit};
    use charfree_netlist::Library;

    #[test]
    fn no_glitches_on_balanced_unit() {
        // The Fig. 2 unit is depth 1 — no reconvergent paths, no glitches.
        let u = paper_unit();
        let ud = UnitDelaySim::new(&u);
        let zd = ZeroDelaySim::new(&u);
        for xi_bits in 0..4u32 {
            for xf_bits in 0..4u32 {
                let xi = [xi_bits & 1 != 0, xi_bits & 2 != 0];
                let xf = [xf_bits & 1 != 0, xf_bits & 2 != 0];
                let r = ud.simulate_transition(&xi, &xf);
                assert_eq!(r.glitch, Capacitance(0.0));
                assert_eq!(r.switched, zd.switching_capacitance(&xi, &xf));
            }
        }
    }

    #[test]
    fn reconvergent_path_glitches() {
        // y = a XOR (a inverted twice) is constant 0 but glitches when a
        // rises: the direct path switches the XOR before the 2-inverter
        // path catches up.
        let n = charfree_netlist::testutil::reconvergent_glitcher(&Library::test_library());

        let ud = UnitDelaySim::new(&n);
        let r = ud.simulate_transition(&[false], &[true]);
        assert!(
            r.glitch.femtofarads() > 0.0,
            "rising input must glitch the XOR: {r:?}"
        );
        // The zero-delay model sees nothing on the XOR output (0 -> 0).
        let zd = ZeroDelaySim::new(&n);
        let z = zd.switching_capacitance(&[false], &[true]);
        assert!(r.switched > z);
    }

    #[test]
    fn unit_delay_dominates_zero_delay_everywhere() {
        let lib = Library::test_library();
        let n = benchmarks::cm85(&lib);
        let ud = UnitDelaySim::new(&n);
        let zd = ZeroDelaySim::new(&n);
        let mut state = 77u64;
        let mut glitchy = 0usize;
        for _ in 0..200 {
            let mut next_pattern = || -> Vec<bool> {
                (0..11)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 62 & 1 == 1
                    })
                    .collect()
            };
            let xi = next_pattern();
            let xf = next_pattern();
            let r = ud.simulate_transition(&xi, &xf);
            let z = zd.switching_capacitance(&xi, &xf);
            assert!(
                r.switched.femtofarads() >= z.femtofarads() - 1e-9,
                "unit-delay must dominate"
            );
            assert!(r.glitch.femtofarads() >= -1e-9);
            if r.glitch.femtofarads() > 0.0 {
                glitchy += 1;
            }
        }
        assert!(
            glitchy > 0,
            "cm85 has unbalanced paths; some glitches expected"
        );
    }

    #[test]
    fn pattern_width_mismatch_is_an_error() {
        let ud = UnitDelaySim::new(&paper_unit());
        let e = ud
            .try_simulate_transition(&[true], &[false, true])
            .expect_err("one-bit xi on a two-input unit");
        assert_eq!(
            e,
            UnitDelayError::PatternWidth {
                expected: 2,
                got: 1
            }
        );
        assert!(e.to_string().contains("expected 2 bits"));
    }

    #[test]
    fn non_settling_bound_is_an_error_not_a_panic() {
        // A 2-inverter chain needs 2 steps (+1 to observe quiescence) after
        // an input flip; a bound of 1 cannot settle it.
        let n = charfree_netlist::testutil::inverter_chain(2, &Library::test_library());

        let ud = UnitDelaySim::new(&n).with_max_steps(1);
        let e = ud
            .try_simulate_transition(&[false], &[true])
            .expect_err("bound of 1 must be exhausted");
        assert_eq!(e, UnitDelayError::NonSettling { max_steps: 1 });
        // The untightened simulator settles the same transition fine.
        let ok = UnitDelaySim::new(&n)
            .try_simulate_transition(&[false], &[true])
            .expect("default bound suffices");
        assert!(ok.settle_time <= n.depth() + 1);
    }

    #[test]
    fn event_overflow_is_an_error() {
        let lib = Library::test_library();
        let n = benchmarks::cm85(&lib);
        let ud = UnitDelaySim::new(&n).with_max_events(1);
        let e = ud
            .try_simulate_transition(&[false; 11], &[true; 11])
            .expect_err("an all-ones flip moves more than one signal");
        assert_eq!(e, UnitDelayError::EventOverflow { max_events: 1 });
        assert!(e.to_string().contains("cap of 1"));
    }

    #[test]
    #[should_panic(expected = "unit-delay simulation failed")]
    fn infallible_wrapper_panics_with_context() {
        let ud = UnitDelaySim::new(&paper_unit());
        let _ = ud.simulate_transition(&[true], &[false]);
    }

    #[test]
    fn settles_within_depth() {
        let lib = Library::test_library();
        let n = benchmarks::parity(&lib);
        let ud = UnitDelaySim::new(&n);
        let r = ud.simulate_transition(&[false; 16], &[true; 16]);
        assert!(r.settle_time <= n.depth() + 1);
    }
}
