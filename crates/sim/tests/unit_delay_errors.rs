//! Unit-delay error paths exercised through the public API only.
//!
//! The BLIF elaborator rejects combinational cycles and `Netlist` cannot
//! express them either, so a true oscillator is unreachable from the
//! outside. What *is* reachable: legitimately deep or wide circuits
//! against tightened [`UnitDelaySim::with_max_steps`] /
//! [`UnitDelaySim::with_max_events`] bounds — every error must come back
//! as a typed [`UnitDelayError`], never a panic, and the same transition
//! must succeed once the bound is loosened.

use charfree_netlist::{benchmarks, testutil, Library};
use charfree_sim::{UnitDelayError, UnitDelaySim, ZeroDelaySim};

#[test]
fn deep_chain_trips_non_settling_at_every_insufficient_bound() {
    let library = Library::test_library();
    let depth = 12usize;
    let n = testutil::inverter_chain(depth, &library);
    // Every bound below the chain depth is insufficient; the first
    // sufficient bound settles and reports a plausible settle time.
    for bound in 1..depth as u32 {
        let sim = UnitDelaySim::new(&n).with_max_steps(bound);
        let err = sim
            .try_simulate_transition(&[false], &[true])
            .expect_err("bound below depth cannot settle");
        assert_eq!(err, UnitDelayError::NonSettling { max_steps: bound });
        assert!(err.to_string().contains(&bound.to_string()));
    }
    let report = UnitDelaySim::new(&n)
        .with_max_steps(depth as u32 + 1)
        .try_simulate_transition(&[false], &[true])
        .expect("depth + 1 steps settle an inverter chain");
    assert!(report.settle_time <= n.depth() + 1);
    // An all-inverter chain is glitch-free: one event per level.
    assert_eq!(report.glitch.femtofarads(), 0.0);
}

#[test]
fn wide_flip_trips_event_overflow_then_succeeds_unbounded() {
    let library = Library::test_library();
    let n = benchmarks::cm85(&library);
    let all_low = vec![false; n.num_inputs()];
    let all_high = vec![true; n.num_inputs()];
    let sim = UnitDelaySim::new(&n).with_max_events(3);
    let err = sim
        .try_simulate_transition(&all_low, &all_high)
        .expect_err("an all-ones flip schedules far more than 3 events");
    assert_eq!(err, UnitDelayError::EventOverflow { max_events: 3 });
    // The untightened simulator handles the same flip and dominates the
    // zero-delay measurement (Section 5's bracketing direction).
    let report = UnitDelaySim::new(&n)
        .try_simulate_transition(&all_low, &all_high)
        .expect("default event budget suffices");
    let golden = ZeroDelaySim::new(&n).switching_capacitance(&all_low, &all_high);
    assert!(report.switched.femtofarads() >= golden.femtofarads() - 1e-9);
    assert!(report.glitch.femtofarads() >= 0.0);
}

#[test]
fn pattern_width_errors_are_typed_on_both_sides() {
    let library = Library::test_library();
    let n = testutil::reconvergent_glitcher(&library);
    let sim = UnitDelaySim::new(&n);
    let err = sim
        .try_simulate_transition(&[true, false], &[false])
        .expect_err("two bits into a one-input circuit");
    assert_eq!(
        err,
        UnitDelayError::PatternWidth {
            expected: 1,
            got: 2
        }
    );
    let err = sim
        .try_simulate_transition(&[true], &[])
        .expect_err("empty final pattern");
    assert_eq!(
        err,
        UnitDelayError::PatternWidth {
            expected: 1,
            got: 0
        }
    );
}

#[test]
fn errors_do_not_poison_the_simulator() {
    // A simulator that just returned an error must still answer the next
    // (well-formed, feasible) query correctly — no stale event-queue or
    // state-table residue.
    let library = Library::test_library();
    let n = testutil::reconvergent_glitcher(&library);
    let sim = UnitDelaySim::new(&n).with_max_events(1_000_000);
    let baseline = sim
        .try_simulate_transition(&[false], &[true])
        .expect("feasible");
    let _ = sim.try_simulate_transition(&[true, true], &[false, false]);
    let after = sim
        .try_simulate_transition(&[false], &[true])
        .expect("still feasible after an error");
    assert_eq!(
        baseline.switched.femtofarads().to_bits(),
        after.switched.femtofarads().to_bits()
    );
    assert_eq!(
        baseline.glitch.femtofarads().to_bits(),
        after.glitch.femtofarads().to_bits()
    );
    assert_eq!(baseline.settle_time, after.settle_time);
}
