//! A small, fast, non-cryptographic hasher for the unique and computed
//! tables.
//!
//! Decision-diagram manipulation is dominated by hash-table lookups whose
//! keys are two or three 32-bit node identifiers. `std`'s default SipHash is
//! noticeably slower for such tiny fixed-size keys, so we ship a ~30-line
//! FxHash-style multiply-xor hasher instead of pulling in an external crate
//! (see DESIGN.md §7). It is *not* DoS-resistant; all keys are internal node
//! identifiers, never attacker-controlled data.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher in the style of rustc's FxHash.
///
/// # Examples
///
/// ```
/// use charfree_dd::hash::FxHashMap;
///
/// let mut map: FxHashMap<u32, &str> = FxHashMap::default();
/// map.insert(7, "seven");
/// assert_eq!(map.get(&7), Some(&"seven"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(3)), i);
        }
        for i in 0..1000u32 {
            assert_eq!(map.get(&(i, i.wrapping_mul(3))), Some(&i));
        }
        assert_eq!(map.len(), 1000);
    }

    #[test]
    fn distinct_keys_usually_distinct_hashes() {
        use std::hash::{BuildHasher, BuildHasherDefault};
        let bh: BuildHasherDefault<FxHasher> = BuildHasherDefault::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(i));
        }
        // A handful of collisions would be acceptable; total degeneracy is not.
        assert!(seen.len() > 9_900);
    }

    #[test]
    fn set_roundtrip() {
        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(42);
        assert!(set.contains(&42));
        assert!(!set.contains(&43));
    }
}
