//! Serialization of decision diagrams.
//!
//! The paper's motivation for a *direct* representation of `C(xⁱ,xᶠ)` is
//! that it can back-annotate a macro's functional description **without
//! revealing the implementation** ("If the unit is a third-party IP,
//! Eq. (4) cannot be used … or otherwise the IP would be violated").
//! That story needs the diagram itself to be a shippable artifact, so this
//! module provides an exact, versioned, line-oriented text format:
//!
//! ```text
//! ddv1 <num_vars>
//! t <count>
//! <f64-bits-hex> …            # one line of terminal values
//! n <count>
//! <var> <ref> <ref>           # one node per line, children before parents
//! r <ref>                     # root
//! ```
//!
//! References are `T<i>` (terminal `i`) or `N<i>` (node `i`), local to the
//! file. Terminal values are written as hexadecimal IEEE-754 bit patterns,
//! so round-trips are bit-exact.

use crate::manager::Manager;
use crate::node::NodeId;
use std::io::{self, BufRead, Write};

/// Writes the diagram rooted at `root` to `w`.
///
/// Any manager-owned diagram (BDD or ADD) can be written; read it back
/// with [`read_diagram`]. `w` can be a `&mut` reference
/// (`Write` is implemented for `&mut W`).
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_diagram<W: Write>(m: &Manager, root: NodeId, mut w: W) -> io::Result<()> {
    writeln!(w, "ddv1 {}", m.num_vars())?;

    // Collect reachable terminals and nodes; assign local indices.
    let nodes = m.topological_nodes(root);
    let mut node_index = crate::hash::FxHashMap::default();
    for (i, &id) in nodes.iter().enumerate() {
        node_index.insert(id, i);
    }
    let mut terminals: Vec<NodeId> = Vec::new();
    let mut term_index = crate::hash::FxHashMap::default();
    let note_terminal =
        |id: NodeId,
         terminals: &mut Vec<NodeId>,
         term_index: &mut crate::hash::FxHashMap<NodeId, usize>| {
            if id.is_terminal() && !term_index.contains_key(&id) {
                term_index.insert(id, terminals.len());
                terminals.push(id);
            }
        };
    note_terminal(root, &mut terminals, &mut term_index);
    for &id in &nodes {
        let (lo, hi) = m.children(id);
        note_terminal(lo, &mut terminals, &mut term_index);
        note_terminal(hi, &mut terminals, &mut term_index);
    }

    writeln!(w, "t {}", terminals.len())?;
    if !terminals.is_empty() {
        let values: Vec<String> = terminals
            .iter()
            .map(|&id| format!("{:016x}", m.terminal_value(id).to_bits()))
            .collect();
        writeln!(w, "{}", values.join(" "))?;
    }

    let encode = |id: NodeId| -> String {
        if id.is_terminal() {
            format!("T{}", term_index[&id])
        } else {
            format!("N{}", node_index[&id])
        }
    };

    writeln!(w, "n {}", nodes.len())?;
    for &id in &nodes {
        let (lo, hi) = m.children(id);
        writeln!(
            w,
            "{} {} {}",
            m.node_var(id).index(),
            encode(lo),
            encode(hi)
        )?;
    }
    writeln!(w, "r {}", encode(root))?;
    Ok(())
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads a diagram written by [`write_diagram`] into `m` and returns its
/// root. `r` can be a `&mut` reference (`BufRead` is implemented for
/// `&mut R`).
///
/// # Errors
///
/// Returns `InvalidData` if the stream is not a valid `ddv1` dump or
/// references variables beyond [`Manager::num_vars`].
pub fn read_diagram<R: BufRead>(m: &mut Manager, r: R) -> io::Result<NodeId> {
    let mut lines = r.lines();
    let mut next = || -> io::Result<String> {
        lines
            .next()
            .ok_or_else(|| bad("unexpected end of dd dump"))?
    };

    let header = next()?;
    let num_vars: u32 = match header.strip_prefix("ddv1 ") {
        Some(rest) => rest.trim().parse().map_err(|_| bad("bad ddv1 header"))?,
        None => return Err(bad("missing ddv1 header")),
    };
    if num_vars > m.num_vars() {
        return Err(bad(format!(
            "dump needs {num_vars} variables, manager has {}",
            m.num_vars()
        )));
    }

    // Terminals.
    let tline = next()?;
    let tcount: usize = tline
        .strip_prefix("t ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad("bad terminal count"))?;
    let mut terminals = Vec::with_capacity(tcount);
    if tcount > 0 {
        let values = next()?;
        for tok in values.split_whitespace() {
            let bits = u64::from_str_radix(tok, 16).map_err(|_| bad("bad terminal bits"))?;
            let v = f64::from_bits(bits);
            if v.is_nan() {
                return Err(bad("NaN terminal in dump"));
            }
            terminals.push(m.terminal(v));
        }
        if terminals.len() != tcount {
            return Err(bad("terminal count mismatch"));
        }
    }

    // Nodes.
    let nline = next()?;
    let ncount: usize = nline
        .strip_prefix("n ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad("bad node count"))?;
    let mut nodes: Vec<NodeId> = Vec::with_capacity(ncount);
    let decode = |tok: &str, terminals: &[NodeId], nodes: &[NodeId]| -> io::Result<NodeId> {
        if let Some(i) = tok.strip_prefix('T') {
            let i: usize = i.parse().map_err(|_| bad("bad terminal ref"))?;
            terminals
                .get(i)
                .copied()
                .ok_or_else(|| bad("terminal ref out of range"))
        } else if let Some(i) = tok.strip_prefix('N') {
            let i: usize = i.parse().map_err(|_| bad("bad node ref"))?;
            nodes
                .get(i)
                .copied()
                .ok_or_else(|| bad("forward node reference"))
        } else {
            Err(bad(format!("bad reference `{tok}`")))
        }
    };
    for _ in 0..ncount {
        let line = next()?;
        let mut parts = line.split_whitespace();
        let var: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("bad node variable"))?;
        if var >= num_vars {
            return Err(bad("node variable out of range"));
        }
        let lo = decode(
            parts.next().ok_or_else(|| bad("missing lo ref"))?,
            &terminals,
            &nodes,
        )?;
        let hi = decode(
            parts.next().ok_or_else(|| bad("missing hi ref"))?,
            &terminals,
            &nodes,
        )?;
        nodes.push(m.mk(var, lo, hi));
    }

    // Root.
    let rline = next()?;
    let root_tok = rline
        .strip_prefix("r ")
        .ok_or_else(|| bad("missing root line"))?;
    decode(root_tok.trim(), &terminals, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Add;
    use crate::node::Var;

    fn sample_add(m: &mut Manager) -> Add {
        let mut acc = m.add_zero();
        for v in 0..m.num_vars() {
            let x = m.bdd_var(Var(v));
            let d = m.add_scale(x.as_add(), 1.5 + v as f64 * 0.25);
            acc = m.add_plus(acc, d);
        }
        acc
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let mut m = Manager::new(6);
        let f = sample_add(&mut m);
        let mut buf = Vec::new();
        write_diagram(&m, f.node(), &mut buf).expect("writes");

        let mut m2 = Manager::new(6);
        let root = read_diagram(&mut m2, buf.as_slice()).expect("reads");
        let g = Add::from_node(root);
        for bits in 0..64u32 {
            let asg: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                m.add_eval(f, &asg).to_bits(),
                m2.add_eval(g, &asg).to_bits()
            );
        }
        assert_eq!(m.size(f.node()), m2.size(root));
    }

    #[test]
    fn round_trip_into_same_manager_is_canonical() {
        let mut m = Manager::new(4);
        let f = sample_add(&mut m);
        let mut buf = Vec::new();
        write_diagram(&m, f.node(), &mut buf).expect("writes");
        let root = read_diagram(&mut m, buf.as_slice()).expect("reads");
        assert_eq!(root, f.node(), "canonicity: re-read shares the node");
    }

    #[test]
    fn terminal_only_diagram() {
        let mut m = Manager::new(2);
        let f = m.constant(42.5);
        let mut buf = Vec::new();
        write_diagram(&m, f.node(), &mut buf).expect("writes");
        let mut m2 = Manager::new(2);
        let root = read_diagram(&mut m2, buf.as_slice()).expect("reads");
        assert!(root.is_terminal());
        assert_eq!(m2.terminal_value(root), 42.5);
    }

    #[test]
    fn rejects_garbage() {
        let mut m = Manager::new(2);
        assert!(read_diagram(&mut m, "nonsense".as_bytes()).is_err());
        assert!(read_diagram(&mut m, "ddv1 9\nt 0\nn 1\n8 T0 T0\nr N0".as_bytes()).is_err());
        assert!(read_diagram(&mut m, "ddv1 2\nt 1\nzz\nn 0\nr T0".as_bytes()).is_err());
        // Forward references are invalid (children precede parents).
        assert!(read_diagram(
            &mut m,
            "ddv1 2\nt 1\n0000000000000000\nn 1\n0 N5 T0\nr N0".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn bdd_round_trip() {
        let mut m = Manager::new(5);
        let a = m.bdd_var(Var(0));
        let b = m.bdd_var(Var(3));
        let f = m.bdd_xor(a, b);
        let mut buf = Vec::new();
        write_diagram(&m, f.node(), &mut buf).expect("writes");
        let mut m2 = Manager::new(5);
        let root = read_diagram(&mut m2, buf.as_slice()).expect("reads");
        let g = crate::Bdd::from_node(root);
        for bits in 0..32u32 {
            let asg: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.bdd_eval(f, &asg), m2.bdd_eval(g, &asg));
        }
    }
}
