//! Node identifiers and the in-arena node representation.

use std::fmt;

/// Index of a decision variable (equivalently, of a level: variable `0` is
/// tested first on every root-to-leaf path).
///
/// # Examples
///
/// ```
/// use charfree_dd::Var;
///
/// let v = Var(3);
/// assert_eq!(v.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The position of this variable in the global order, `0` = topmost.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Handle to a node owned by a [`Manager`](crate::Manager).
///
/// The high bit distinguishes terminal (leaf) nodes from internal decision
/// nodes; the remaining 31 bits index the manager's arenas. Handles are only
/// meaningful together with the manager that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

const TERMINAL_BIT: u32 = 1 << 31;

impl NodeId {
    #[inline]
    pub(crate) fn internal(index: u32) -> Self {
        debug_assert!(index & TERMINAL_BIT == 0, "internal arena overflow");
        NodeId(index)
    }

    #[inline]
    pub(crate) fn terminal(index: u32) -> Self {
        debug_assert!(index & TERMINAL_BIT == 0, "terminal arena overflow");
        NodeId(index | TERMINAL_BIT)
    }

    /// `true` if this handle designates a terminal (leaf) node.
    #[inline]
    pub fn is_terminal(self) -> bool {
        self.0 & TERMINAL_BIT != 0
    }

    #[inline]
    pub(crate) fn arena_index(self) -> usize {
        (self.0 & !TERMINAL_BIT) as usize
    }

    /// Raw 32-bit representation, useful as a compact map key.
    #[inline]
    pub fn to_bits(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_terminal() {
            write!(f, "T{}", self.arena_index())
        } else {
            write!(f, "N{}", self.arena_index())
        }
    }
}

/// An internal decision node: tests `var`, follows `lo` on `0` and `hi` on
/// `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: NodeId,
    pub hi: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_flag_roundtrip() {
        let t = NodeId::terminal(5);
        assert!(t.is_terminal());
        assert_eq!(t.arena_index(), 5);

        let n = NodeId::internal(5);
        assert!(!n.is_terminal());
        assert_eq!(n.arena_index(), 5);
        assert_ne!(t, n);
    }

    #[test]
    fn var_display() {
        assert_eq!(Var(7).to_string(), "x7");
    }

    #[test]
    fn node_id_is_small() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Node>(), 12);
    }
}
