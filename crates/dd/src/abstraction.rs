//! Variable abstraction and cube enumeration.
//!
//! Abstraction operators fold a variable out of a diagram — the symbolic
//! analogue of marginalization. For power models they answer questions
//! like "what is the expected switched capacitance as a function of the
//! *other* inputs, averaging over this one?" (average abstraction) or
//! "what is the worst case over this input?" (max abstraction) without
//! enumerating patterns. Cube enumeration walks a BDD's satisfying set as
//! don't-care-compressed cubes, which is how witness lists are reported
//! compactly.

use crate::manager::{Add, Bdd, BinOp, Manager};
use crate::node::{NodeId, Var};

impl Manager {
    /// Sum abstraction: `(Σ_v f)(rest) = f|_{v=0} + f|_{v=1}`.
    pub fn add_sum_abstract(&mut self, f: Add, var: Var) -> Add {
        self.abstract_with(f, var, BinOp::Plus)
    }

    /// Average abstraction: `½ (f|_{v=0} + f|_{v=1})` — marginalizes a fair
    /// input away. Repeated over every variable this converges to the
    /// constant [`Manager::add_avg`].
    pub fn add_avg_abstract(&mut self, f: Add, var: Var) -> Add {
        let sum = self.add_sum_abstract(f, var);
        self.add_scale(sum, 0.5)
    }

    /// Max abstraction: `max(f|_{v=0}, f|_{v=1})` — the tightest function
    /// of the remaining variables that dominates `f` regardless of `v`.
    pub fn add_max_abstract(&mut self, f: Add, var: Var) -> Add {
        self.abstract_with(f, var, BinOp::Max)
    }

    /// Min abstraction: `min(f|_{v=0}, f|_{v=1})`.
    pub fn add_min_abstract(&mut self, f: Add, var: Var) -> Add {
        self.abstract_with(f, var, BinOp::Min)
    }

    fn abstract_with(&mut self, f: Add, var: Var, op: BinOp) -> Add {
        let lo = self.restrict(f.node(), var, false);
        let hi = self.restrict(f.node(), var, true);
        Add::from_node(self.apply_public(op, lo, hi))
    }

    /// `apply` for node handles (crate-internal plumbing for abstraction).
    pub(crate) fn apply_public(&mut self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        self.add_apply(op, Add::from_node(a), Add::from_node(b))
            .node()
    }

    /// Iterates the satisfying set of a BDD as cubes.
    ///
    /// Each cube assigns `Some(value)` to the variables tested on one
    /// root-to-`1` path and `None` (don't care) to the rest, so the
    /// returned cubes are disjoint and their union is exactly the ON-set.
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_dd::{Manager, Var};
    ///
    /// let mut m = Manager::new(3);
    /// let a = m.bdd_var(Var(0));
    /// let c = m.bdd_var(Var(2));
    /// let f = m.bdd_and(a, c);
    /// let cubes: Vec<_> = m.cubes(f).collect();
    /// assert_eq!(cubes, vec![vec![Some(true), None, Some(true)]]);
    /// ```
    pub fn cubes(&self, f: Bdd) -> Cubes<'_> {
        Cubes {
            manager: self,
            stack: vec![(f.node(), Vec::new())],
        }
    }
}

/// Iterator over the ON-set cubes of a BDD; see [`Manager::cubes`].
#[derive(Debug)]
pub struct Cubes<'a> {
    manager: &'a Manager,
    /// Pending (node, partial literal list) pairs.
    stack: Vec<(NodeId, Vec<(Var, bool)>)>,
}

impl Iterator for Cubes<'_> {
    /// One cube: position `v` is `Some(value)` if variable `v` is
    /// constrained, `None` for don't care.
    type Item = Vec<Option<bool>>;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some((node, lits)) = self.stack.pop() {
            if node.is_terminal() {
                if self.manager.terminal_value(node) != 0.0 {
                    let mut cube = vec![None; self.manager.num_vars() as usize];
                    for &(var, value) in &lits {
                        cube[var.index() as usize] = Some(value);
                    }
                    return Some(cube);
                }
                continue;
            }
            let var = self.manager.node_var(node);
            let (lo, hi) = self.manager.children(node);
            let mut hi_lits = lits.clone();
            hi_lits.push((var, true));
            let mut lo_lits = lits;
            lo_lits.push((var, false));
            // Low first so cubes come out in ascending assignment order.
            self.stack.push((hi, hi_lits));
            self.stack.push((lo, lo_lits));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weighted(m: &mut Manager) -> Add {
        // f = 3·x0 + 5·x1 + 9·x2
        let mut acc = m.add_zero();
        for (v, w) in [(0u32, 3.0), (1, 5.0), (2, 9.0)] {
            let x = m.bdd_var(Var(v));
            let d = m.add_scale(x.as_add(), w);
            acc = m.add_plus(acc, d);
        }
        acc
    }

    #[test]
    fn sum_and_avg_abstraction() {
        let mut m = Manager::new(3);
        let f = weighted(&mut m);
        let g = m.add_avg_abstract(f, Var(1));
        // Averaging x1 out replaces its 5 with 2.5 everywhere.
        for bits in 0..4u32 {
            let x0 = bits & 1 == 1;
            let x2 = bits & 2 == 2;
            let want = 3.0 * f64::from(u8::from(x0)) + 2.5 + 9.0 * f64::from(u8::from(x2));
            assert_eq!(m.add_eval(g, &[x0, false, x2]), want);
            // x1 no longer matters.
            assert_eq!(m.add_eval(g, &[x0, true, x2]), want);
        }
        // Abstracting every variable yields the global average.
        let g = m.add_avg_abstract(f, Var(0));
        let g = m.add_avg_abstract(g, Var(1));
        let g = m.add_avg_abstract(g, Var(2));
        assert!(g.node().is_terminal());
        assert_eq!(m.terminal_value(g.node()), m.add_avg(f));
    }

    #[test]
    fn max_and_min_abstraction() {
        let mut m = Manager::new(3);
        let f = weighted(&mut m);
        let hi = m.add_max_abstract(f, Var(2));
        let lo = m.add_min_abstract(f, Var(2));
        for bits in 0..4u32 {
            let x0 = bits & 1 == 1;
            let x1 = bits & 2 == 2;
            let base = 3.0 * f64::from(u8::from(x0)) + 5.0 * f64::from(u8::from(x1));
            assert_eq!(m.add_eval(hi, &[x0, x1, false]), base + 9.0);
            assert_eq!(m.add_eval(lo, &[x0, x1, false]), base);
        }
        // Dominance: max-abstraction ≥ f ≥ min-abstraction, pointwise.
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert!(m.add_eval(hi, &asg) >= m.add_eval(f, &asg));
            assert!(m.add_eval(lo, &asg) <= m.add_eval(f, &asg));
        }
    }

    #[test]
    fn cubes_cover_the_on_set_disjointly() {
        let mut m = Manager::new(4);
        let a = m.bdd_var(Var(0));
        let b = m.bdd_var(Var(1));
        let d = m.bdd_var(Var(3));
        let ab = m.bdd_and(a, b);
        let f = m.bdd_or(ab, d);
        let cubes: Vec<_> = m.cubes(f).collect();
        // Every assignment must match exactly one cube iff it satisfies f.
        for bits in 0..16u32 {
            let asg: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            let matches = cubes
                .iter()
                .filter(|cube| {
                    cube.iter()
                        .zip(&asg)
                        .all(|(lit, &v)| lit.is_none_or(|l| l == v))
                })
                .count();
            assert_eq!(matches, usize::from(m.bdd_eval(f, &asg)), "bits={bits:04b}");
        }
        // Don't cares compress: far fewer cubes than minterms.
        assert!(cubes.len() <= 3, "got {}", cubes.len());
    }

    #[test]
    fn cubes_of_constants() {
        let m = Manager::new(2);
        assert_eq!(m.cubes(m.bdd_false()).count(), 0);
        let all: Vec<_> = m.cubes(m.bdd_true()).collect();
        assert_eq!(all, vec![vec![None, None]]);
    }
}
