//! Per-node statistics of the discrete functions represented by ADD nodes.
//!
//! These are the quantities the paper computes "in linear time during a
//! traversal of the ADD" (Section 3): for every node `n`, the average,
//! variance, and maximum of the sub-function rooted at `n`, plus the
//! mean-square error `mse(n) = var(n) + (max(n) − avg(n))²` (Eq. 8) incurred
//! by replacing the sub-function with its maximum.
//!
//! The recursions of Eq. 7 are stated for complete diagrams, but they hold
//! unchanged on *reduced* diagrams: a child that skips levels represents the
//! same sub-function extended with don't-care variables, and average,
//! variance, minimum and maximum are all invariant under adding don't-care
//! variables.

use crate::hash::FxHashMap;
use crate::manager::{Add, Manager};
use crate::node::NodeId;

/// Statistics of the discrete function rooted at one ADD node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStats {
    /// Average value over all input assignments (Eq. 6).
    pub avg: f64,
    /// Variance over all input assignments (Eq. 5).
    pub var: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl NodeStats {
    /// Mean-square error of approximating the sub-function by its maximum
    /// (Eq. 8): `var + (max − avg)²`.
    #[inline]
    pub fn mse_of_max(&self) -> f64 {
        self.var + (self.max - self.avg) * (self.max - self.avg)
    }
}

/// Per-variable distribution for a [`ChainMeasure`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarMeasure {
    /// `P(v = 1) = p`, independent of everything else.
    Independent(f64),
    /// `P(v = 1)` depends on the value of the *immediately preceding*
    /// variable in the order (e.g. `xᶠₖ` conditioned on `xⁱₖ` in an
    /// interleaved transition space).
    Correlated {
        /// `P(v = 1 | previous = 0)`.
        when_prev_false: f64,
        /// `P(v = 1 | previous = 1)`.
        when_prev_true: f64,
    },
}

/// A product/chain input distribution over the diagram variables: each
/// variable is either independent or pair-correlated with its immediate
/// predecessor.
///
/// This is exactly expressive enough for the *transition space* of
/// power models: with interleaved ordering `x₀ⁱ, x₀ᶠ, x₁ⁱ, x₁ᶠ, …`, the
/// measure `xₖⁱ ~ Bernoulli(sp)`, `P(xₖᶠ ≠ xₖⁱ) = st` captures realistic
/// signal/transition statistics, which makes measure-weighted node
/// collapsing preserve the (practically dominant) low-toggle region that a
/// uniform measure would sacrifice.
///
/// # Examples
///
/// ```
/// use charfree_dd::ChainMeasure;
/// let m = ChainMeasure::interleaved_transitions(3, 0.5, 0.25);
/// assert_eq!(m.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChainMeasure {
    items: Vec<VarMeasure>,
}

impl ChainMeasure {
    /// Builds a measure from per-variable distributions.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`, if variable 0 is
    /// correlated, or if two consecutive variables are both correlated
    /// (contexts would need to propagate through skipped levels, which the
    /// traversal does not support).
    pub fn new(items: Vec<VarMeasure>) -> Self {
        for (v, item) in items.iter().enumerate() {
            match *item {
                VarMeasure::Independent(p) => {
                    assert!((0.0..=1.0).contains(&p), "bad probability for var {v}");
                }
                VarMeasure::Correlated {
                    when_prev_false,
                    when_prev_true,
                } => {
                    assert!(v > 0, "variable 0 cannot be correlated");
                    assert!(
                        matches!(items[v - 1], VarMeasure::Independent(_)),
                        "consecutive correlated variables are not supported"
                    );
                    assert!(
                        (0.0..=1.0).contains(&when_prev_false)
                            && (0.0..=1.0).contains(&when_prev_true),
                        "bad probability for var {v}"
                    );
                }
            }
        }
        ChainMeasure { items }
    }

    /// The uniform measure over `n` variables (every variable fair and
    /// independent).
    pub fn uniform(n: u32) -> Self {
        ChainMeasure {
            items: vec![VarMeasure::Independent(0.5); n as usize],
        }
    }

    /// The transition-space measure for `pairs` interleaved input pairs:
    /// variable `2k` (the `xₖⁱ`) is `Bernoulli(sp)` and variable `2k+1`
    /// (the `xₖᶠ`) flips with *overall* probability `toggle`.
    ///
    /// The conditional flip rates are direction-dependent so that the pair
    /// is **stationary** at signal probability `sp` — exactly the joint
    /// law of one step of the per-bit Markov source used for simulation:
    /// `P(0→1) = toggle / (2(1−sp))`, `P(1→0) = toggle / (2·sp)`. (For
    /// `sp = 0.5` both reduce to the symmetric rate `toggle`.)
    ///
    /// # Panics
    ///
    /// Panics if `sp ∉ (0,1)`, `toggle ∉ [0,1]`, or the pair is infeasible
    /// (`toggle > 2·min(sp, 1−sp)` would need a conditional probability
    /// above one).
    pub fn interleaved_transitions(pairs: u32, sp: f64, toggle: f64) -> Self {
        assert!(sp > 0.0 && sp < 1.0, "sp must be in (0,1)");
        assert!(
            (0.0..=1.0).contains(&toggle) && toggle <= 2.0 * sp.min(1.0 - sp),
            "infeasible (sp={sp}, toggle={toggle}) pair"
        );
        let p01 = toggle / (2.0 * (1.0 - sp));
        let p10 = toggle / (2.0 * sp);
        let mut items = Vec::with_capacity(2 * pairs as usize);
        for _ in 0..pairs {
            items.push(VarMeasure::Independent(sp));
            items.push(VarMeasure::Correlated {
                when_prev_false: p01,
                when_prev_true: 1.0 - p10,
            });
        }
        ChainMeasure::new(items)
    }

    /// Number of variables covered.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the measure covers no variables.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` if variable `v` is pair-correlated with its predecessor.
    #[inline]
    pub fn is_correlated(&self, v: u32) -> bool {
        matches!(
            self.items.get(v as usize),
            Some(VarMeasure::Correlated { .. })
        )
    }

    /// `P(v = 1)` under context `ctx` (0 = unconditioned, 1 = predecessor
    /// false, 2 = predecessor true). For an unconditioned correlated
    /// variable the marginal is used.
    #[inline]
    pub fn prob_one(&self, v: usize, ctx: u8) -> f64 {
        match self.items[v] {
            VarMeasure::Independent(p) => p,
            VarMeasure::Correlated {
                when_prev_false,
                when_prev_true,
            } => match ctx {
                1 => when_prev_false,
                2 => when_prev_true,
                _ => {
                    // Marginalize over the (independent) predecessor.
                    let p_prev = match self.items[v - 1] {
                        VarMeasure::Independent(p) => p,
                        VarMeasure::Correlated { .. } => unreachable!("validated"),
                    };
                    (1.0 - p_prev) * when_prev_false + p_prev * when_prev_true
                }
            },
        }
    }
}

/// Measure-weighted per-node profile: mixture statistics and reach
/// probability (see [`Manager::add_measured_profile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredNode {
    /// Mixture statistics of the node's sub-function over the contexts in
    /// which it is reached.
    pub stats: NodeStats,
    /// Probability a random path (under the measure) passes through the
    /// node.
    pub reach: f64,
}

/// Statistics for every node reachable from one ADD root.
///
/// Produced by [`Manager::add_stats`]; query per node with
/// [`AddStats::get`].
#[derive(Debug, Clone)]
pub struct AddStats {
    map: FxHashMap<NodeId, NodeStats>,
    root: NodeId,
}

impl AddStats {
    /// Statistics of the sub-function rooted at `id`.
    ///
    /// Returns `None` if `id` is not reachable from the root this was
    /// computed for.
    pub fn get(&self, id: NodeId) -> Option<NodeStats> {
        self.map.get(&id).copied()
    }

    /// Statistics of the whole function.
    pub fn root(&self) -> NodeStats {
        self.map[&self.root]
    }

    /// Iterates over `(node, stats)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeStats)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of nodes covered (internal + terminal).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no node is covered (never the case for a valid root).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl Manager {
    /// Computes [`NodeStats`] for every node reachable from `f` in a single
    /// bottom-up traversal (linear in the number of nodes).
    ///
    /// # Examples
    ///
    /// The paper's Example 4: a node whose cofactors have averages 10 and 5
    /// (variances 25 and 0) gets `avg = 7.5`, `var = 18.75`.
    ///
    /// ```
    /// use charfree_dd::{Manager, Var};
    ///
    /// let mut m = Manager::new(2);
    /// let x0 = m.bdd_var(Var(0));
    /// let x1 = m.bdd_var(Var(1));
    /// let c0 = m.constant(0.0);
    /// let c10 = m.constant(10.0);
    /// let lo = m.add_ite(x1, c10, c0);   // avg 5, var 25
    /// let f = m.add_ite(x0, c10, lo);    // avg 7.5, var 18.75
    /// let stats = m.add_stats(f).root();
    /// assert_eq!(stats.avg, 7.5);
    /// assert_eq!(stats.var, 18.75);
    /// assert_eq!(stats.max, 10.0);
    /// assert_eq!(stats.mse_of_max(), 25.0);
    /// ```
    pub fn add_stats(&self, f: Add) -> AddStats {
        let root = f.node();
        let mut map: FxHashMap<NodeId, NodeStats> = FxHashMap::default();
        // Children precede parents in arena order, so one ordered pass works.
        for id in self.topological_nodes(root) {
            let (lo, hi) = self.children(id);
            let sl = Self::leaf_or(&map, self, lo);
            let sh = Self::leaf_or(&map, self, hi);
            let avg = 0.5 * (sl.avg + sh.avg);
            let var = 0.5
                * (sl.var
                    + (sl.avg - avg) * (sl.avg - avg)
                    + sh.var
                    + (sh.avg - avg) * (sh.avg - avg));
            map.insert(
                id,
                NodeStats {
                    avg,
                    var,
                    min: sl.min.min(sh.min),
                    max: sl.max.max(sh.max),
                },
            );
        }
        // Make sure terminals reachable from the root are present too (the
        // loop above only inserts internal nodes; leaves are needed when the
        // root itself is a leaf or when callers query leaf stats).
        let mut stack = vec![root];
        let mut seen = crate::hash::FxHashSet::default();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if id.is_terminal() {
                let v = self.terminal_value(id);
                map.insert(
                    id,
                    NodeStats {
                        avg: v,
                        var: 0.0,
                        min: v,
                        max: v,
                    },
                );
            } else {
                let (lo, hi) = self.children(id);
                stack.push(lo);
                stack.push(hi);
            }
        }
        AddStats { map, root }
    }

    #[inline]
    fn leaf_or(map: &FxHashMap<NodeId, NodeStats>, m: &Manager, id: NodeId) -> NodeStats {
        if id.is_terminal() {
            let v = m.terminal_value(id);
            NodeStats {
                avg: v,
                var: 0.0,
                min: v,
                max: v,
            }
        } else {
            map[&id]
        }
    }

    /// The probability that a uniformly random input assignment's
    /// root-to-leaf path passes through each node reachable from `f`.
    ///
    /// `p(root) = 1`, and every edge forwards half its parent's mass
    /// (skipped levels are untested and do not change the probability).
    /// Computed in one top-down pass. Together with [`NodeStats`] this
    /// gives the *exact* global cost of a collapse: replacing node `n` by a
    /// constant `c` changes the root mean-square error by
    /// `p(n) · E[(f_n − c)²]` and the root average by
    /// `p(n) · (c − avg(n))`.
    pub fn reach_probabilities(&self, f: Add) -> FxHashMap<NodeId, f64> {
        let mut p: FxHashMap<NodeId, f64> = FxHashMap::default();
        let order = self.topological_nodes(f.node());
        p.insert(f.node(), 1.0);
        // `order` lists children before parents; walk it reversed so every
        // parent's mass is final before it is distributed.
        for &id in order.iter().rev() {
            let mass = match p.get(&id) {
                Some(&m) => m,
                None => continue, // not reachable from f (cannot happen)
            };
            let (lo, hi) = self.children(id);
            *p.entry(lo).or_insert(0.0) += 0.5 * mass;
            *p.entry(hi).or_insert(0.0) += 0.5 * mass;
        }
        p
    }

    /// Per-node statistics and reach probabilities under a (chain-)
    /// weighted input measure — see [`ChainMeasure`].
    ///
    /// Returns, for every node reachable from `f`, the measure-weighted
    /// average/variance of its sub-function (mixed over the contexts in
    /// which the node is reached), its min/max (measure-independent), and
    /// the probability that a random path under the measure passes through
    /// it. With [`ChainMeasure::uniform`] this coincides with
    /// [`Manager::add_stats`] + [`Manager::reach_probabilities`].
    ///
    /// # Panics
    ///
    /// Panics if the measure does not cover [`Manager::num_vars`]
    /// variables.
    pub fn add_measured_profile(
        &self,
        f: Add,
        measure: &ChainMeasure,
    ) -> FxHashMap<NodeId, MeasuredNode> {
        assert_eq!(
            measure.len(),
            self.num_vars() as usize,
            "measure must cover every variable"
        );
        let root = f.node();

        // ---- bottom-up: (avg, var) per (node, context); min/max per node.
        // Context: the branch value taken at the *immediately preceding*
        // variable, relevant only when this node tests a correlated
        // variable. 0 = unconditioned, 1 = prev false, 2 = prev true.
        let mut avg_var: FxHashMap<(NodeId, u8), (f64, f64)> = FxHashMap::default();
        let mut min_max: FxHashMap<NodeId, (f64, f64)> = FxHashMap::default();
        self.profile_down(root, 0, measure, &mut avg_var, &mut min_max);

        // ---- top-down: reach mass per (node, context).
        let order = self.topological_nodes(root);
        let mut mass: FxHashMap<(NodeId, u8), f64> = FxHashMap::default();
        mass.insert((root, 0), 1.0);
        for &id in order.iter().rev() {
            let v = self.node_var(id).index();
            let (lo, hi) = self.children(id);
            for ctx in 0u8..3 {
                let w = match mass.get(&(id, ctx)) {
                    Some(&w) if w > 0.0 => w,
                    _ => continue,
                };
                let p1 = measure.prob_one(v as usize, ctx);
                for (child, branch, share) in [(lo, 0u8, 1.0 - p1), (hi, 1u8, p1)] {
                    if share == 0.0 {
                        continue;
                    }
                    let cctx = self.child_context(child, v, branch, measure);
                    *mass.entry((child, cctx)).or_insert(0.0) += w * share;
                }
            }
        }

        // ---- aggregate per node: mixture over contexts.
        let mut out: FxHashMap<NodeId, MeasuredNode> = FxHashMap::default();
        for (&(id, ctx), &w) in &mass {
            if w <= 0.0 {
                continue;
            }
            let (avg, var) = if id.is_terminal() {
                (self.terminal_value(id), 0.0)
            } else {
                avg_var[&(id, ctx)]
            };
            let entry = out.entry(id).or_insert(MeasuredNode {
                stats: NodeStats {
                    avg: 0.0,
                    var: 0.0,
                    min: 0.0,
                    max: 0.0,
                },
                reach: 0.0,
            });
            // Accumulate raw moments; normalized below.
            entry.reach += w;
            entry.stats.avg += w * avg;
            entry.stats.var += w * (var + avg * avg);
        }
        for (&id, node) in &mut out {
            let w = node.reach;
            node.stats.avg /= w;
            node.stats.var = (node.stats.var / w - node.stats.avg * node.stats.avg).max(0.0);
            let (min, max) = if id.is_terminal() {
                let v = self.terminal_value(id);
                (v, v)
            } else {
                min_max[&id]
            };
            node.stats.min = min;
            node.stats.max = max;
        }
        out
    }

    /// The context a child node sees after branching `branch` at variable
    /// `v`: meaningful only if the child tests `v + 1` and that variable is
    /// correlated with its predecessor.
    #[inline]
    fn child_context(&self, child: NodeId, v: u32, branch: u8, measure: &ChainMeasure) -> u8 {
        if !child.is_terminal()
            && self.node_var(child).index() == v + 1
            && measure.is_correlated(v + 1)
        {
            branch + 1
        } else {
            0
        }
    }

    fn profile_down(
        &self,
        id: NodeId,
        ctx: u8,
        measure: &ChainMeasure,
        avg_var: &mut FxHashMap<(NodeId, u8), (f64, f64)>,
        min_max: &mut FxHashMap<NodeId, (f64, f64)>,
    ) -> (f64, f64) {
        if id.is_terminal() {
            let v = self.terminal_value(id);
            return (v, 0.0);
        }
        if let Some(&r) = avg_var.get(&(id, ctx)) {
            return r;
        }
        let v = self.node_var(id).index();
        let (lo, hi) = self.children(id);
        let p1 = measure.prob_one(v as usize, ctx);
        let lo_ctx = self.child_context(lo, v, 0, measure);
        let hi_ctx = self.child_context(hi, v, 1, measure);
        let (al, vl) = self.profile_down(lo, lo_ctx, measure, avg_var, min_max);
        let (ah, vh) = self.profile_down(hi, hi_ctx, measure, avg_var, min_max);
        let avg = (1.0 - p1) * al + p1 * ah;
        let var = (1.0 - p1) * (vl + (al - avg) * (al - avg)) + p1 * (vh + (ah - avg) * (ah - avg));
        avg_var.insert((id, ctx), (avg, var));
        if !min_max.contains_key(&id) {
            let get_mm = |n: NodeId, mm: &FxHashMap<NodeId, (f64, f64)>| -> (f64, f64) {
                if n.is_terminal() {
                    let v = self.terminal_value(n);
                    (v, v)
                } else {
                    mm[&n]
                }
            };
            let (lmin, lmax) = get_mm(lo, min_max);
            let (hmin, hmax) = get_mm(hi, min_max);
            min_max.insert(id, (lmin.min(hmin), lmax.max(hmax)));
        }
        (avg, var)
    }

    /// Average value of the ADD over all assignments (Eq. 6).
    pub fn add_avg(&self, f: Add) -> f64 {
        self.add_stats(f).root().avg
    }

    /// Maximum value of the ADD over all assignments.
    pub fn add_max_value(&self, f: Add) -> f64 {
        self.add_stats(f).root().max
    }

    /// Minimum value of the ADD over all assignments.
    pub fn add_min_value(&self, f: Add) -> f64 {
        self.add_stats(f).root().min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    /// Brute-force reference statistics by enumerating all assignments.
    fn brute(m: &Manager, f: Add, n: u32) -> NodeStats {
        let count = 1u64 << n;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut values = Vec::new();
        for bits in 0..count {
            let asg: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let v = m.add_eval(f, &asg);
            sum += v;
            min = min.min(v);
            max = max.max(v);
            values.push(v);
        }
        let avg = sum / count as f64;
        let var = values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / count as f64;
        NodeStats { avg, var, min, max }
    }

    #[test]
    fn stats_match_brute_force() {
        let mut m = Manager::new(3);
        let x0 = m.bdd_var(Var(0));
        let x1 = m.bdd_var(Var(1));
        let x2 = m.bdd_var(Var(2));
        let c3 = m.constant(3.0);
        let c7 = m.constant(7.0);
        let c11 = m.constant(11.0);
        let zero = m.add_zero();
        let a = m.add_ite(x0, c3, zero);
        let b = m.add_ite(x1, c7, zero);
        let c = m.add_ite(x2, c11, zero);
        let ab = m.add_plus(a, b);
        let f = m.add_plus(ab, c);

        let got = m.add_stats(f).root();
        let want = brute(&m, f, 3);
        assert!((got.avg - want.avg).abs() < 1e-12);
        assert!((got.var - want.var).abs() < 1e-12);
        assert_eq!(got.min, want.min);
        assert_eq!(got.max, want.max);
    }

    #[test]
    fn stats_on_terminal_root() {
        let mut m = Manager::new(2);
        let f = m.constant(4.25);
        let s = m.add_stats(f).root();
        assert_eq!(s.avg, 4.25);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.min, 4.25);
        assert_eq!(s.max, 4.25);
        assert_eq!(s.mse_of_max(), 0.0);
    }

    #[test]
    fn stats_invariant_under_dont_care_vars() {
        // f tests only x1; stats must not change because x0/x2 exist.
        let mut m = Manager::new(3);
        let x1 = m.bdd_var(Var(1));
        let c2 = m.constant(2.0);
        let c6 = m.constant(6.0);
        let f = m.add_ite(x1, c6, c2);
        let s = m.add_stats(f).root();
        assert_eq!(s.avg, 4.0);
        assert_eq!(s.var, 4.0);
    }

    #[test]
    fn paper_example4_node_n() {
        // Sub-ADD rooted in node n of Fig. 4a: xf assignments give value 0
        // once and 10 three times (avg 7.5 over the single variable split:
        // left child avg 5 var 25, right child constant 10).
        let mut m = Manager::new(2);
        let xf1 = m.bdd_var(Var(0));
        let xf2 = m.bdd_var(Var(1));
        let c0 = m.constant(0.0);
        let c10 = m.constant(10.0);
        let left = m.add_ite(xf2, c10, c0); // 0 if xf2=0 else 10: avg 5, var 25
        let n = m.add_ite(xf1, c10, left);
        let s = m.add_stats(n).root();
        assert_eq!(s.avg, 7.5);
        assert_eq!(s.var, 18.75);
        assert_eq!(s.max, 10.0);
        // Example 5: mse(n) = 18.75 + (10 - 7.5)^2 = 25.
        assert_eq!(s.mse_of_max(), 25.0);
    }

    #[test]
    fn convenience_accessors() {
        let mut m = Manager::new(1);
        let x = m.bdd_var(Var(0));
        let c1 = m.constant(1.0);
        let c9 = m.constant(9.0);
        let f = m.add_ite(x, c9, c1);
        assert_eq!(m.add_avg(f), 5.0);
        assert_eq!(m.add_max_value(f), 9.0);
        assert_eq!(m.add_min_value(f), 1.0);
    }

    #[test]
    fn stats_iteration_covers_all_nodes() {
        let mut m = Manager::new(2);
        let x0 = m.bdd_var(Var(0));
        let x1 = m.bdd_var(Var(1));
        let c5 = m.constant(5.0);
        let zero = m.add_zero();
        let inner = m.add_ite(x1, c5, zero);
        let f = m.add_ite(x0, inner, zero);
        let stats = m.add_stats(f);
        assert_eq!(stats.len(), m.size(f.node()));
        assert!(!stats.is_empty());
        assert!(stats.get(f.node()).is_some());
    }
}
