//! The decision-diagram manager: arenas, unique tables, computed tables and
//! the core `mk` constructor that keeps diagrams reduced and canonical.

use crate::budget::{Budget, DdError};
use crate::hash::{FxHashMap, FxHashSet};
use crate::node::{Node, NodeId, Var};

/// A reduced ordered *binary* decision diagram rooted in a manager.
///
/// A `Bdd` is represented internally as an ADD whose terminals are exactly
/// `0.0` and `1.0`; the newtype keeps Boolean and arithmetic diagrams from
/// being mixed up at the API level ([C-NEWTYPE]).
///
/// # Examples
///
/// ```
/// use charfree_dd::{Manager, Var};
///
/// let mut m = Manager::new(2);
/// let x0 = m.bdd_var(Var(0));
/// let x1 = m.bdd_var(Var(1));
/// let f = m.bdd_and(x0, x1);
/// assert!(m.bdd_eval(f, &[true, true]));
/// assert!(!m.bdd_eval(f, &[true, false]));
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) NodeId);

/// A reduced ordered *algebraic* decision diagram (ADD): a map from Boolean
/// input vectors to `f64` values, rooted in a manager.
///
/// # Examples
///
/// ```
/// use charfree_dd::{Manager, Var};
///
/// let mut m = Manager::new(1);
/// let x = m.bdd_var(Var(0));
/// let heavy = m.constant(40.0);
/// let light = m.constant(10.0);
/// let f = m.add_ite(x, heavy, light);
/// assert_eq!(m.add_eval(f, &[true]), 40.0);
/// assert_eq!(m.add_eval(f, &[false]), 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Add(pub(crate) NodeId);

impl Bdd {
    /// The underlying node handle (shared with the ADD view of the diagram).
    #[inline]
    pub fn node(self) -> NodeId {
        self.0
    }

    /// Reinterpret this Boolean diagram as a 0/1-valued ADD (free).
    #[inline]
    pub fn as_add(self) -> Add {
        Add(self.0)
    }

    /// Wrap a raw node handle obtained from [`Bdd::node`].
    ///
    /// The handle must originate from the same manager and designate a
    /// diagram with 0/1 terminals; this is not re-checked (use
    /// [`Manager::add_to_bdd`] for a checked conversion).
    #[inline]
    pub fn from_node(id: NodeId) -> Bdd {
        Bdd(id)
    }
}

impl Add {
    /// The underlying node handle.
    #[inline]
    pub fn node(self) -> NodeId {
        self.0
    }

    /// Wrap a raw node handle obtained from [`Add::node`].
    ///
    /// The handle must originate from the same manager and designate a
    /// diagram with numeric terminals; this is not re-checked.
    #[inline]
    pub fn from_node(id: NodeId) -> Add {
        Add(id)
    }
}

/// Binary operations understood by [`Manager::add_apply`].
///
/// Boolean operations interpret terminals `0.0`/`1.0`; arithmetic operations
/// work on arbitrary finite terminals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Boolean conjunction (terminals must be 0/1).
    And,
    /// Boolean disjunction (terminals must be 0/1).
    Or,
    /// Boolean exclusive or (terminals must be 0/1).
    Xor,
    /// Pointwise addition.
    Plus,
    /// Pointwise subtraction.
    Minus,
    /// Pointwise multiplication.
    Times,
    /// Pointwise minimum.
    Min,
    /// Pointwise maximum.
    Max,
}

impl BinOp {
    #[inline]
    fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::And => {
                debug_assert!(is_bool(a) && is_bool(b));
                if a != 0.0 && b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            BinOp::Or => {
                debug_assert!(is_bool(a) && is_bool(b));
                if a != 0.0 || b != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            BinOp::Xor => {
                debug_assert!(is_bool(a) && is_bool(b));
                if (a != 0.0) != (b != 0.0) {
                    1.0
                } else {
                    0.0
                }
            }
            BinOp::Plus => a + b,
            BinOp::Minus => a - b,
            BinOp::Times => a * b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }

    #[inline]
    fn opcode(self) -> u8 {
        match self {
            BinOp::And => 0,
            BinOp::Or => 1,
            BinOp::Xor => 2,
            BinOp::Plus => 3,
            BinOp::Minus => 4,
            BinOp::Times => 5,
            BinOp::Min => 6,
            BinOp::Max => 7,
        }
    }

    #[inline]
    fn is_commutative(self) -> bool {
        !matches!(self, BinOp::Minus)
    }
}

#[inline]
fn is_bool(v: f64) -> bool {
    v == 0.0 || v == 1.0
}

/// Owner of all decision-diagram nodes.
///
/// All diagrams created by one manager share nodes (maximal sharing), which
/// is what makes equality checks O(1) and symbolic operations polynomial in
/// diagram size. Handles ([`Bdd`], [`Add`]) must never be mixed across
/// managers.
///
/// The variable order is the creation order: variable `Var(0)` is tested
/// first. Use [`Manager::permute`] to move a diagram to a different order.
///
/// # Examples
///
/// ```
/// use charfree_dd::{Manager, Var};
///
/// let mut m = Manager::new(3);
/// let x = m.bdd_var(Var(0));
/// let y = m.bdd_var(Var(1));
/// let same = m.bdd_and(x, y);
/// let again = m.bdd_and(x, y);
/// assert_eq!(same, again); // canonicity: equal functions, equal handles
/// ```
#[derive(Debug, Clone)]
pub struct Manager {
    nodes: Vec<Node>,
    terminals: Vec<f64>,
    unique: FxHashMap<Node, NodeId>,
    term_unique: FxHashMap<u64, NodeId>,
    cache2: FxHashMap<(u8, NodeId, NodeId), NodeId>,
    cache3: FxHashMap<(NodeId, NodeId, NodeId), NodeId>,
    num_vars: u32,
    var_names: Vec<Option<String>>,
    zero: NodeId,
    one: NodeId,
}

impl Manager {
    /// Creates a manager with `num_vars` decision variables.
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_dd::Manager;
    /// let m = Manager::new(4);
    /// assert_eq!(m.num_vars(), 4);
    /// ```
    pub fn new(num_vars: u32) -> Self {
        let mut m = Manager {
            nodes: Vec::new(),
            terminals: Vec::new(),
            unique: FxHashMap::default(),
            term_unique: FxHashMap::default(),
            cache2: FxHashMap::default(),
            cache3: FxHashMap::default(),
            num_vars,
            var_names: vec![None; num_vars as usize],
            zero: NodeId::terminal(0),
            one: NodeId::terminal(0),
        };
        m.zero = m.terminal(0.0);
        m.one = m.terminal(1.0);
        m
    }

    /// Number of decision variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Appends a fresh variable at the bottom of the order and returns it.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        self.var_names.push(None);
        v
    }

    /// Assigns a display name to `var` (used by [`Manager::to_dot`]).
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set_var_name(&mut self, var: Var, name: impl Into<String>) {
        self.var_names[var.0 as usize] = Some(name.into());
    }

    /// The display name of `var`, if one was assigned.
    pub fn var_name(&self, var: Var) -> Option<&str> {
        self.var_names
            .get(var.0 as usize)
            .and_then(|n| n.as_deref())
    }

    /// Total number of live nodes in the arena (internal + terminal),
    /// across *all* diagrams; see [`Manager::size`] for a single diagram.
    pub fn arena_len(&self) -> usize {
        self.nodes.len() + self.terminals.len()
    }

    /// Approximate arena memory in bytes: node and terminal storage only
    /// (unique/computed hash tables are not counted). This is the figure
    /// a [`Budget::with_max_arena_bytes`] limit is checked against.
    pub fn arena_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + self.terminals.len() * std::mem::size_of::<f64>()
    }

    // ----- terminals -------------------------------------------------------

    /// Interns the terminal node for `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN (terminals must be totally ordered).
    pub fn terminal(&mut self, value: f64) -> NodeId {
        assert!(!value.is_nan(), "decision-diagram terminals cannot be NaN");
        // Fold -0.0 into +0.0 so that bit-level interning stays canonical.
        let value = if value == 0.0 { 0.0 } else { value };
        let bits = value.to_bits();
        if let Some(&id) = self.term_unique.get(&bits) {
            return id;
        }
        let id = NodeId::terminal(self.terminals.len() as u32);
        self.terminals.push(value);
        self.term_unique.insert(bits, id);
        id
    }

    /// The constant ADD with value `value` everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn constant(&mut self, value: f64) -> Add {
        Add(self.terminal(value))
    }

    /// Value of a terminal node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a terminal of this manager.
    #[inline]
    pub fn terminal_value(&self, id: NodeId) -> f64 {
        assert!(id.is_terminal(), "terminal_value on internal node");
        self.terminals[id.arena_index()]
    }

    /// The constant-false BDD.
    #[inline]
    pub fn bdd_false(&self) -> Bdd {
        Bdd(self.zero)
    }

    /// The constant-true BDD.
    #[inline]
    pub fn bdd_true(&self) -> Bdd {
        Bdd(self.one)
    }

    /// The all-zero ADD.
    #[inline]
    pub fn add_zero(&self) -> Add {
        Add(self.zero)
    }

    // ----- structural accessors -------------------------------------------

    /// The decision variable tested at node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    #[inline]
    pub fn node_var(&self, id: NodeId) -> Var {
        assert!(!id.is_terminal(), "node_var on terminal");
        Var(self.nodes[id.arena_index()].var)
    }

    /// The `(lo, hi)` children of internal node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is a terminal.
    #[inline]
    pub fn children(&self, id: NodeId) -> (NodeId, NodeId) {
        assert!(!id.is_terminal(), "children of terminal");
        let n = &self.nodes[id.arena_index()];
        (n.lo, n.hi)
    }

    #[inline]
    fn level(&self, id: NodeId) -> u32 {
        if id.is_terminal() {
            u32::MAX
        } else {
            self.nodes[id.arena_index()].var
        }
    }

    /// Cofactors of `f` with respect to the variable at `level`; identity if
    /// `f` does not test that level at its root.
    #[inline]
    fn expand(&self, f: NodeId, level: u32) -> (NodeId, NodeId) {
        if self.level(f) == level {
            let n = &self.nodes[f.arena_index()];
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// The reduced, canonical node testing `var` with children `lo`/`hi`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or if either child tests a variable
    /// at or above `var` (order violation).
    pub(crate) fn mk(&mut self, var: u32, lo: NodeId, hi: NodeId) -> NodeId {
        if lo == hi {
            return lo;
        }
        assert!(var < self.num_vars, "variable out of range");
        debug_assert!(
            self.level(lo) > var && self.level(hi) > var,
            "order violation"
        );
        let key = Node { var, lo, hi };
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = NodeId::internal(self.nodes.len() as u32);
        self.nodes.push(key);
        self.unique.insert(key, id);
        id
    }

    // ----- BDD construction -------------------------------------------------

    /// The BDD of the single variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn bdd_var(&mut self, var: Var) -> Bdd {
        let (zero, one) = (self.zero, self.one);
        Bdd(self.mk(var.0, zero, one))
    }

    /// The BDD of the negated variable `var`.
    pub fn bdd_nvar(&mut self, var: Var) -> Bdd {
        let (zero, one) = (self.zero, self.one);
        Bdd(self.mk(var.0, one, zero))
    }

    /// Boolean complement.
    pub fn bdd_not(&mut self, f: Bdd) -> Bdd {
        // XOR with true keeps the cache shared with other operations.
        let one = Bdd(self.one);
        self.bdd_xor(f, one)
    }

    /// Boolean conjunction.
    pub fn bdd_and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(BinOp::And, f.0, g.0))
    }

    /// Boolean disjunction.
    pub fn bdd_or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(BinOp::Or, f.0, g.0))
    }

    /// Boolean exclusive or.
    pub fn bdd_xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Bdd(self.apply(BinOp::Xor, f.0, g.0))
    }

    /// Boolean equivalence (`f ↔ g`).
    pub fn bdd_xnor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let x = self.bdd_xor(f, g);
        self.bdd_not(x)
    }

    /// Boolean implication (`f → g`).
    pub fn bdd_implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let nf = self.bdd_not(f);
        self.bdd_or(nf, g)
    }

    /// Boolean difference (`f ∧ ¬g`).
    pub fn bdd_diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.bdd_not(g);
        self.bdd_and(f, ng)
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)`.
    pub fn bdd_ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        Bdd(self.ite_rec(f.0, g.0, h.0))
    }

    // ----- ADD construction -------------------------------------------------

    /// Applies a pointwise binary operation to two ADDs.
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_dd::{BinOp, Manager, Var};
    ///
    /// let mut m = Manager::new(1);
    /// let x = m.bdd_var(Var(0));
    /// let two = m.constant(2.0);
    /// let five = m.constant(5.0);
    /// let f = m.add_ite(x, two, five); // x ? 2 : 5
    /// let g = m.add_apply(BinOp::Plus, f, f);
    /// assert_eq!(m.add_eval(g, &[false]), 10.0);
    /// ```
    pub fn add_apply(&mut self, op: BinOp, f: Add, g: Add) -> Add {
        Add(self.apply(op, f.0, g.0))
    }

    /// Pointwise sum (`add_sum` in the paper's pseudo-code, Fig. 6).
    pub fn add_plus(&mut self, f: Add, g: Add) -> Add {
        self.add_apply(BinOp::Plus, f, g)
    }

    /// Pointwise difference.
    pub fn add_minus(&mut self, f: Add, g: Add) -> Add {
        self.add_apply(BinOp::Minus, f, g)
    }

    /// Pointwise product.
    pub fn add_times(&mut self, f: Add, g: Add) -> Add {
        self.add_apply(BinOp::Times, f, g)
    }

    /// Pointwise minimum.
    pub fn add_min(&mut self, f: Add, g: Add) -> Add {
        self.add_apply(BinOp::Min, f, g)
    }

    /// Pointwise maximum.
    pub fn add_max(&mut self, f: Add, g: Add) -> Add {
        self.add_apply(BinOp::Max, f, g)
    }

    /// Multiplies every terminal by the constant `c`
    /// (`add_times(deltaC, C_i)` in the paper's pseudo-code).
    ///
    /// # Panics
    ///
    /// Panics if `c` is NaN.
    pub fn add_scale(&mut self, f: Add, c: f64) -> Add {
        let k = self.constant(c);
        self.add_times(f, k)
    }

    /// Selects between two ADDs with a Boolean condition: `b ? g : h`
    /// pointwise.
    pub fn add_ite(&mut self, b: Bdd, g: Add, h: Add) -> Add {
        Add(self.ite_rec(b.0, g.0, h.0))
    }

    /// Remaps every terminal through `f64 -> f64` function `op`.
    ///
    /// The result is reduced (merged equal terminals collapse structure).
    /// Not cached across calls.
    ///
    /// # Panics
    ///
    /// Panics if `op` produces NaN.
    pub fn add_map_terminals(&mut self, f: Add, op: impl Fn(f64) -> f64) -> Add {
        let mut memo: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        Add(self.map_terminals_rec(f.0, &op, &mut memo))
    }

    fn map_terminals_rec(
        &mut self,
        f: NodeId,
        op: &impl Fn(f64) -> f64,
        memo: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if f.is_terminal() {
            let v = op(self.terminal_value(f));
            self.terminal(v)
        } else {
            let (lo, hi) = self.children(f);
            let var = self.level(f);
            let lo2 = self.map_terminals_rec(lo, op, memo);
            let hi2 = self.map_terminals_rec(hi, op, memo);
            self.mk(var, lo2, hi2)
        };
        memo.insert(f, r);
        r
    }

    /// The BDD of input vectors whose ADD value satisfies `pred`.
    ///
    /// Useful to enumerate, e.g., all transitions whose switching
    /// capacitance reaches the maximum.
    pub fn add_threshold(&mut self, f: Add, pred: impl Fn(f64) -> bool) -> Bdd {
        let g = self.add_map_terminals(f, |v| if pred(v) { 1.0 } else { 0.0 });
        Bdd(g.0)
    }

    /// Reinterprets a BDD as a 0/1 ADD (free; the representation is shared).
    #[inline]
    pub fn bdd_to_add(&self, f: Bdd) -> Add {
        f.as_add()
    }

    /// Converts a 0/1-valued ADD back into a BDD.
    ///
    /// # Panics
    ///
    /// Panics if the ADD has a terminal other than `0.0`/`1.0`.
    pub fn add_to_bdd(&self, f: Add) -> Bdd {
        for v in self.terminal_values(f.0) {
            assert!(is_bool(v), "ADD terminal {v} is not Boolean");
        }
        Bdd(f.0)
    }

    // ----- budgeted (fallible) operations -----------------------------------
    //
    // Every potentially explosive operation has a `try_*` twin taking a
    // `&Budget`; the infallible API above delegates to these with
    // `Budget::unlimited()`. On `Err`, partially built nodes stay in the
    // arena as garbage until the next `compact`.

    /// Budgeted [`Manager::bdd_not`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_not(&mut self, f: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        let one = Bdd(self.one);
        self.try_bdd_xor(f, one, budget)
    }

    /// Budgeted [`Manager::bdd_and`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_and(&mut self, f: Bdd, g: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        Ok(Bdd(self.apply_in(BinOp::And, f.0, g.0, budget)?))
    }

    /// Budgeted [`Manager::bdd_or`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_or(&mut self, f: Bdd, g: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        Ok(Bdd(self.apply_in(BinOp::Or, f.0, g.0, budget)?))
    }

    /// Budgeted [`Manager::bdd_xor`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_xor(&mut self, f: Bdd, g: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        Ok(Bdd(self.apply_in(BinOp::Xor, f.0, g.0, budget)?))
    }

    /// Budgeted [`Manager::bdd_xnor`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_xnor(&mut self, f: Bdd, g: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        let x = self.try_bdd_xor(f, g, budget)?;
        self.try_bdd_not(x, budget)
    }

    /// Budgeted [`Manager::bdd_implies`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_implies(&mut self, f: Bdd, g: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        let nf = self.try_bdd_not(f, budget)?;
        self.try_bdd_or(nf, g, budget)
    }

    /// Budgeted [`Manager::bdd_diff`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_diff(&mut self, f: Bdd, g: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        let ng = self.try_bdd_not(g, budget)?;
        self.try_bdd_and(f, ng, budget)
    }

    /// Budgeted [`Manager::bdd_ite`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_ite(&mut self, f: Bdd, g: Bdd, h: Bdd, budget: &Budget) -> Result<Bdd, DdError> {
        Ok(Bdd(self.ite_in(f.0, g.0, h.0, budget)?))
    }

    /// Budgeted [`Manager::add_apply`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_add_apply(
        &mut self,
        op: BinOp,
        f: Add,
        g: Add,
        budget: &Budget,
    ) -> Result<Add, DdError> {
        Ok(Add(self.apply_in(op, f.0, g.0, budget)?))
    }

    /// Budgeted [`Manager::add_plus`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_add_plus(&mut self, f: Add, g: Add, budget: &Budget) -> Result<Add, DdError> {
        self.try_add_apply(BinOp::Plus, f, g, budget)
    }

    /// Budgeted [`Manager::add_minus`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_add_minus(&mut self, f: Add, g: Add, budget: &Budget) -> Result<Add, DdError> {
        self.try_add_apply(BinOp::Minus, f, g, budget)
    }

    /// Budgeted [`Manager::add_times`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_add_times(&mut self, f: Add, g: Add, budget: &Budget) -> Result<Add, DdError> {
        self.try_add_apply(BinOp::Times, f, g, budget)
    }

    /// Budgeted [`Manager::add_min`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_add_min(&mut self, f: Add, g: Add, budget: &Budget) -> Result<Add, DdError> {
        self.try_add_apply(BinOp::Min, f, g, budget)
    }

    /// Budgeted [`Manager::add_max`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_add_max(&mut self, f: Add, g: Add, budget: &Budget) -> Result<Add, DdError> {
        self.try_add_apply(BinOp::Max, f, g, budget)
    }

    /// Budgeted [`Manager::add_scale`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    ///
    /// # Panics
    ///
    /// Panics if `c` is NaN.
    pub fn try_add_scale(&mut self, f: Add, c: f64, budget: &Budget) -> Result<Add, DdError> {
        let k = self.constant(c);
        self.try_add_times(f, k, budget)
    }

    /// Budgeted [`Manager::add_ite`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_add_ite(&mut self, b: Bdd, g: Add, h: Add, budget: &Budget) -> Result<Add, DdError> {
        Ok(Add(self.ite_in(b.0, g.0, h.0, budget)?))
    }

    /// Budgeted [`Manager::bdd_exists`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_exists(&mut self, f: Bdd, var: Var, budget: &Budget) -> Result<Bdd, DdError> {
        let lo = self.restrict(f.0, var, false);
        let hi = self.restrict(f.0, var, true);
        Ok(Bdd(self.apply_in(BinOp::Or, lo, hi, budget)?))
    }

    /// Budgeted [`Manager::bdd_forall`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_forall(&mut self, f: Bdd, var: Var, budget: &Budget) -> Result<Bdd, DdError> {
        let lo = self.restrict(f.0, var, false);
        let hi = self.restrict(f.0, var, true);
        Ok(Bdd(self.apply_in(BinOp::And, lo, hi, budget)?))
    }

    /// Budgeted [`Manager::bdd_compose`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    pub fn try_bdd_compose(
        &mut self,
        f: Bdd,
        var: Var,
        g: Bdd,
        budget: &Budget,
    ) -> Result<Bdd, DdError> {
        let lo = self.restrict(f.0, var, false);
        let hi = self.restrict(f.0, var, true);
        Ok(Bdd(self.ite_in(g.0, hi, lo, budget)?))
    }

    /// Budgeted [`Manager::permute`].
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] when `budget` runs out.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != num_vars as usize`.
    pub fn try_permute(
        &mut self,
        f: NodeId,
        perm: &[Var],
        budget: &Budget,
    ) -> Result<NodeId, DdError> {
        assert_eq!(
            perm.len(),
            self.num_vars as usize,
            "permutation size mismatch"
        );
        let mut memo: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        self.permute_rec(f, perm, budget, &mut memo)
    }

    // ----- core recursions --------------------------------------------------

    /// Infallible apply: delegates to the budgeted recursion with an
    /// unlimited budget, which cannot fail.
    fn apply(&mut self, op: BinOp, f: NodeId, g: NodeId) -> NodeId {
        self.apply_in(op, f, g, &Budget::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    fn apply_in(
        &mut self,
        op: BinOp,
        f: NodeId,
        g: NodeId,
        budget: &Budget,
    ) -> Result<NodeId, DdError> {
        // Terminal short-circuits.
        if f.is_terminal() && g.is_terminal() {
            let v = op.eval(self.terminal_value(f), self.terminal_value(g));
            return Ok(self.terminal(v));
        }
        match op {
            BinOp::And => {
                if f == self.zero || g == self.zero {
                    return Ok(self.zero);
                }
                if f == self.one {
                    return Ok(g);
                }
                if g == self.one {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            BinOp::Or => {
                if f == self.one || g == self.one {
                    return Ok(self.one);
                }
                if f == self.zero {
                    return Ok(g);
                }
                if g == self.zero {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            BinOp::Xor => {
                if f == g {
                    return Ok(self.zero);
                }
                if f == self.zero {
                    return Ok(g);
                }
                if g == self.zero {
                    return Ok(f);
                }
            }
            BinOp::Plus => {
                if f == self.zero {
                    return Ok(g);
                }
                if g == self.zero {
                    return Ok(f);
                }
            }
            BinOp::Minus => {
                if g == self.zero {
                    return Ok(f);
                }
            }
            BinOp::Times => {
                if f == self.zero || g == self.zero {
                    return Ok(self.zero);
                }
                if f == self.one {
                    return Ok(g);
                }
                if g == self.one {
                    return Ok(f);
                }
            }
            BinOp::Min | BinOp::Max => {
                if f == g {
                    return Ok(f);
                }
            }
        }

        let (a, b) = if op.is_commutative() && g < f {
            (g, f)
        } else {
            (f, g)
        };
        let key = (op.opcode(), a, b);
        if let Some(&r) = self.cache2.get(&key) {
            return Ok(r);
        }

        // Recursion checkpoint: this is a cache miss, so real work — and
        // up to one fresh node — happens past this point.
        budget.checkpoint(self.arena_len(), self.arena_bytes())?;

        let level = self.level(a).min(self.level(b));
        let (a0, a1) = self.expand(a, level);
        let (b0, b1) = self.expand(b, level);
        let lo = self.apply_in(op, a0, b0, budget)?;
        let hi = self.apply_in(op, a1, b1, budget)?;
        let r = self.mk(level, lo, hi);
        self.cache2.insert(key, r);
        Ok(r)
    }

    /// Infallible ITE: delegates to the budgeted recursion with an
    /// unlimited budget, which cannot fail.
    fn ite_rec(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        self.ite_in(f, g, h, &Budget::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    fn ite_in(
        &mut self,
        f: NodeId,
        g: NodeId,
        h: NodeId,
        budget: &Budget,
    ) -> Result<NodeId, DdError> {
        if f == self.one {
            return Ok(g);
        }
        if f == self.zero {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == self.one && h == self.zero {
            return Ok(f);
        }
        let key = (f, g, h);
        if let Some(&r) = self.cache3.get(&key) {
            return Ok(r);
        }

        // Recursion checkpoint (cache miss — see `apply_in`).
        budget.checkpoint(self.arena_len(), self.arena_bytes())?;

        let level = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.expand(f, level);
        let (g0, g1) = self.expand(g, level);
        let (h0, h1) = self.expand(h, level);
        let lo = self.ite_in(f0, g0, h0, budget)?;
        let hi = self.ite_in(f1, g1, h1, budget)?;
        let r = self.mk(level, lo, hi);
        self.cache3.insert(key, r);
        Ok(r)
    }

    // ----- evaluation & inspection ------------------------------------------

    /// Evaluates a BDD under a complete input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` is smaller than the largest variable
    /// index tested by `f`.
    pub fn bdd_eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        self.eval_node(f.0, assignment) != 0.0
    }

    /// Evaluates an ADD under a complete input assignment.
    ///
    /// Runs in time linear in the number of variables — this is the paper's
    /// "negligible run-time model evaluation".
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` is smaller than the largest variable
    /// index tested by `f`.
    pub fn add_eval(&self, f: Add, assignment: &[bool]) -> f64 {
        self.eval_node(f.0, assignment)
    }

    fn eval_node(&self, mut f: NodeId, assignment: &[bool]) -> f64 {
        while !f.is_terminal() {
            let n = &self.nodes[f.arena_index()];
            f = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        self.terminal_value(f)
    }

    /// Number of distinct nodes reachable from `root`, terminals included
    /// (CUDD's `Cudd_DagSize` convention, which is also how the paper counts
    /// "ADD nodes" against `MAX`).
    pub fn size(&self, root: NodeId) -> usize {
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) || id.is_terminal() {
                continue;
            }
            let (lo, hi) = self.children(id);
            stack.push(lo);
            stack.push(hi);
        }
        seen.len()
    }

    /// Number of *internal* (decision) nodes reachable from `root`.
    pub fn internal_size(&self, root: NodeId) -> usize {
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![root];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            if !seen.insert(id) || id.is_terminal() {
                continue;
            }
            count += 1;
            let (lo, hi) = self.children(id);
            stack.push(lo);
            stack.push(hi);
        }
        count
    }

    /// All internal nodes reachable from `root`, children before parents.
    pub fn topological_nodes(&self, root: NodeId) -> Vec<NodeId> {
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut order = Vec::new();
        // The arena is naturally topological (children are interned before
        // parents), so a reachability pass plus an index sort suffices.
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            order.push(id);
            let (lo, hi) = self.children(id);
            stack.push(lo);
            stack.push(hi);
        }
        order.sort_by_key(|id| id.arena_index());
        order
    }

    /// The set of distinct terminal values reachable from `root`
    /// (ascending).
    pub fn terminal_values(&self, root: NodeId) -> Vec<f64> {
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![root];
        let mut values = Vec::new();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if id.is_terminal() {
                values.push(self.terminal_value(id));
            } else {
                let (lo, hi) = self.children(id);
                stack.push(lo);
                stack.push(hi);
            }
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("terminals are not NaN"));
        values
    }

    /// The variables actually tested anywhere in `root` (ascending).
    pub fn support(&self, root: NodeId) -> Vec<Var> {
        let mut vars: FxHashSet<u32> = FxHashSet::default();
        for id in self.topological_nodes(root) {
            vars.insert(self.nodes[id.arena_index()].var);
        }
        let mut vars: Vec<Var> = vars.into_iter().map(Var).collect();
        vars.sort();
        vars
    }

    // ----- restriction, composition, quantification --------------------------

    /// Restriction (cofactor): `f` with `var` fixed to `value`.
    pub fn restrict(&mut self, f: NodeId, var: Var, value: bool) -> NodeId {
        let mut memo: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        self.restrict_rec(f, var.0, value, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        var: u32,
        value: bool,
        memo: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() || self.level(f) > var {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (lo, hi) = self.children(f);
        let v = self.level(f);
        let r = if v == var {
            if value {
                hi
            } else {
                lo
            }
        } else {
            let lo2 = self.restrict_rec(lo, var, value, memo);
            let hi2 = self.restrict_rec(hi, var, value, memo);
            self.mk(v, lo2, hi2)
        };
        memo.insert(f, r);
        r
    }

    /// Existential quantification of a BDD over `var`.
    pub fn bdd_exists(&mut self, f: Bdd, var: Var) -> Bdd {
        let lo = self.restrict(f.0, var, false);
        let hi = self.restrict(f.0, var, true);
        Bdd(self.apply(BinOp::Or, lo, hi))
    }

    /// Universal quantification of a BDD over `var`.
    pub fn bdd_forall(&mut self, f: Bdd, var: Var) -> Bdd {
        let lo = self.restrict(f.0, var, false);
        let hi = self.restrict(f.0, var, true);
        Bdd(self.apply(BinOp::And, lo, hi))
    }

    /// Rewrites `f` replacing every test of variable `v` by a test of
    /// `perm[v]`. `perm` must be a permutation of `0..num_vars`.
    ///
    /// This is how node functions built over `n` circuit inputs are moved
    /// onto the `xⁱ` or `xᶠ` variable block of the `2n`-variable transition
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if `perm.len() != num_vars as usize` or `perm` maps a tested
    /// variable out of range.
    pub fn permute(&mut self, f: NodeId, perm: &[Var]) -> NodeId {
        self.try_permute(f, perm, &Budget::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    fn permute_rec(
        &mut self,
        f: NodeId,
        perm: &[Var],
        budget: &Budget,
        memo: &mut FxHashMap<NodeId, NodeId>,
    ) -> Result<NodeId, DdError> {
        if f.is_terminal() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let (lo, hi) = self.children(f);
        let v = self.level(f);
        let lo2 = self.permute_rec(lo, perm, budget, memo)?;
        let hi2 = self.permute_rec(hi, perm, budget, memo)?;
        let sel = self.bdd_var(perm[v as usize]);
        let r = self.ite_in(sel.0, hi2, lo2, budget)?;
        memo.insert(f, r);
        Ok(r)
    }

    /// Functional composition: `f` with variable `var` replaced by the
    /// function `g`.
    pub fn bdd_compose(&mut self, f: Bdd, var: Var, g: Bdd) -> Bdd {
        let lo = self.restrict(f.0, var, false);
        let hi = self.restrict(f.0, var, true);
        Bdd(self.ite_rec(g.0, hi, lo))
    }

    /// Number of satisfying assignments of a BDD over `num_vars` variables.
    pub fn sat_count(&self, f: Bdd) -> f64 {
        let mut memo: FxHashMap<NodeId, f64> = FxHashMap::default();
        let frac = self.sat_frac(f.0, &mut memo);
        frac * 2f64.powi(self.num_vars as i32)
    }

    fn sat_frac(&self, f: NodeId, memo: &mut FxHashMap<NodeId, f64>) -> f64 {
        if f.is_terminal() {
            return if self.terminal_value(f) != 0.0 {
                1.0
            } else {
                0.0
            };
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let (lo, hi) = self.children(f);
        let r = 0.5 * (self.sat_frac(lo, memo) + self.sat_frac(hi, memo));
        memo.insert(f, r);
        r
    }

    /// One satisfying assignment of `f`, or `None` if unsatisfiable.
    /// Variables outside the support of `f` are returned as `false`.
    pub fn pick_sat(&self, f: Bdd) -> Option<Vec<bool>> {
        if f.0 == self.zero {
            return None;
        }
        let mut assignment = vec![false; self.num_vars as usize];
        let mut cur = f.0;
        while !cur.is_terminal() {
            let n = &self.nodes[cur.arena_index()];
            // Prefer whichever child is not constant-false.
            if n.hi != self.zero {
                assignment[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        debug_assert_ne!(self.terminal_value(cur), 0.0);
        Some(assignment)
    }

    // ----- housekeeping -------------------------------------------------------

    /// Drops all computed-table entries (unique tables are kept — diagrams
    /// stay valid). Useful to bound memory between large model builds.
    pub fn clear_caches(&mut self) {
        self.cache2.clear();
        self.cache3.clear();
    }

    /// Garbage-collects the arena, keeping only nodes reachable from
    /// `roots`. Returns the remapped handles for `roots`, in order.
    ///
    /// **Every** handle not passed through `roots` is invalidated.
    pub fn compact(&mut self, roots: &[NodeId]) -> Vec<NodeId> {
        // Reachability.
        let mut keep: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack: Vec<NodeId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if !keep.insert(id) || id.is_terminal() {
                continue;
            }
            let (lo, hi) = self.children(id);
            stack.push(lo);
            stack.push(hi);
        }

        // Rebuild arenas in (topological) index order.
        let mut remap: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        let mut new_terms: Vec<f64> = Vec::new();
        let mut new_term_unique: FxHashMap<u64, NodeId> = FxHashMap::default();
        for (i, &v) in self.terminals.iter().enumerate() {
            let old = NodeId::terminal(i as u32);
            // Always keep 0/1 so `zero`/`one` handles stay valid.
            if keep.contains(&old) || v == 0.0 || v == 1.0 {
                let id = NodeId::terminal(new_terms.len() as u32);
                new_terms.push(v);
                new_term_unique.insert(v.to_bits(), id);
                remap.insert(old, id);
            }
        }
        let mut new_nodes: Vec<Node> = Vec::new();
        let mut new_unique: FxHashMap<Node, NodeId> = FxHashMap::default();
        for (i, n) in self.nodes.iter().enumerate() {
            let old = NodeId::internal(i as u32);
            if !keep.contains(&old) {
                continue;
            }
            let key = Node {
                var: n.var,
                lo: remap[&n.lo],
                hi: remap[&n.hi],
            };
            let id = NodeId::internal(new_nodes.len() as u32);
            new_nodes.push(key);
            new_unique.insert(key, id);
            remap.insert(old, id);
        }

        self.nodes = new_nodes;
        self.terminals = new_terms;
        self.unique = new_unique;
        self.term_unique = new_term_unique;
        self.cache2.clear();
        self.cache3.clear();
        self.zero = remap[&self.zero];
        self.one = remap[&self.one];
        roots.iter().map(|r| remap[r]).collect()
    }

    /// Renders `root` in Graphviz DOT syntax (solid edge = `1`, dashed =
    /// `0`).
    pub fn to_dot(&self, root: NodeId) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph dd {\n  rankdir=TB;\n");
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if id.is_terminal() {
                let _ = writeln!(
                    out,
                    "  \"{id:?}\" [shape=box,label=\"{}\"];",
                    self.terminal_value(id)
                );
            } else {
                let var = self.node_var(id);
                let label = self
                    .var_name(var)
                    .map(str::to_owned)
                    .unwrap_or_else(|| var.to_string());
                let _ = writeln!(out, "  \"{id:?}\" [shape=circle,label=\"{label}\"];");
                let (lo, hi) = self.children(id);
                let _ = writeln!(out, "  \"{id:?}\" -> \"{lo:?}\" [style=dashed];");
                let _ = writeln!(out, "  \"{id:?}\" -> \"{hi:?}\";");
                stack.push(lo);
                stack.push(hi);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup3() -> (Manager, Bdd, Bdd, Bdd) {
        let mut m = Manager::new(3);
        let a = m.bdd_var(Var(0));
        let b = m.bdd_var(Var(1));
        let c = m.bdd_var(Var(2));
        (m, a, b, c)
    }

    #[test]
    fn constants_are_interned() {
        let mut m = Manager::new(0);
        assert_eq!(m.constant(2.5), m.constant(2.5));
        assert_eq!(m.constant(0.0), m.constant(-0.0));
        assert_ne!(m.constant(1.0), m.constant(2.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_terminal_panics() {
        let mut m = Manager::new(0);
        let _ = m.constant(f64::NAN);
    }

    #[test]
    fn canonicity_of_boolean_ops() {
        let (mut m, a, b, _) = setup3();
        let ab = m.bdd_and(a, b);
        let ba = m.bdd_and(b, a);
        assert_eq!(ab, ba);

        // De Morgan.
        let na = m.bdd_not(a);
        let nb = m.bdd_not(b);
        let lhs = m.bdd_not(ab);
        let rhs = m.bdd_or(na, nb);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn double_negation() {
        let (mut m, a, b, c) = setup3();
        let f = m.bdd_xor(a, b);
        let f = m.bdd_or(f, c);
        let nf = m.bdd_not(f);
        let nnf = m.bdd_not(nf);
        assert_eq!(f, nnf);
    }

    #[test]
    fn eval_matches_semantics() {
        let (mut m, a, b, c) = setup3();
        let ab = m.bdd_and(a, b);
        let f = m.bdd_or(ab, c);
        for bits in 0..8u32 {
            let assignment = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = (assignment[0] && assignment[1]) || assignment[2];
            assert_eq!(m.bdd_eval(f, &assignment), expected, "bits={bits:03b}");
        }
    }

    #[test]
    fn ite_agrees_with_and_or_form() {
        let (mut m, a, b, c) = setup3();
        let ite = m.bdd_ite(a, b, c);
        let t1 = m.bdd_and(a, b);
        let na = m.bdd_not(a);
        let t2 = m.bdd_and(na, c);
        let or = m.bdd_or(t1, t2);
        assert_eq!(ite, or);
    }

    #[test]
    fn add_arithmetic() {
        let mut m = Manager::new(2);
        let x = m.bdd_var(Var(0));
        let y = m.bdd_var(Var(1));
        let c40 = m.constant(40.0);
        let c50 = m.constant(50.0);
        let zero = m.add_zero();
        let fx = m.add_ite(x, c40, zero); // 40*x
        let fy = m.add_ite(y, c50, zero); // 50*y
        let sum = m.add_plus(fx, fy);
        assert_eq!(m.add_eval(sum, &[false, false]), 0.0);
        assert_eq!(m.add_eval(sum, &[true, false]), 40.0);
        assert_eq!(m.add_eval(sum, &[false, true]), 50.0);
        assert_eq!(m.add_eval(sum, &[true, true]), 90.0);

        let doubled = m.add_scale(sum, 2.0);
        assert_eq!(m.add_eval(doubled, &[true, true]), 180.0);

        let diff = m.add_minus(sum, fx);
        assert_eq!(m.add_eval(diff, &[true, true]), 50.0);

        let mx = m.add_max(fx, fy);
        assert_eq!(m.add_eval(mx, &[true, true]), 50.0);
        let mn = m.add_min(fx, fy);
        assert_eq!(m.add_eval(mn, &[true, true]), 40.0);
    }

    #[test]
    fn terminal_values_are_sorted_and_deduped() {
        let mut m = Manager::new(2);
        let x = m.bdd_var(Var(0));
        let y = m.bdd_var(Var(1));
        let c40 = m.constant(40.0);
        let c50 = m.constant(50.0);
        let zero = m.add_zero();
        let fx = m.add_ite(x, c40, zero);
        let fy = m.add_ite(y, c50, zero);
        let sum = m.add_plus(fx, fy);
        assert_eq!(m.terminal_values(sum.node()), vec![0.0, 40.0, 50.0, 90.0]);
    }

    #[test]
    fn restrict_and_compose() {
        let (mut m, a, b, c) = setup3();
        let f = m.bdd_ite(a, b, c);
        let f1 = Bdd(m.restrict(f.0, Var(0), true));
        assert_eq!(f1, b);
        let f0 = Bdd(m.restrict(f.0, Var(0), false));
        assert_eq!(f0, c);

        // Composing a back in via ite on var 0 restores f.
        let g = m.bdd_compose(f, Var(1), c); // ite(a, c, c) = c
        assert_eq!(g, c);
    }

    #[test]
    fn quantification() {
        let (mut m, a, b, _) = setup3();
        let f = m.bdd_and(a, b);
        let ex = m.bdd_exists(f, Var(0));
        assert_eq!(ex, b);
        let fa = m.bdd_forall(f, Var(0));
        assert_eq!(fa, m.bdd_false());
    }

    #[test]
    fn sat_count_and_pick() {
        let (mut m, a, b, _) = setup3();
        let f = m.bdd_xor(a, b);
        // xor over 3 vars: 4 satisfying assignments (free third var).
        assert_eq!(m.sat_count(f), 4.0);
        let sat = m.pick_sat(f).expect("satisfiable");
        assert!(m.bdd_eval(f, &sat));
        assert_eq!(m.pick_sat(m.bdd_false()), None);
    }

    #[test]
    fn permute_swaps_variables() {
        let (mut m, a, b, c) = setup3();
        let f = m.bdd_and(a, b);
        let f = m.bdd_or(f, c);
        // Swap variables 0 and 1 — function is symmetric in them.
        let g = m.permute(f.0, &[Var(1), Var(0), Var(2)]);
        assert_eq!(g, f.0);
        // Map everything up by rotation and check semantics: permute
        // replaces a test of v by a test of perm[v], so
        // g(a) = f(a[perm[0]], a[perm[1]], a[perm[2]]).
        let perm = [Var(2), Var(0), Var(1)];
        let g = Bdd(m.permute(f.0, &perm));
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let pulled = [
                asg[perm[0].index() as usize],
                asg[perm[1].index() as usize],
                asg[perm[2].index() as usize],
            ];
            assert_eq!(m.bdd_eval(g, &asg), m.bdd_eval(f, &pulled));
        }
    }

    #[test]
    fn size_counts_terminals_like_cudd() {
        let (mut m, a, b, _) = setup3();
        let f = m.bdd_and(a, b);
        // nodes: a-node, b-node, 0, 1
        assert_eq!(m.size(f.0), 4);
        assert_eq!(m.internal_size(f.0), 2);
    }

    #[test]
    fn support_reports_tested_vars() {
        let (mut m, a, _, c) = setup3();
        let f = m.bdd_and(a, c);
        assert_eq!(m.support(f.0), vec![Var(0), Var(2)]);
    }

    #[test]
    fn compact_preserves_semantics() {
        let (mut m, a, b, c) = setup3();
        let keep = m.bdd_ite(a, b, c);
        // Build garbage.
        for _ in 0..10 {
            let g = m.bdd_xor(keep, a);
            let _ = m.bdd_and(g, b);
        }
        let before = m.arena_len();
        let roots = m.compact(&[keep.0]);
        let keep2 = Bdd(roots[0]);
        assert!(m.arena_len() < before);
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let expected = if asg[0] { asg[1] } else { asg[2] };
            assert_eq!(m.bdd_eval(keep2, &asg), expected);
        }
        // Manager still works after compaction.
        let x = m.bdd_var(Var(0));
        let nx = m.bdd_not(x);
        let t = m.bdd_or(x, nx);
        assert_eq!(t, m.bdd_true());
    }

    #[test]
    fn threshold_extracts_level_sets() {
        let mut m = Manager::new(2);
        let x = m.bdd_var(Var(0));
        let y = m.bdd_var(Var(1));
        let c40 = m.constant(40.0);
        let c50 = m.constant(50.0);
        let zero = m.add_zero();
        let fx = m.add_ite(x, c40, zero);
        let fy = m.add_ite(y, c50, zero);
        let sum = m.add_plus(fx, fy);
        let heavy = m.add_threshold(sum, |v| v >= 50.0);
        assert_eq!(m.sat_count(heavy), 2.0); // {01, 11}
        assert!(m.bdd_eval(heavy, &[true, true]));
        assert!(!m.bdd_eval(heavy, &[true, false]));
    }

    #[test]
    fn map_terminals_reduces() {
        let mut m = Manager::new(1);
        let x = m.bdd_var(Var(0));
        let c2 = m.constant(2.0);
        let c3 = m.constant(3.0);
        let f = m.add_ite(x, c2, c3);
        // Collapsing both terminals to the same value must reduce to a leaf.
        let g = m.add_map_terminals(f, |_| 7.0);
        assert!(g.node().is_terminal());
        assert_eq!(m.terminal_value(g.node()), 7.0);
    }

    #[test]
    fn to_dot_mentions_every_node() {
        let (mut m, a, b, _) = setup3();
        let f = m.bdd_and(a, b);
        let dot = m.to_dot(f.node());
        assert!(dot.contains("digraph"));
        assert!(dot.matches("shape=circle").count() == 2);
        assert!(dot.matches("shape=box").count() == 2);
    }

    #[test]
    fn new_var_extends_order() {
        let mut m = Manager::new(1);
        let v = m.new_var();
        assert_eq!(v, Var(1));
        assert_eq!(m.num_vars(), 2);
        let b = m.bdd_var(v);
        assert!(m.bdd_eval(b, &[false, true]));
    }
}
