//! Resource governor for symbolic operations.
//!
//! ADD construction over `2n` transition variables can blow up
//! exponentially (the paper's central risk); a [`Budget`] bounds what one
//! symbolic operation may consume before it is stopped. Budgets are
//! checked at the apply/ITE recursion checkpoints inside [`Manager`]
//! — the places where new nodes are created — so a runaway operation
//! returns a structured [`DdError::BudgetExceeded`] instead of exhausting
//! memory or wall-clock time.
//!
//! Five resources are governed:
//!
//! * **live nodes** — total arena population (internal + terminal nodes);
//! * **arena bytes** — approximate arena memory (node and terminal
//!   storage; hash-table overhead is not counted);
//! * **apply steps** — cache-missing recursion steps, a deterministic
//!   proxy for CPU work;
//! * **wall clock** — a deadline measured from [`Budget::with_deadline`];
//! * **cancellation** — a cooperative [`CancelToken`] flippable from
//!   another thread.
//!
//! A sixth pseudo-resource, [`Resource::FaultInjection`], backs
//! [`Budget::trip_after`]: tests can schedule deterministic budget trips
//! to exercise every degradation path without constructing genuinely huge
//! diagrams.
//!
//! Budgets use interior mutability for their counters, so one `&Budget`
//! can thread through recursive `&mut Manager` operations. A budget is
//! intended for a single construction job; counters accumulate across all
//! operations it is passed to, which is exactly what a per-job governor
//! wants.
//!
//! # Examples
//!
//! ```
//! use charfree_dd::{Budget, DdError, Manager, Resource, Var};
//!
//! let mut m = Manager::new(64);
//! let budget = Budget::unlimited().with_max_apply_steps(10);
//! let mut acc = m.bdd_var(Var(0));
//! let mut result = Ok(());
//! for v in 1..64 {
//!     let x = m.bdd_var(Var(v));
//!     match m.try_bdd_xor(acc, x, &budget) {
//!         Ok(f) => acc = f,
//!         Err(e) => {
//!             assert!(matches!(
//!                 e,
//!                 DdError::BudgetExceeded { resource: Resource::ApplySteps, .. }
//!             ));
//!             result = Err(e);
//!             break;
//!         }
//!     }
//! }
//! assert!(result.is_err());
//! ```

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in checkpoints) the wall clock is sampled; `Instant::now`
/// is far more expensive than the counter checks.
const CLOCK_STRIDE: u64 = 256;

/// The resource whose limit a budgeted operation exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Total arena population (internal + terminal nodes).
    LiveNodes,
    /// Approximate arena memory in bytes.
    ArenaBytes,
    /// Cache-missing apply/ITE recursion steps.
    ApplySteps,
    /// The wall-clock deadline passed.
    WallClock,
    /// The cooperative [`CancelToken`] was triggered.
    Cancelled,
    /// A deterministic test trip scheduled by [`Budget::trip_after`].
    FaultInjection,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Resource::LiveNodes => "live nodes",
            Resource::ArenaBytes => "arena bytes",
            Resource::ApplySteps => "apply steps",
            Resource::WallClock => "wall clock (ms)",
            Resource::Cancelled => "cancellation",
            Resource::FaultInjection => "fault injection",
        };
        f.write_str(name)
    }
}

/// Error returned by the fallible (`try_*`) [`Manager`] operations.
///
/// [`Manager`]: crate::Manager
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DdError {
    /// A [`Budget`] limit was hit mid-operation. The partially built
    /// nodes remain in the arena as garbage; run
    /// [`Manager::compact`](crate::Manager::compact) to reclaim them.
    BudgetExceeded {
        /// Which resource ran out.
        resource: Resource,
        /// The configured limit for that resource.
        limit: u64,
        /// The observed value that tripped the limit.
        observed: u64,
    },
}

impl fmt::Display for DdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdError::BudgetExceeded {
                resource,
                limit,
                observed,
            } => write!(
                f,
                "budget exceeded: {resource} at {observed} (limit {limit})"
            ),
        }
    }
}

impl Error for DdError {}

/// Cooperative cancellation flag, cheaply clonable and thread-safe.
///
/// Flipping the token makes every budgeted operation holding a budget
/// with this token fail at its next checkpoint with
/// [`Resource::Cancelled`].
///
/// # Examples
///
/// ```
/// use charfree_dd::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-triggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; all clones observe it.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Live telemetry counters fed by [`Budget::checkpoint`] — the hook a
/// pipeline or monitoring layer attaches to observe symbolic work as it
/// happens.
///
/// Unlike the budget's own step counter (which lives in one `Budget` and
/// dies with it), an `ApplyStats` is an `Arc`-shared, thread-safe
/// accumulator: attach one to every budget of a job and it totals the
/// cache-missing apply/ITE steps and tracks peak arena occupancy across
/// the whole job. Reading the counters never blocks the hot path — the
/// checkpoint uses relaxed atomics.
///
/// # Examples
///
/// ```
/// use charfree_dd::{ApplyStats, Budget, Manager, Var};
///
/// let stats = ApplyStats::shared();
/// let budget = Budget::unlimited().with_stats(stats.clone());
/// let mut m = Manager::new(4);
/// let a = m.bdd_var(Var(0));
/// let b = m.bdd_var(Var(1));
/// m.try_bdd_and(a, b, &budget).expect("unlimited");
/// assert!(stats.apply_steps() > 0);
/// ```
#[derive(Debug, Default)]
pub struct ApplyStats {
    steps: AtomicU64,
    peak_live_nodes: AtomicU64,
    peak_arena_bytes: AtomicU64,
}

impl ApplyStats {
    /// A fresh shared counter set, ready to attach with
    /// [`Budget::with_stats`].
    pub fn shared() -> Arc<Self> {
        Arc::new(ApplyStats::default())
    }

    /// Total cache-missing apply/ITE recursion steps observed.
    pub fn apply_steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Highest arena population (nodes) seen at any checkpoint.
    pub fn peak_live_nodes(&self) -> u64 {
        self.peak_live_nodes.load(Ordering::Relaxed)
    }

    /// Highest approximate arena memory (bytes) seen at any checkpoint.
    pub fn peak_arena_bytes(&self) -> u64 {
        self.peak_arena_bytes.load(Ordering::Relaxed)
    }

    fn record(&self, live_nodes: usize, arena_bytes: usize) {
        self.steps.fetch_add(1, Ordering::Relaxed);
        self.peak_live_nodes
            .fetch_max(live_nodes as u64, Ordering::Relaxed);
        self.peak_arena_bytes
            .fetch_max(arena_bytes as u64, Ordering::Relaxed);
    }
}

/// Resource limits for symbolic operations, checked at recursion
/// checkpoints.
///
/// Build one with [`Budget::unlimited`] and the `with_*` setters, then
/// pass it to the `try_*` operations of [`Manager`](crate::Manager). All
/// limits are optional; an unlimited budget never fails (the infallible
/// `Manager` API delegates to the fallible one with exactly that).
#[derive(Debug, Default)]
pub struct Budget {
    max_live_nodes: Option<u64>,
    max_arena_bytes: Option<u64>,
    max_apply_steps: Option<u64>,
    deadline: Option<(Instant, Duration)>,
    cancel: Option<CancelToken>,
    stats: Option<Arc<ApplyStats>>,
    steps: Cell<u64>,
    /// Relative checkpoint countdowns for scheduled fault-injection
    /// trips; the front countdown starts after the previous trip fires.
    trips: RefCell<VecDeque<u64>>,
}

impl Budget {
    /// A budget with no limits: checkpoints never fail.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps the total arena population (internal + terminal nodes).
    pub fn with_max_live_nodes(mut self, nodes: u64) -> Self {
        self.max_live_nodes = Some(nodes);
        self
    }

    /// Caps the approximate arena memory in bytes.
    pub fn with_max_arena_bytes(mut self, bytes: u64) -> Self {
        self.max_arena_bytes = Some(bytes);
        self
    }

    /// Caps the number of cache-missing apply/ITE recursion steps.
    pub fn with_max_apply_steps(mut self, steps: u64) -> Self {
        self.max_apply_steps = Some(steps);
        self
    }

    /// Sets a wall-clock deadline `timeout` from now.
    pub fn with_deadline(mut self, timeout: Duration) -> Self {
        self.deadline = Some((Instant::now() + timeout, timeout));
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Attaches a shared [`ApplyStats`] telemetry sink: every checkpoint
    /// feeds the counters (relaxed atomics, negligible cost). Several
    /// budgets can share one sink, accumulating job-wide totals.
    pub fn with_stats(mut self, stats: Arc<ApplyStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Schedules a deterministic fault-injection trip `n` checkpoints
    /// after the previous scheduled trip (or after now, for the first).
    ///
    /// Each scheduled trip fires exactly once, as
    /// [`Resource::FaultInjection`]; later checkpoints succeed again
    /// until the next scheduled trip matures. Tests use chains of trips
    /// to drive retry logic through every degradation path.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (the trip could never be ordered relative to
    /// the checkpoint stream).
    pub fn trip_after(self, n: u64) -> Self {
        assert!(n > 0, "trip_after needs a positive checkpoint count");
        self.trips.borrow_mut().push_back(n);
        self
    }

    /// Checkpoints consumed so far (cache-missing recursion steps).
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Remaining wall-clock time, if a deadline is set.
    pub fn time_left(&self) -> Option<Duration> {
        self.deadline
            .map(|(at, _)| at.saturating_duration_since(Instant::now()))
    }

    /// The configured live-node cap, if any.
    pub fn max_live_nodes(&self) -> Option<u64> {
        self.max_live_nodes
    }

    /// Records one unit of symbolic work and verifies every limit.
    ///
    /// Called by [`Manager`](crate::Manager) at apply/ITE recursion
    /// checkpoints with the current arena occupancy. The wall clock is
    /// sampled every [`CLOCK_STRIDE`] checkpoints to keep the hot path
    /// cheap.
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] naming the first exhausted
    /// resource.
    pub fn checkpoint(&self, live_nodes: usize, arena_bytes: usize) -> Result<(), DdError> {
        let steps = self.steps.get() + 1;
        self.steps.set(steps);
        if let Some(stats) = &self.stats {
            stats.record(live_nodes, arena_bytes);
        }

        {
            let mut trips = self.trips.borrow_mut();
            if let Some(front) = trips.front_mut() {
                *front -= 1;
                if *front == 0 {
                    trips.pop_front();
                    return Err(DdError::BudgetExceeded {
                        resource: Resource::FaultInjection,
                        limit: 0,
                        observed: steps,
                    });
                }
            }
        }

        if let Some(token) = &self.cancel {
            if token.is_cancelled() {
                return Err(DdError::BudgetExceeded {
                    resource: Resource::Cancelled,
                    limit: 0,
                    observed: steps,
                });
            }
        }
        if let Some(limit) = self.max_apply_steps {
            if steps > limit {
                return Err(DdError::BudgetExceeded {
                    resource: Resource::ApplySteps,
                    limit,
                    observed: steps,
                });
            }
        }
        if let Some(limit) = self.max_live_nodes {
            if live_nodes as u64 > limit {
                return Err(DdError::BudgetExceeded {
                    resource: Resource::LiveNodes,
                    limit,
                    observed: live_nodes as u64,
                });
            }
        }
        if let Some(limit) = self.max_arena_bytes {
            if arena_bytes as u64 > limit {
                return Err(DdError::BudgetExceeded {
                    resource: Resource::ArenaBytes,
                    limit,
                    observed: arena_bytes as u64,
                });
            }
        }
        if let Some((at, timeout)) = self.deadline {
            if steps % CLOCK_STRIDE == 1 && Instant::now() >= at {
                return Err(DdError::BudgetExceeded {
                    resource: Resource::WallClock,
                    limit: timeout.as_millis() as u64,
                    observed: (timeout + (Instant::now() - at)).as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        for _ in 0..10_000 {
            b.checkpoint(usize::MAX, usize::MAX).expect("unlimited");
        }
        assert_eq!(b.steps(), 10_000);
    }

    #[test]
    fn step_limit_trips_at_boundary() {
        let b = Budget::unlimited().with_max_apply_steps(5);
        for _ in 0..5 {
            b.checkpoint(0, 0).expect("within budget");
        }
        let err = b.checkpoint(0, 0).expect_err("over budget");
        assert_eq!(
            err,
            DdError::BudgetExceeded {
                resource: Resource::ApplySteps,
                limit: 5,
                observed: 6,
            }
        );
    }

    #[test]
    fn node_and_byte_limits_report_observed() {
        let b = Budget::unlimited().with_max_live_nodes(100);
        assert!(b.checkpoint(100, 0).is_ok());
        match b.checkpoint(101, 0) {
            Err(DdError::BudgetExceeded {
                resource: Resource::LiveNodes,
                limit: 100,
                observed: 101,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        let b = Budget::unlimited().with_max_arena_bytes(64);
        assert!(b.checkpoint(0, 64).is_ok());
        assert!(matches!(
            b.checkpoint(0, 65),
            Err(DdError::BudgetExceeded {
                resource: Resource::ArenaBytes,
                ..
            })
        ));
    }

    #[test]
    fn deadline_trips_on_clock_stride() {
        let b = Budget::unlimited().with_deadline(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(2));
        // The very first checkpoint samples the clock (steps % stride == 1).
        assert!(matches!(
            b.checkpoint(0, 0),
            Err(DdError::BudgetExceeded {
                resource: Resource::WallClock,
                ..
            })
        ));
    }

    #[test]
    fn cancellation_is_observed() {
        let token = CancelToken::new();
        let b = Budget::unlimited().with_cancel_token(token.clone());
        assert!(b.checkpoint(0, 0).is_ok());
        token.cancel();
        assert!(matches!(
            b.checkpoint(0, 0),
            Err(DdError::BudgetExceeded {
                resource: Resource::Cancelled,
                ..
            })
        ));
    }

    #[test]
    fn trip_chain_fires_each_once() {
        let b = Budget::unlimited().trip_after(2).trip_after(3);
        assert!(b.checkpoint(0, 0).is_ok());
        assert!(b.checkpoint(0, 0).is_err()); // first trip at step 2
        assert!(b.checkpoint(0, 0).is_ok());
        assert!(b.checkpoint(0, 0).is_ok());
        assert!(b.checkpoint(0, 0).is_err()); // second trip 3 checks later
        for _ in 0..100 {
            assert!(b.checkpoint(0, 0).is_ok()); // disarmed afterwards
        }
    }

    #[test]
    fn stats_sink_accumulates_across_budgets() {
        let stats = ApplyStats::shared();
        let a = Budget::unlimited().with_stats(stats.clone());
        let b = Budget::unlimited().with_stats(stats.clone());
        for _ in 0..3 {
            a.checkpoint(10, 100).expect("unlimited");
        }
        for _ in 0..2 {
            b.checkpoint(50, 20).expect("unlimited");
        }
        assert_eq!(stats.apply_steps(), 5);
        assert_eq!(stats.peak_live_nodes(), 50);
        assert_eq!(stats.peak_arena_bytes(), 100);
    }

    #[test]
    fn error_messages_name_the_resource() {
        let err = DdError::BudgetExceeded {
            resource: Resource::LiveNodes,
            limit: 10,
            observed: 12,
        };
        let msg = err.to_string();
        assert!(msg.contains("live nodes"), "{msg}");
        assert!(msg.contains("12"), "{msg}");
        assert!(msg.contains("10"), "{msg}");
    }
}
