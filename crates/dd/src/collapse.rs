//! Node collapsing: the ADD simplification mechanism of Section 3.
//!
//! Collapsing replaces the sub-ADD rooted at a chosen node by a single
//! terminal (leaf) node. The *strategy* — which nodes to pick and which leaf
//! value to use (sub-function average for accuracy, maximum for conservative
//! upper bounds) — lives in `charfree-core`; this module provides the
//! mechanism: a linear-time rebuild of the diagram with a set of nodes
//! replaced by constants.

use crate::budget::{Budget, DdError};
use crate::hash::FxHashMap;
use crate::manager::{Add, Manager};
use crate::node::NodeId;

impl Manager {
    /// Rebuilds `f` with every node in `replacements` collapsed to the given
    /// constant leaf value.
    ///
    /// If a replaced node is an ancestor of another replaced node, the
    /// ancestor wins (its whole sub-ADD, including the inner replacement
    /// target, disappears). Replacement values apply to *nodes*, so two
    /// occurrences of a shared node are replaced consistently — exactly the
    /// behavior of the paper's "several sub-trees can be independently
    /// collapsed during a traversal".
    ///
    /// Runs in time linear in the size of `f`.
    ///
    /// # Panics
    ///
    /// Panics if a replacement value is NaN.
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_dd::{Manager, Var};
    /// use charfree_dd::hash::FxHashMap;
    ///
    /// let mut m = Manager::new(2);
    /// let x0 = m.bdd_var(Var(0));
    /// let x1 = m.bdd_var(Var(1));
    /// let c0 = m.constant(0.0);
    /// let c10 = m.constant(10.0);
    /// let inner = m.add_ite(x1, c10, c0);
    /// let f = m.add_ite(x0, c10, inner);
    ///
    /// // Collapse the inner node to its average, 5.0 (paper Ex. 3/4).
    /// let mut repl = FxHashMap::default();
    /// repl.insert(inner.node(), 5.0);
    /// let g = m.collapse(f, &repl);
    /// assert_eq!(m.add_eval(g, &[false, false]), 5.0);
    /// assert_eq!(m.add_eval(g, &[false, true]), 5.0);
    /// assert_eq!(m.add_eval(g, &[true, false]), 10.0);
    /// ```
    pub fn collapse(&mut self, f: Add, replacements: &FxHashMap<NodeId, f64>) -> Add {
        self.try_collapse(f, replacements, &Budget::unlimited())
            .expect("unlimited budget cannot be exceeded")
    }

    /// Budgeted variant of [`Manager::collapse`]: checks `budget` once per
    /// freshly rebuilt node and aborts with [`DdError::BudgetExceeded`] if a
    /// limit is hit mid-rebuild.
    ///
    /// Collapsing is linear in the size of `f`, so in practice only very
    /// tight step limits, a passed deadline, or cancellation trip here.
    ///
    /// # Errors
    ///
    /// Returns [`DdError::BudgetExceeded`] if `budget` is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if a replacement value is NaN.
    pub fn try_collapse(
        &mut self,
        f: Add,
        replacements: &FxHashMap<NodeId, f64>,
        budget: &Budget,
    ) -> Result<Add, DdError> {
        let mut memo: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        Ok(Add(self.collapse_rec(
            f.node(),
            replacements,
            &mut memo,
            budget,
        )?))
    }

    fn collapse_rec(
        &mut self,
        f: NodeId,
        replacements: &FxHashMap<NodeId, f64>,
        memo: &mut FxHashMap<NodeId, NodeId>,
        budget: &Budget,
    ) -> Result<NodeId, DdError> {
        if let Some(&v) = replacements.get(&f) {
            return Ok(self.terminal(v));
        }
        if f.is_terminal() {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        budget.checkpoint(self.arena_len(), self.arena_bytes())?;
        let (lo, hi) = self.children(f);
        let var = self.node_var(f).index();
        let lo2 = self.collapse_rec(lo, replacements, memo, budget)?;
        let hi2 = self.collapse_rec(hi, replacements, memo, budget)?;
        let r = self.mk(var, lo2, hi2);
        memo.insert(f, r);
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Var;

    fn example(m: &mut Manager) -> (Add, Add) {
        let x0 = m.bdd_var(Var(0));
        let x1 = m.bdd_var(Var(1));
        let c0 = m.constant(0.0);
        let c10 = m.constant(10.0);
        let inner = m.add_ite(x1, c10, c0);
        let f = m.add_ite(x0, c10, inner);
        (f, inner)
    }

    #[test]
    fn collapse_reduces_size() {
        let mut m = Manager::new(2);
        let (f, inner) = example(&mut m);
        let before = m.size(f.node());
        let mut repl = FxHashMap::default();
        repl.insert(inner.node(), 5.0);
        let g = m.collapse(f, &repl);
        assert!(m.size(g.node()) < before);
    }

    #[test]
    fn collapse_with_empty_map_is_identity() {
        let mut m = Manager::new(2);
        let (f, _) = example(&mut m);
        let g = m.collapse(f, &FxHashMap::default());
        assert_eq!(f, g);
    }

    #[test]
    fn collapse_root_gives_constant() {
        let mut m = Manager::new(2);
        let (f, _) = example(&mut m);
        let mut repl = FxHashMap::default();
        repl.insert(f.node(), 7.5);
        let g = m.collapse(f, &repl);
        assert!(g.node().is_terminal());
        assert_eq!(m.terminal_value(g.node()), 7.5);
    }

    #[test]
    fn ancestor_replacement_wins() {
        let mut m = Manager::new(2);
        let (f, inner) = example(&mut m);
        let mut repl = FxHashMap::default();
        repl.insert(f.node(), 1.0);
        repl.insert(inner.node(), 99.0);
        let g = m.collapse(f, &repl);
        assert!(g.node().is_terminal());
        assert_eq!(m.terminal_value(g.node()), 1.0);
    }

    #[test]
    fn avg_collapse_preserves_global_average() {
        // Replacing any sub-ADD by its own average leaves the root average
        // unchanged — the invariant the paper uses to compose local and
        // global approximations (Section 3.1).
        let mut m = Manager::new(3);
        let x0 = m.bdd_var(Var(0));
        let x1 = m.bdd_var(Var(1));
        let x2 = m.bdd_var(Var(2));
        let c2 = m.constant(2.0);
        let c8 = m.constant(8.0);
        let zero = m.add_zero();
        let s1 = m.add_ite(x1, c8, c2);
        let s2 = m.add_ite(x2, c2, zero);
        let f = m.add_ite(x0, s1, s2);

        let avg_before = m.add_avg(f);
        let stats = m.add_stats(f);
        let mut repl = FxHashMap::default();
        repl.insert(s1.node(), stats.get(s1.node()).expect("reachable").avg);
        let g = m.collapse(f, &repl);
        let avg_after = m.add_avg(g);
        assert!((avg_before - avg_after).abs() < 1e-12);
    }

    #[test]
    fn max_collapse_is_conservative_and_preserves_max() {
        let mut m = Manager::new(3);
        let x0 = m.bdd_var(Var(0));
        let x1 = m.bdd_var(Var(1));
        let x2 = m.bdd_var(Var(2));
        let c2 = m.constant(2.0);
        let c8 = m.constant(8.0);
        let zero = m.add_zero();
        let s1 = m.add_ite(x1, c8, c2);
        let s2 = m.add_ite(x2, c2, zero);
        let f = m.add_ite(x0, s1, s2);

        let stats = m.add_stats(f);
        let mut repl = FxHashMap::default();
        repl.insert(s2.node(), stats.get(s2.node()).expect("reachable").max);
        let g = m.collapse(f, &repl);

        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert!(m.add_eval(g, &asg) >= m.add_eval(f, &asg));
        }
        assert_eq!(m.add_max_value(g), m.add_max_value(f));
    }
}
