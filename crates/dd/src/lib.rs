//! # charfree-dd — decision diagrams for characterization-free power modeling
//!
//! Reduced ordered **binary decision diagrams** (BDDs, Bryant-style) and
//! **algebraic decision diagrams** (ADDs, Bahar et al.) with exactly the
//! symbolic operator suite the DATE'98 paper *"Characterization-Free
//! Behavioral Power Modeling"* builds on (it used CUDD; this crate is the
//! from-scratch Rust substitute):
//!
//! * canonical, maximally shared node store ([`Manager`]) with unique and
//!   computed tables;
//! * Boolean operators on [`Bdd`]s (`not`, `and`, `or`, `xor`, `ite`,
//!   restriction, composition, quantification, SAT counting);
//! * arithmetic operators on [`Add`]s (`+`, `−`, `×`, `min`, `max`, scaling
//!   by constants, Boolean selection) — the `bdd_and`/`bdd_not`/`add_times`/
//!   `add_sum` vocabulary of the paper's Fig. 6 pseudo-code;
//! * per-node statistics (average, variance, min, max and the
//!   max-replacement MSE of Eqs. 5–8) in one linear traversal
//!   ([`Manager::add_stats`]);
//! * linear-time node collapsing ([`Manager::collapse`]) — the mechanism
//!   behind the paper's accuracy/complexity trade-off;
//! * variable permutation, garbage collection ([`Manager::compact`]) and
//!   Graphviz export.
//!
//! ## Example: the switching-capacitance ADD of the paper's Fig. 2
//!
//! ```
//! use charfree_dd::{Manager, Var};
//!
//! // Two circuit inputs at time t^i (vars 0,1) and t^f (vars 2,3).
//! let mut m = Manager::new(4);
//! let (x1i, x2i, x1f, x2f) = (Var(0), Var(1), Var(2), Var(3));
//!
//! // g1 = x1', g2 = x2', g3 = x1 + x2 with loads 40, 50, 10 fF.
//! let mut c = m.add_zero();
//! let gates: [(&dyn Fn(&mut Manager, Var, Var) -> charfree_dd::Bdd, f64); 3] = [
//!     (&|m, a, _| { let v = m.bdd_var(a); m.bdd_not(v) }, 40.0),
//!     (&|m, _, b| { let v = m.bdd_var(b); m.bdd_not(v) }, 50.0),
//!     (&|m, a, b| { let va = m.bdd_var(a); let vb = m.bdd_var(b); m.bdd_or(va, vb) }, 10.0),
//! ];
//! for (g, cap) in gates {
//!     let gi = g(&mut m, x1i, x2i);
//!     let gf = g(&mut m, x1f, x2f);
//!     let rise = { let n = m.bdd_not(gi); m.bdd_and(n, gf) };
//!     let delta = m.add_scale(rise.as_add(), cap);
//!     c = m.add_plus(c, delta);
//! }
//!
//! // Fig. 2b, row x^i = 11, x^f = 00: C = C1 + C2 = 90 fF.
//! assert_eq!(m.add_eval(c, &[true, true, false, false]), 90.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// `.unwrap()` is banned crate-wide; `.expect()` remains available for
// invariants with a stated justification, and tests are exempt.
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod hash;
pub mod io;

mod abstraction;
pub mod budget;
mod collapse;
mod manager;
mod node;
pub mod reorder;
mod stats;

pub use abstraction::Cubes;
pub use budget::{ApplyStats, Budget, CancelToken, DdError, Resource};
pub use manager::{Add, Bdd, BinOp, Manager};
pub use node::{NodeId, Var};
pub use stats::{AddStats, ChainMeasure, MeasuredNode, NodeStats, VarMeasure};
