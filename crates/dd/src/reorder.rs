//! Variable reordering by local window search.
//!
//! Decision-diagram size is extremely order-sensitive; the paper leans on
//! CUDD's dynamic reordering ("after reduction (and variable reordering)
//! the only way of further simplifying ADDs is by approximating"). This
//! module provides the rebuild-based equivalent: a sifting-style local
//! search that tries all permutations of a sliding window of variables and
//! keeps whichever ordering shrinks the diagram.
//!
//! Two entry points:
//!
//! * [`reorder_windows`] permutes individual variables — the generic
//!   facility;
//! * [`reorder_paired_windows`] permutes *pairs* `(2k, 2k+1)` as units,
//!   preserving the `xⁱ/xᶠ` interleaving that transition-space power
//!   models (and their chain measures) rely on.
//!
//! Both return the reordered root plus the final placement so callers can
//! keep evaluating under the original variable names.

use crate::manager::Manager;
use crate::node::{NodeId, Var};

fn permutations(k: usize) -> Vec<Vec<usize>> {
    // Heap's algorithm; k is tiny (2..=4).
    let mut items: Vec<usize> = (0..k).collect();
    let mut out = Vec::new();
    fn heap(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(items, k - 1, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(&mut items, k, &mut out);
    out
}

/// Local window reordering over individual variables.
///
/// Slides a `window`-wide window over the variable positions, trying every
/// permutation of the variables inside it (rebuilding via
/// [`Manager::permute`]) and keeping strict improvements, for up to
/// `passes` sweeps or until a sweep finds nothing.
///
/// Returns `(new_root, placement)` where `placement[v]` is the position
/// variable `v`'s *original content* now occupies: evaluating the new root
/// under an assignment `a'` with `a'[placement[v]] = a[v]` reproduces the
/// original function at `a`.
///
/// # Panics
///
/// Panics if `window < 2` or `window > 4` (cost grows factorially).
pub fn reorder_windows(
    m: &mut Manager,
    root: NodeId,
    window: usize,
    passes: usize,
) -> (NodeId, Vec<usize>) {
    assert!((2..=4).contains(&window), "window must be 2..=4");
    let n = m.num_vars() as usize;
    let mut placement: Vec<usize> = (0..n).collect();
    let mut root = root;
    if n < window {
        return (root, placement);
    }
    let perms = permutations(window);
    for _ in 0..passes.max(1) {
        let mut improved = false;
        for start in 0..=n - window {
            let base_size = m.size(root);
            let mut best: Option<(NodeId, Vec<usize>, usize)> = None;
            for perm in &perms {
                if perm.iter().enumerate().all(|(i, &p)| i == p) {
                    continue;
                }
                // Window permutation at positions start..start+window:
                // content at position start+i moves to start+perm[i].
                let mut var_perm: Vec<Var> = (0..n as u32).map(Var).collect();
                for (i, &p) in perm.iter().enumerate() {
                    var_perm[start + i] = Var((start + p) as u32);
                }
                let candidate = m.permute(root, &var_perm);
                let size = m.size(candidate);
                if size < best.as_ref().map_or(base_size, |b| b.2) {
                    best = Some((candidate, perm.clone(), size));
                }
            }
            if let Some((candidate, perm, _)) = best {
                root = candidate;
                // Track where each original variable's content lives now.
                let snapshot = placement.clone();
                for v in 0..n {
                    let pos = snapshot[v];
                    if (start..start + window).contains(&pos) {
                        placement[v] = start + perm[pos - start];
                    }
                }
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    // Note: trial rebuilds leave garbage nodes behind; callers that care
    // about memory should `Manager::compact` afterwards (compacting here
    // would invalidate every other handle the caller holds).
    (root, placement)
}

/// Local window reordering over variable *pairs* `(2k, 2k+1)`.
///
/// The pair structure (e.g. `xₖⁱ` directly above `xₖᶠ`) is preserved: only
/// whole pairs move. Returns `(new_root, pair_placement)` where
/// `pair_placement[p]` is the position pair `p`'s content now occupies.
///
/// # Panics
///
/// Panics if the manager's variable count is odd, or `window` is outside
/// `2..=4`.
pub fn reorder_paired_windows(
    m: &mut Manager,
    root: NodeId,
    window: usize,
    passes: usize,
) -> (NodeId, Vec<usize>) {
    assert!((2..=4).contains(&window), "window must be 2..=4");
    assert!(
        m.num_vars().is_multiple_of(2),
        "paired reordering needs an even variable count"
    );
    let pairs = (m.num_vars() / 2) as usize;
    let mut placement: Vec<usize> = (0..pairs).collect();
    let mut root = root;
    if pairs < window {
        return (root, placement);
    }
    let perms = permutations(window);
    for _ in 0..passes.max(1) {
        let mut improved = false;
        for start in 0..=pairs - window {
            let base_size = m.size(root);
            let mut best: Option<(NodeId, Vec<usize>, usize)> = None;
            for perm in &perms {
                if perm.iter().enumerate().all(|(i, &p)| i == p) {
                    continue;
                }
                let mut var_perm: Vec<Var> = (0..m.num_vars()).map(Var).collect();
                for (i, &p) in perm.iter().enumerate() {
                    let from = start + i;
                    let to = start + p;
                    var_perm[2 * from] = Var(2 * to as u32);
                    var_perm[2 * from + 1] = Var((2 * to + 1) as u32);
                }
                let candidate = m.permute(root, &var_perm);
                let size = m.size(candidate);
                if size < best.as_ref().map_or(base_size, |b| b.2) {
                    best = Some((candidate, perm.clone(), size));
                }
            }
            if let Some((candidate, perm, _)) = best {
                root = candidate;
                let snapshot = placement.clone();
                for p in 0..pairs {
                    let pos = snapshot[p];
                    if (start..start + window).contains(&pos) {
                        placement[p] = start + perm[pos - start];
                    }
                }
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    (root, placement)
}

/// Pulls an assignment for the *reordered* diagram back to original
/// variables: `out[placement[v]] = original[v]`.
///
/// Convenience for callers that keep evaluating a reordered diagram under
/// the original variable naming.
pub fn pull_assignment(placement: &[usize], original: &[bool]) -> Vec<bool> {
    let mut out = vec![false; original.len()];
    for (v, &pos) in placement.iter().enumerate() {
        out[pos] = original[v];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Add;

    /// An order-sensitive function: a0·b0 + a1·b1 + … with the `a`s and
    /// `b`s declared far apart (bad order) — the classic sifting testcase.
    fn bad_order_function(m: &mut Manager, k: u32) -> Add {
        // Variables 0..k are the `a`s, k..2k the `b`s.
        let mut acc = m.add_zero();
        for i in 0..k {
            let a = m.bdd_var(Var(i));
            let b = m.bdd_var(Var(k + i));
            let ab = m.bdd_and(a, b);
            let d = m.add_scale(ab.as_add(), 1.0 + i as f64);
            acc = m.add_plus(acc, d);
        }
        acc
    }

    fn check_semantics(m: &Manager, original: Add, reordered: NodeId, placement: &[usize], n: u32) {
        for bits in 0..1u32 << n {
            let asg: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let pulled = pull_assignment(placement, &asg);
            assert_eq!(
                m.add_eval(original, &asg),
                m.add_eval(Add::from_node(reordered), &pulled),
                "bits={bits:b}"
            );
        }
    }

    #[test]
    fn window_reorder_shrinks_bad_orders() {
        let mut m = Manager::new(12);
        let f = bad_order_function(&mut m, 6);
        let before = m.size(f.node());
        // compact drops the construction garbage but keeps f valid.
        let kept = m.compact(&[f.node()]);
        let f = Add::from_node(kept[0]);

        let mut m2 = m.clone();
        let (g, placement) = reorder_windows(&mut m2, f.node(), 3, 4);
        let after = m2.size(g);
        assert!(
            after < before / 2,
            "interleaving must shrink a0..a5 b0..b5: {before} -> {after}"
        );
        // Semantics preserved (m2 still contains the original f too).
        check_semantics(&m2, f, g, &placement, 12);
    }

    #[test]
    fn window2_also_works() {
        let mut m = Manager::new(8);
        let f = bad_order_function(&mut m, 4);
        let before = m.size(f.node());
        let kept = m.compact(&[f.node()]);
        let f = Add::from_node(kept[0]);
        let (g, placement) = reorder_windows(&mut m, f.node(), 2, 6);
        assert!(m.size(g) < before);
        check_semantics(&m, f, g, &placement, 8);
    }

    #[test]
    fn paired_reorder_preserves_pair_adjacency_and_semantics() {
        // Pairs: (0,1), (2,3), (4,5), (6,7) with a function coupling pair
        // 0 with pair 3 and pair 1 with pair 2 — swapping pair order helps.
        let mut m = Manager::new(8);
        let coupled = |m: &mut Manager, p: u32, q: u32| -> Add {
            let a = m.bdd_var(Var(2 * p));
            let b = m.bdd_var(Var(2 * q + 1));
            let ab = m.bdd_xor(a, b);
            ab.as_add()
        };
        let c03 = coupled(&mut m, 0, 3);
        let c12 = coupled(&mut m, 1, 2);
        let t = m.add_scale(c03, 3.0);
        let u = m.add_scale(c12, 5.0);
        let f = m.add_plus(t, u);
        let kept = m.compact(&[f.node()]);
        let f = Add::from_node(kept[0]);

        let (g, placement) = reorder_paired_windows(&mut m, f.node(), 3, 4);
        // Semantics: pair p's two variables moved together to
        // (2·placement[p], 2·placement[p]+1).
        for bits in 0..256u32 {
            let asg: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
            let mut pulled = vec![false; 8];
            for (p, &pos) in placement.iter().enumerate() {
                pulled[2 * pos] = asg[2 * p];
                pulled[2 * pos + 1] = asg[2 * p + 1];
            }
            assert_eq!(
                m.add_eval(f, &asg),
                m.add_eval(Add::from_node(g), &pulled),
                "bits={bits:08b}"
            );
        }
        // The placement is a permutation.
        let mut seen = [false; 4];
        for &p in &placement {
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn identity_when_already_optimal() {
        // An interleaved multiplexer chain is already near-optimal; the
        // reorder must not make it bigger.
        let mut m = Manager::new(6);
        let mut acc = m.add_zero();
        for i in 0..6u32 {
            let x = m.bdd_var(Var(i));
            let d = m.add_scale(x.as_add(), f64::powi(2.0, i as i32));
            acc = m.add_plus(acc, d);
        }
        let before = m.size(acc.node());
        let kept = m.compact(&[acc.node()]);
        let acc = Add::from_node(kept[0]);
        let (g, _) = reorder_windows(&mut m, acc.node(), 3, 2);
        assert!(m.size(g) <= before);
    }

    #[test]
    #[should_panic(expected = "window must be")]
    fn rejects_huge_windows() {
        let mut m = Manager::new(4);
        let f = m.add_zero();
        let _ = reorder_windows(&mut m, f.node(), 7, 1);
    }
}
