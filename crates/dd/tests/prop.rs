//! Property-based tests: decision-diagram operations against brute-force
//! truth-table semantics on small variable counts.

use charfree_dd::{Add, Bdd, BinOp, Manager, Var};
use proptest::prelude::*;

const NVARS: u32 = 5;

/// A small random Boolean expression.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(4, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

impl Expr {
    fn build(&self, m: &mut Manager) -> Bdd {
        match self {
            Expr::Var(v) => m.bdd_var(Var(*v)),
            Expr::Not(e) => {
                let x = e.build(m);
                m.bdd_not(x)
            }
            Expr::And(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.bdd_and(x, y)
            }
            Expr::Or(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.bdd_or(x, y)
            }
            Expr::Xor(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.bdd_xor(x, y)
            }
            Expr::Ite(a, b, c) => {
                let (x, y, z) = (a.build(m), b.build(m), c.build(m));
                m.bdd_ite(x, y, z)
            }
        }
    }

    fn eval(&self, asg: &[bool]) -> bool {
        match self {
            Expr::Var(v) => asg[*v as usize],
            Expr::Not(e) => !e.eval(asg),
            Expr::And(a, b) => a.eval(asg) && b.eval(asg),
            Expr::Or(a, b) => a.eval(asg) || b.eval(asg),
            Expr::Xor(a, b) => a.eval(asg) != b.eval(asg),
            Expr::Ite(a, b, c) => {
                if a.eval(asg) {
                    b.eval(asg)
                } else {
                    c.eval(asg)
                }
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..1u32 << NVARS).map(|bits| (0..NVARS).map(|i| bits >> i & 1 == 1).collect())
}

/// A random ADD built as Σ cᵥ·[xᵥ] plus a Boolean-shaped plateau.
fn build_add(m: &mut Manager, weights: &[f64]) -> Add {
    let mut acc = m.add_zero();
    for (v, &w) in weights.iter().enumerate() {
        let x = m.bdd_var(Var(v as u32));
        let delta = m.add_scale(x.as_add(), w);
        acc = m.add_plus(acc, delta);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bdd_matches_truth_table(expr in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr.build(&mut m);
        for asg in assignments() {
            prop_assert_eq!(m.bdd_eval(f, &asg), expr.eval(&asg));
        }
    }

    #[test]
    fn bdd_canonicity(expr in arb_expr()) {
        // Building twice yields the same handle; building the double
        // negation also yields the same handle.
        let mut m = Manager::new(NVARS);
        let f = expr.build(&mut m);
        let g = expr.build(&mut m);
        prop_assert_eq!(f, g);
        let nf = m.bdd_not(f);
        let nnf = m.bdd_not(nf);
        prop_assert_eq!(f, nnf);
    }

    #[test]
    fn sat_count_matches_enumeration(expr in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr.build(&mut m);
        let expected = assignments().filter(|a| expr.eval(a)).count() as f64;
        prop_assert_eq!(m.sat_count(f), expected);
    }

    #[test]
    fn add_apply_is_pointwise(
        w1 in proptest::collection::vec(-10.0..10.0f64, NVARS as usize),
        w2 in proptest::collection::vec(-10.0..10.0f64, NVARS as usize),
    ) {
        let mut m = Manager::new(NVARS);
        let f = build_add(&mut m, &w1);
        let g = build_add(&mut m, &w2);
        for (op, reference) in [
            (BinOp::Plus, (|a, b| a + b) as fn(f64, f64) -> f64),
            (BinOp::Minus, |a, b| a - b),
            (BinOp::Times, |a, b| a * b),
            (BinOp::Min, f64::min),
            (BinOp::Max, f64::max),
        ] {
            let h = m.add_apply(op, f, g);
            for asg in assignments() {
                let want = reference(m.add_eval(f, &asg), m.add_eval(g, &asg));
                prop_assert!((m.add_eval(h, &asg) - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn stats_match_brute_force(
        w in proptest::collection::vec(-10.0..10.0f64, NVARS as usize),
    ) {
        let mut m = Manager::new(NVARS);
        let f = build_add(&mut m, &w);
        let s = m.add_stats(f).root();
        let values: Vec<f64> = assignments().map(|a| m.add_eval(f, &a)).collect();
        let n = values.len() as f64;
        let avg = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / n;
        prop_assert!((s.avg - avg).abs() < 1e-9);
        prop_assert!((s.var - var).abs() < 1e-9);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(s.max, max);
        prop_assert_eq!(s.min, min);
    }

    #[test]
    fn max_collapse_upper_bounds_everywhere(
        w in proptest::collection::vec(0.0..10.0f64, NVARS as usize),
        node_pick in 0usize..64,
    ) {
        let mut m = Manager::new(NVARS);
        let f = build_add(&mut m, &w);
        let nodes = m.topological_nodes(f.node());
        prop_assume!(!nodes.is_empty());
        let target = nodes[node_pick % nodes.len()];
        let stats = m.add_stats(f);
        let mut repl = charfree_dd::hash::FxHashMap::default();
        repl.insert(target, stats.get(target).expect("reachable").max);
        let g = m.collapse(f, &repl);
        for asg in assignments() {
            prop_assert!(m.add_eval(g, &asg) >= m.add_eval(f, &asg) - 1e-12);
        }
        // Global max preserved exactly.
        prop_assert_eq!(m.add_max_value(g), m.add_max_value(f));
    }

    #[test]
    fn avg_collapse_preserves_global_average(
        w in proptest::collection::vec(0.0..10.0f64, NVARS as usize),
        node_pick in 0usize..64,
    ) {
        let mut m = Manager::new(NVARS);
        let f = build_add(&mut m, &w);
        let nodes = m.topological_nodes(f.node());
        prop_assume!(!nodes.is_empty());
        let target = nodes[node_pick % nodes.len()];
        let stats = m.add_stats(f);
        let mut repl = charfree_dd::hash::FxHashMap::default();
        repl.insert(target, stats.get(target).expect("reachable").avg);
        let g = m.collapse(f, &repl);
        prop_assert!((m.add_avg(g) - m.add_avg(f)).abs() < 1e-9);
    }

    #[test]
    fn compact_preserves_functions(expr in arb_expr()) {
        let mut m = Manager::new(NVARS);
        let f = expr.build(&mut m);
        let roots = m.compact(&[f.node()]);
        let g = Bdd::from_node(roots[0]);
        for asg in assignments() {
            prop_assert_eq!(m.bdd_eval(g, &asg), expr.eval(&asg));
        }
    }

    #[test]
    fn permute_pullback_semantics(expr in arb_expr(), seed in 0u64..1000) {
        // Random permutation of the variables.
        let mut perm: Vec<Var> = (0..NVARS).map(Var).collect();
        let mut s = seed;
        for i in (1..perm.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let mut m = Manager::new(NVARS);
        let f = expr.build(&mut m);
        let g = Bdd::from_node(m.permute(f.node(), &perm));
        for asg in assignments() {
            let pulled: Vec<bool> =
                (0..NVARS as usize).map(|v| asg[perm[v].index() as usize]).collect();
            prop_assert_eq!(m.bdd_eval(g, &asg), m.bdd_eval(f, &pulled));
        }
    }
}
