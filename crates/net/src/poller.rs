//! A thin safe wrapper over one epoll instance plus an eventfd wake
//! channel.
//!
//! Each reactor shard owns one [`Poller`]. Connections register with
//! edge-triggered interest and a shard-local token; cross-thread wakeups
//! (new accepted sockets, completion messages, drain) go through the
//! shard's [`WakeFd`], which is itself registered on the poll set under
//! a reserved token.

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};
use std::time::Duration;

use crate::sys;

/// Token reserved for the shard's own wake eventfd.
pub const WAKE_TOKEN: u64 = u64::MAX;

/// One readiness event: the registered token and the raw flag bits.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// `sys::EPOLLIN` / `EPOLLOUT` / `EPOLLERR` / … bits.
    pub flags: u32,
}

impl PollEvent {
    /// Readable (or peer-closed, which reads as readable EOF).
    pub fn readable(&self) -> bool {
        self.flags & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0
    }

    /// Writable.
    pub fn writable(&self) -> bool {
        self.flags & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }
}

/// An epoll instance with a fixed-size event buffer.
pub struct Poller {
    epfd: File,
    events: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Creates the epoll instance.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_create1`.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        let fd = sys::epoll_create()?;
        // SAFETY: the fd was just returned by epoll_create1 and is owned
        // here exclusively; File closes it on drop.
        let epfd = unsafe { File::from_raw_fd(fd) };
        Ok(Poller {
            epfd,
            events: vec![sys::EpollEvent::zeroed(); capacity.max(8)],
        })
    }

    /// Registers `fd` under `token` with edge-triggered `interest`
    /// (e.g. `sys::EPOLLIN`; `EPOLLET | EPOLLRDHUP` are always added).
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_ctl`.
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        sys::epoll_control(
            self.epfd.as_raw_fd(),
            sys::EPOLL_CTL_ADD,
            fd,
            interest | sys::EPOLLET | sys::EPOLLRDHUP,
            token,
        )
    }

    /// Re-arms `fd` with a new edge-triggered `interest`.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_ctl`.
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        sys::epoll_control(
            self.epfd.as_raw_fd(),
            sys::EPOLL_CTL_MOD,
            fd,
            interest | sys::EPOLLET | sys::EPOLLRDHUP,
            token,
        )
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_ctl` (callers closing the fd anyway
    /// may ignore it).
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks for readiness up to `timeout` (`None` = forever), then
    /// invokes `sink` once per ready event.
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_wait` (never `EINTR`).
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
        mut sink: impl FnMut(PollEvent),
    ) -> io::Result<usize> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = sys::epoll_poll(self.epfd.as_raw_fd(), &mut self.events, timeout_ms)?;
        for ev in &self.events[..n] {
            // Copy out of the (packed on x86-64) struct before use.
            let flags = { ev.events };
            let token = { ev.data };
            sink(PollEvent { token, flags });
        }
        Ok(n)
    }
}

/// A cross-thread wake channel: an eventfd registered on the shard's
/// poll set under [`WAKE_TOKEN`]. `wake()` is cheap, nonblocking and
/// coalescing (N wakes before a drain read as one).
pub struct WakeFd {
    fd: File,
}

impl WakeFd {
    /// Creates the eventfd.
    ///
    /// # Errors
    ///
    /// The raw OS error from `eventfd`.
    pub fn new() -> io::Result<WakeFd> {
        let fd = sys::eventfd_create()?;
        // SAFETY: freshly created fd, exclusively owned; File closes it.
        Ok(WakeFd {
            fd: unsafe { File::from_raw_fd(fd) },
        })
    }

    /// Registers this wake fd on `poller` under [`WAKE_TOKEN`].
    ///
    /// # Errors
    ///
    /// The raw OS error from `epoll_ctl`.
    pub fn register(&self, poller: &Poller) -> io::Result<()> {
        poller.add(self.fd.as_raw_fd(), WAKE_TOKEN, sys::EPOLLIN)
    }

    /// Wakes the owning shard (nonblocking; a full counter still counts
    /// as "wake pending", so the error is ignorable by design).
    pub fn wake(&self) {
        let one = 1u64.to_ne_bytes();
        let _ = (&self.fd).write(&one);
    }

    /// Drains the pending wake counter so the next `wake()` re-arms the
    /// edge.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // Nonblocking: EAGAIN (nothing pending) ends the drain.
        while (&self.fd).read(&mut buf).is_ok() {}
    }
}

/// A cloneable waker for posting to a shard from other threads.
#[derive(Clone)]
pub struct Waker(std::sync::Arc<WakeFd>);

impl Waker {
    /// Wraps a [`WakeFd`] for sharing.
    pub fn new(fd: std::sync::Arc<WakeFd>) -> Waker {
        Waker(fd)
    }

    /// Wakes the owning shard.
    pub fn wake(&self) {
        self.0.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wakefd_edges_through_the_poller() {
        let mut poller = Poller::new(8).expect("poller");
        let wake = Arc::new(WakeFd::new().expect("eventfd"));
        wake.register(&poller).expect("register");

        // No wake yet: zero-timeout wait sees nothing.
        let n = poller
            .wait(Some(Duration::ZERO), |_| {})
            .expect("empty wait");
        assert_eq!(n, 0);

        // Two wakes coalesce into one readable event on the reserved
        // token.
        wake.wake();
        wake.wake();
        let mut seen = Vec::new();
        poller
            .wait(Some(Duration::from_secs(5)), |ev| seen.push(ev))
            .expect("wait");
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].token, WAKE_TOKEN);
        assert!(seen[0].readable());

        // Drained, the edge re-arms: silent again, then one more wake
        // fires again.
        wake.drain();
        assert_eq!(poller.wait(Some(Duration::ZERO), |_| {}).expect("wait"), 0);
        wake.wake();
        assert_eq!(
            poller
                .wait(Some(Duration::from_secs(5)), |_| {})
                .expect("wait"),
            1
        );
    }

    #[test]
    fn sockets_register_with_edge_triggered_readiness() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};

        let mut poller = Poller::new(8).expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");
        poller
            .add(server.as_raw_fd(), 42, sys::EPOLLIN)
            .expect("add");

        client.write_all(b"ping").expect("write");
        let mut seen = Vec::new();
        poller
            .wait(Some(Duration::from_secs(5)), |ev| seen.push(ev))
            .expect("wait");
        assert!(seen.iter().any(|ev| ev.token == 42 && ev.readable()));
        poller.delete(server.as_raw_fd()).expect("delete");
    }
}
