//! # charfree-net — std-only nonblocking TCP reactor
//!
//! The networking substrate under `charfree-serve`'s front end: raw
//! `epoll`/`eventfd` syscalls behind a small [`Poller`] abstraction,
//! N sharded reactor threads each owning their accepted connections
//! with edge-triggered readiness, per-connection read/write buffers,
//! and write backpressure.
//!
//! Layering (bottom up):
//!
//! * [`sys`] — the four raw syscalls (`epoll_create1`, `epoll_ctl`,
//!   `epoll_wait`, `eventfd`) declared against the already-linked C
//!   library, plus the ABI-exact `epoll_event` layout;
//! * [`poller`] — one epoll instance per shard ([`Poller`]) and the
//!   eventfd wake channel ([`WakeFd`]) other threads use to signal it;
//! * [`reactor`] — the shard event loop: connection slab with
//!   generation-checked tokens, accept handoff, a typed completion
//!   [`Mailbox`], idle/write-stall sweeps, buffer caps, orderly drain.
//!
//! The crate is deliberately protocol-free: framing, parsing and
//! responses live in the embedding crate's [`Handler`] implementation.
//! Slow work must never run on a shard thread — hand it off, then post
//! the result back through the [`Mailbox`] under the connection's
//! [`Token`].

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod poller;
pub mod reactor;
pub mod sys;

pub use poller::{PollEvent, Poller, WakeFd, Waker, WAKE_TOKEN};
pub use reactor::{
    CloseReason, ConnCtx, Handler, HandlerFactory, Mailbox, NetCounters, Reactor, ReactorConfig,
    ReactorHandle, StreamTap, TapFault, Token,
};
