//! Raw Linux syscall bindings for `epoll` and `eventfd`.
//!
//! The workspace is std-only — no libc crate — so the four syscalls the
//! reactor needs are declared directly against the C library the binary
//! is already linked with (the same precedent as the server's `signal`
//! binding for SIGTERM drain). Everything else (socket reads/writes,
//! fd ownership and close-on-drop) goes through `std`.

use std::io;
use std::os::raw::{c_int, c_uint};

/// `epoll_event.events` flag: the fd is readable.
pub const EPOLLIN: u32 = 0x001;
/// `epoll_event.events` flag: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `epoll_event.events` flag: error condition on the fd.
pub const EPOLLERR: u32 = 0x008;
/// `epoll_event.events` flag: hangup on the fd.
pub const EPOLLHUP: u32 = 0x010;
/// `epoll_event.events` flag: the peer shut down its write side.
pub const EPOLLRDHUP: u32 = 0x2000;
/// `epoll_event.events` flag: edge-triggered delivery.
pub const EPOLLET: u32 = 1 << 31;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: c_int = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: c_int = 2;
/// `epoll_ctl` op: change an fd's registered interest.
pub const EPOLL_CTL_MOD: c_int = 3;

/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: c_int = 0x8_0000;
/// `eventfd` flag: close-on-exec.
pub const EFD_CLOEXEC: c_int = 0x8_0000;
/// `eventfd` flag: nonblocking reads/writes.
pub const EFD_NONBLOCK: c_int = 0x800;

/// One readiness record, laid out exactly as the kernel ABI expects.
/// On x86-64 the C definition carries `__EPOLL_PACKED`
/// (`__attribute__((packed))`), so the struct is 12 bytes with no
/// padding between `events` and `data`; other architectures use the
/// natural (padded) layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Readiness flag bits (`EPOLLIN` | …).
    pub events: u32,
    /// Caller-chosen token, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event record (for `epoll_wait` output buffers).
    pub fn zeroed() -> EpollEvent {
        EpollEvent { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// `epoll_create1(EPOLL_CLOEXEC)`: a new epoll instance fd.
///
/// # Errors
///
/// The raw OS error.
pub fn epoll_create() -> io::Result<c_int> {
    // SAFETY: epoll_create1 takes no pointers; any flag value is safe.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// `epoll_ctl`: add/modify/delete `fd` with `events` interest under
/// `token`.
///
/// # Errors
///
/// The raw OS error.
pub fn epoll_control(epfd: c_int, op: c_int, fd: c_int, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `ev` is a live, correctly laid out epoll_event for the
    // duration of the call; the kernel only reads it (and DEL ignores
    // it entirely).
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

/// `epoll_wait`: fills `events` with ready records, blocking up to
/// `timeout_ms` (negative = forever). Returns the number filled.
/// `EINTR` is retried internally.
///
/// # Errors
///
/// The raw OS error (never `EINTR`).
pub fn epoll_poll(epfd: c_int, events: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
    loop {
        // SAFETY: `events` is a valid, writable buffer of exactly
        // `events.len()` epoll_event records.
        let ret = unsafe {
            epoll_wait(
                epfd,
                events.as_mut_ptr(),
                events.len().min(c_int::MAX as usize) as c_int,
                timeout_ms,
            )
        };
        match cvt(ret) {
            Ok(n) => return Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

/// `eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)`: a wakeup fd whose reads
/// drain a 64-bit counter.
///
/// # Errors
///
/// The raw OS error.
pub fn eventfd_create() -> io::Result<c_int> {
    // SAFETY: eventfd takes no pointers.
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_matches_the_kernel_abi_size() {
        let expect = if cfg!(target_arch = "x86_64") { 12 } else { 16 };
        assert_eq!(std::mem::size_of::<EpollEvent>(), expect);
    }

    #[test]
    fn epoll_and_eventfd_create_valid_fds() {
        let ep = epoll_create().expect("epoll_create1");
        let ev = eventfd_create().expect("eventfd");
        assert!(ep >= 0 && ev >= 0);
        epoll_control(ep, EPOLL_CTL_ADD, ev, EPOLLIN, 7).expect("ctl add");
        // Nothing written yet: a zero-timeout wait returns no events.
        let mut buf = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll_poll(ep, &mut buf, 0).expect("wait"), 0);
        // SAFETY: both fds were just created by the kernel and are owned
        // exclusively by this test.
        unsafe {
            use std::os::fd::FromRawFd;
            drop(std::fs::File::from_raw_fd(ev));
            drop(std::fs::File::from_raw_fd(ep));
        }
    }
}
