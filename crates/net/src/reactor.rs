//! Sharded edge-triggered reactor.
//!
//! N shard threads each own a [`Poller`](crate::poller::Poller), a slab
//! of accepted connections and two cross-thread queues (accept handoff
//! and a message mailbox), both signalled through the shard's eventfd.
//! Connections never migrate between shards, so all per-connection state
//! is plain (non-atomic) data touched by exactly one thread.
//!
//! The reactor is protocol-agnostic: a [`Handler`] (one per connection,
//! built by the factory) consumes the read buffer, queues response
//! bytes, and decides when to close. Slow work must leave the shard —
//! completions come back through the [`Mailbox`] as typed messages and
//! are delivered on the owning shard's thread.
//!
//! Backpressure and robustness are the reactor's own job:
//!
//! * **write backpressure** — response bytes queue per connection; a
//!   `WouldBlock` arms `EPOLLOUT`, and a peer that stops reading for
//!   longer than `write_stall_timeout` is closed (`WriteStall`);
//! * **idle timeout** — a connection with no inbound bytes for
//!   `idle_timeout` gets [`Handler::on_idle`] (default: close), closing
//!   the slow-loris hole a blocking read-per-thread design leaves open;
//! * **buffer caps** — a peer that streams bytes faster than the
//!   handler consumes them is closed (`Overflow`) at `max_buffer`.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::poller::{PollEvent, Poller, WakeFd, WAKE_TOKEN};
use crate::sys;

/// Opaque per-connection identifier: shard (8 bits) | slot (24 bits) |
/// generation (32 bits). Stable across the connection's lifetime;
/// reusing a slot bumps the generation so late messages for a dead
/// connection never reach its successor.
pub type Token = u64;

fn token_for(shard: usize, slot: usize, gen: u32) -> Token {
    (shard as u64) | (((slot as u64) & 0x00ff_ffff) << 8) | ((u64::from(gen)) << 32)
}

fn shard_of(token: Token) -> usize {
    (token & 0xff) as usize
}

fn slot_of(token: Token) -> usize {
    ((token >> 8) & 0x00ff_ffff) as usize
}

fn gen_of(token: Token) -> u32 {
    (token >> 32) as u32
}

/// Why a connection was closed (each maps to a counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// The peer closed or the transport errored out.
    Eof,
    /// No inbound bytes within the idle timeout (slow-loris guard).
    Idle,
    /// Server drain.
    Drain,
    /// The peer outran the per-connection buffer cap.
    Overflow,
    /// A protocol violation (bad magic, oversized frame, …).
    Protocol,
    /// The peer stopped reading our responses for too long.
    WriteStall,
    /// The application asked for an orderly close (e.g. after
    /// `shutdown`'s final response).
    App,
}

impl CloseReason {
    /// Stable lower-case label (used in metrics and logs).
    pub fn name(self) -> &'static str {
        match self {
            CloseReason::Eof => "eof",
            CloseReason::Idle => "idle",
            CloseReason::Drain => "drain",
            CloseReason::Overflow => "overflow",
            CloseReason::Protocol => "protocol",
            CloseReason::WriteStall => "write-stall",
            CloseReason::App => "app",
        }
    }

    /// Every reason, in metrics order.
    pub fn all() -> [CloseReason; 7] {
        [
            CloseReason::Eof,
            CloseReason::Idle,
            CloseReason::Drain,
            CloseReason::Overflow,
            CloseReason::Protocol,
            CloseReason::WriteStall,
            CloseReason::App,
        ]
    }
}

/// Lock-free reactor counters, shared across shards.
#[derive(Default)]
pub struct NetCounters {
    /// Connections registered with the reactor.
    pub accepted: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
    closed: [AtomicU64; 7],
}

impl NetCounters {
    /// Total closes for `reason`.
    pub fn closed(&self, reason: CloseReason) -> u64 {
        self.closed[Self::idx(reason)].load(Ordering::Relaxed)
    }

    fn idx(reason: CloseReason) -> usize {
        CloseReason::all()
            .iter()
            .position(|&r| r == reason)
            .unwrap_or(0)
    }

    /// Counts a close for `reason` (the reactor does this on every
    /// finalized connection; public so embedders can account closes
    /// that happen outside a reactor, e.g. in auxiliary listeners).
    pub fn record_close(&self, reason: CloseReason) {
        self.closed[Self::idx(reason)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total closes across every reason. `accepted - closed_total()` is
    /// the live-connection count (the reactor guarantees every accepted
    /// registration eventually records exactly one close).
    pub fn closed_total(&self) -> u64 {
        self.closed.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// An injected stream fault (mirrors the pipeline's `StreamFault`
/// without depending on it; the serving layer adapts one to the other).
#[derive(Debug, Clone, Copy)]
pub enum TapFault {
    /// As-if `EINTR`: this I/O round is retried.
    Transient,
    /// A short round: at most this many bytes move.
    Short(usize),
    /// The bytes arrive/depart late.
    Stall(Duration),
}

/// Fault-injection hook on the reactor's socket reads and writes.
pub trait StreamTap: Send + Sync {
    /// Fault to apply before the next read syscall, if any.
    fn read_fault(&self) -> Option<TapFault>;
    /// Fault to apply before the next write syscall, if any.
    fn write_fault(&self) -> Option<TapFault>;
}

/// The per-connection protocol driver. All methods run on the owning
/// shard thread; `M` is the application's completion-message type.
pub trait Handler<M>: Send {
    /// Inbound bytes were appended to the connection buffer (or EOF is
    /// pending after what is buffered). Consume what you can.
    fn on_data(&mut self, conn: &mut ConnCtx<'_>);
    /// A message posted through the [`Mailbox`] arrived for this
    /// connection.
    fn on_message(&mut self, msg: M, conn: &mut ConnCtx<'_>);
    /// The peer closed its write side (EOF after whatever is buffered).
    /// Default: close. A handler awaiting an in-flight completion can
    /// defer the close until that response has been written — which is
    /// what lets one-shot clients (send, half-close, read) still get
    /// their answer.
    fn on_eof(&mut self, conn: &mut ConnCtx<'_>) {
        conn.close(CloseReason::Eof);
    }
    /// The reactor is draining. Close now, or keep the connection open
    /// to finish in-flight work (drain is re-checked as work completes).
    fn on_drain(&mut self, conn: &mut ConnCtx<'_>) {
        conn.close(CloseReason::Drain);
    }
    /// The idle timeout expired. Default: close. Call
    /// [`ConnCtx::touch`] instead to keep a deliberately-waiting
    /// connection alive.
    fn on_idle(&mut self, conn: &mut ConnCtx<'_>) {
        conn.close(CloseReason::Idle);
    }
}

/// Builds one [`Handler`] per accepted connection.
pub type HandlerFactory<M> = dyn Fn(Token) -> Box<dyn Handler<M>> + Send + Sync;

/// The connection surface a [`Handler`] works against.
pub struct ConnCtx<'a> {
    token: Token,
    read_buf: &'a mut Vec<u8>,
    consumed: &'a mut usize,
    write_buf: &'a mut Vec<u8>,
    closing: &'a mut Option<CloseReason>,
    last_activity: &'a mut Instant,
    draining: bool,
}

impl ConnCtx<'_> {
    /// This connection's stable token (route completions back with it).
    pub fn token(&self) -> Token {
        self.token
    }

    /// The unconsumed inbound bytes.
    pub fn data(&self) -> &[u8] {
        &self.read_buf[*self.consumed..]
    }

    /// Marks the first `n` buffered bytes as consumed.
    pub fn consume(&mut self, n: usize) {
        *self.consumed = (*self.consumed + n).min(self.read_buf.len());
    }

    /// Queues response bytes (flushed by the reactor with
    /// backpressure).
    pub fn write(&mut self, bytes: &[u8]) {
        self.write_buf.extend_from_slice(bytes);
    }

    /// Requests an orderly close: queued response bytes are flushed
    /// first, then the socket closes. The first reason wins.
    pub fn close(&mut self, reason: CloseReason) {
        if self.closing.is_none() {
            *self.closing = Some(reason);
        }
    }

    /// Whether a close is already pending.
    pub fn closing(&self) -> bool {
        self.closing.is_some()
    }

    /// Resets the idle clock (e.g. while legitimately waiting on
    /// in-flight work).
    pub fn touch(&mut self) {
        *self.last_activity = Instant::now();
    }

    /// Whether the reactor is draining.
    pub fn draining(&self) -> bool {
        self.draining
    }
}

/// Reactor tuning.
#[derive(Clone)]
pub struct ReactorConfig {
    /// Shard (reactor thread) count.
    pub shards: usize,
    /// Close connections with no inbound bytes for this long (the
    /// handler can veto per connection via [`Handler::on_idle`]).
    pub idle_timeout: Duration,
    /// Hard cap on unconsumed inbound bytes per connection.
    pub max_buffer: usize,
    /// Close connections whose peer stops draining responses for this
    /// long.
    pub write_stall_timeout: Duration,
    /// Ceiling on an injected `Stall` fault, so a mis-tuned plan slows
    /// but never wedges a shard.
    pub max_injected_stall: Duration,
}

impl Default for ReactorConfig {
    fn default() -> ReactorConfig {
        ReactorConfig {
            shards: 1,
            idle_timeout: Duration::from_secs(30),
            max_buffer: 18 << 20,
            write_stall_timeout: Duration::from_secs(10),
            max_injected_stall: Duration::from_millis(200),
        }
    }
}

struct ShardShared<M> {
    accept_q: Mutex<VecDeque<TcpStream>>,
    mail_q: Mutex<VecDeque<(Token, M)>>,
    wake: WakeFd,
}

struct Core<M> {
    shards: Vec<Arc<ShardShared<M>>>,
    draining: AtomicBool,
    counters: Arc<NetCounters>,
    next_shard: AtomicUsize,
}

/// Posts completion messages to connections from any thread.
pub struct Mailbox<M> {
    core: Arc<Core<M>>,
}

impl<M> Clone for Mailbox<M> {
    fn clone(&self) -> Mailbox<M> {
        Mailbox {
            core: Arc::clone(&self.core),
        }
    }
}

impl<M: Send> Mailbox<M> {
    /// Posts `msg` to the connection behind `token` and wakes its
    /// shard. Delivery is best-effort: a message for an
    /// already-closed connection is silently dropped by the shard.
    pub fn post(&self, token: Token, msg: M) {
        let Some(shard) = self.core.shards.get(shard_of(token)) else {
            return;
        };
        shard
            .mail_q
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back((token, msg));
        shard.wake.wake();
    }
}

/// Registers connections and triggers drain from any thread.
pub struct ReactorHandle<M> {
    core: Arc<Core<M>>,
}

impl<M> Clone for ReactorHandle<M> {
    fn clone(&self) -> ReactorHandle<M> {
        ReactorHandle {
            core: Arc::clone(&self.core),
        }
    }
}

impl<M: Send> ReactorHandle<M> {
    /// Hands an accepted socket to a shard (round robin).
    pub fn register(&self, stream: TcpStream) {
        let i = self.core.next_shard.fetch_add(1, Ordering::Relaxed) % self.core.shards.len();
        let shard = &self.core.shards[i];
        shard
            .accept_q
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(stream);
        shard.wake.wake();
    }

    /// Starts the drain: every shard delivers [`Handler::on_drain`] and
    /// exits once its last connection closes.
    pub fn drain(&self) {
        self.core.draining.store(true, Ordering::SeqCst);
        for shard in &self.core.shards {
            shard.wake.wake();
        }
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.core.draining.load(Ordering::SeqCst)
    }
}

/// The running reactor: N shard threads plus their shared queues.
pub struct Reactor<M: Send + 'static> {
    core: Arc<Core<M>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl<M: Send + 'static> Reactor<M> {
    /// Spawns the shard threads.
    ///
    /// # Errors
    ///
    /// Propagates epoll/eventfd/thread-spawn failures.
    pub fn start(
        config: ReactorConfig,
        factory: Arc<HandlerFactory<M>>,
        tap: Option<Arc<dyn StreamTap>>,
    ) -> io::Result<Reactor<M>> {
        let shard_count = config.shards.clamp(1, 128);
        let counters = Arc::new(NetCounters::default());
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            shards.push(Arc::new(ShardShared {
                accept_q: Mutex::new(VecDeque::new()),
                mail_q: Mutex::new(VecDeque::new()),
                wake: WakeFd::new()?,
            }));
        }
        let core = Arc::new(Core {
            shards,
            draining: AtomicBool::new(false),
            counters: Arc::clone(&counters),
            next_shard: AtomicUsize::new(0),
        });
        let mut threads = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let mut state = ShardState::new(index, &config, Arc::clone(&core))?;
            let factory = Arc::clone(&factory);
            let tap = tap.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("charfree-net-{index}"))
                    .spawn(move || state.run(&factory, tap.as_deref()))?,
            );
        }
        Ok(Reactor { core, threads })
    }

    /// A handle for registering sockets and draining.
    pub fn handle(&self) -> ReactorHandle<M> {
        ReactorHandle {
            core: Arc::clone(&self.core),
        }
    }

    /// The mailbox for posting completion messages.
    pub fn mailbox(&self) -> Mailbox<M> {
        Mailbox {
            core: Arc::clone(&self.core),
        }
    }

    /// The shared counters.
    pub fn counters(&self) -> Arc<NetCounters> {
        Arc::clone(&self.core.counters)
    }

    /// Joins every shard thread. Call after [`ReactorHandle::drain`];
    /// shards exit once drained and empty.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

struct Conn<M> {
    stream: TcpStream,
    gen: u32,
    handler: Box<dyn Handler<M>>,
    read_buf: Vec<u8>,
    consumed: usize,
    write_buf: Vec<u8>,
    write_pos: usize,
    interest_out: bool,
    last_activity: Instant,
    write_since: Option<Instant>,
    closing: Option<CloseReason>,
    eof: bool,
    eof_notified: bool,
    drain_notified: bool,
}

/// Shard poll tick: bounds timer (idle / write-stall) latency; all data
/// paths are event-driven through epoll and the wake eventfd.
const TICK: Duration = Duration::from_millis(25);

/// Socket read chunk size.
const READ_CHUNK: usize = 16 * 1024;

struct ShardState<M> {
    index: usize,
    config: ReactorConfig,
    core: Arc<Core<M>>,
    poller: Poller,
    slab: Vec<Option<Conn<M>>>,
    free: Vec<usize>,
    gens: Vec<u32>,
}

impl<M: Send> ShardState<M> {
    fn new(index: usize, config: &ReactorConfig, core: Arc<Core<M>>) -> io::Result<ShardState<M>> {
        let poller = Poller::new(256)?;
        core.shards[index].wake.register(&poller)?;
        Ok(ShardState {
            index,
            config: config.clone(),
            core,
            poller,
            slab: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
        })
    }

    fn run(&mut self, factory: &Arc<HandlerFactory<M>>, tap: Option<&dyn StreamTap>) {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            events.clear();
            let shared = Arc::clone(&self.core.shards[self.index]);
            // Collect first, process after: processing mutates the slab.
            let waited = self.poller.wait(Some(TICK), |ev| events.push(ev));
            if waited.is_err() {
                // An unusable poll set cannot make progress; exiting the
                // shard (dropping its connections) beats spinning.
                return;
            }
            if events.iter().any(|ev| ev.token == WAKE_TOKEN) {
                shared.wake.drain();
            }

            // New connections handed over by the acceptor.
            loop {
                let stream = shared
                    .accept_q
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                match stream {
                    Some(stream) => self.admit(stream, factory, tap),
                    None => break,
                }
            }

            // Completion messages for resident connections.
            loop {
                let msg = shared
                    .mail_q
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                match msg {
                    Some((token, msg)) => self.deliver(token, msg, tap),
                    None => break,
                }
            }

            // Socket readiness.
            for &ev in &events {
                if ev.token == WAKE_TOKEN {
                    continue;
                }
                self.handle_io(ev, tap);
            }

            // Drain propagation, timers, and finalization.
            let draining = self.core.draining.load(Ordering::SeqCst);
            let now = Instant::now();
            for slot in 0..self.slab.len() {
                if self.slab[slot].is_none() {
                    continue;
                }
                if draining && !self.slab[slot].as_ref().is_some_and(|c| c.drain_notified) {
                    if let Some(conn) = self.slab[slot].as_mut() {
                        conn.drain_notified = true;
                    }
                    self.with_conn(slot, tap, |handler, ctx| handler.on_drain(ctx));
                }
                let (idle, stalled) = match self.slab[slot].as_ref() {
                    Some(conn) => (
                        now.duration_since(conn.last_activity) > self.config.idle_timeout,
                        conn.write_since.is_some_and(|t| {
                            now.duration_since(t) > self.config.write_stall_timeout
                        }),
                    ),
                    None => (false, false),
                };
                if stalled {
                    self.finalize(slot, CloseReason::WriteStall);
                    continue;
                }
                if idle {
                    self.with_conn(slot, tap, |handler, ctx| handler.on_idle(ctx));
                }
                self.maybe_finalize(slot);
            }

            if draining && self.slab.iter().all(Option::is_none) {
                let accept_empty = shared
                    .accept_q
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty();
                let mail_empty = shared
                    .mail_q
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .is_empty();
                if accept_empty && mail_empty {
                    return;
                }
            }
        }
    }

    fn admit(
        &mut self,
        stream: TcpStream,
        factory: &Arc<HandlerFactory<M>>,
        tap: Option<&dyn StreamTap>,
    ) {
        // Count the registration up front and record a close on every
        // failure path, so `accepted - closed_total` is an exact live
        // count for the acceptor's connection cap.
        self.core.counters.accepted.fetch_add(1, Ordering::Relaxed);
        if stream.set_nonblocking(true).is_err() {
            self.core.counters.record_close(CloseReason::Eof);
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.slab.push(None);
                self.gens.push(0);
                self.slab.len() - 1
            }
        };
        let gen = self.gens[slot];
        let token = token_for(self.index, slot, gen);
        if self
            .poller
            .add(stream.as_raw_fd(), token, sys::EPOLLIN)
            .is_err()
        {
            self.free.push(slot);
            self.core.counters.record_close(CloseReason::Eof);
            return;
        }
        let handler = factory(token);
        self.slab[slot] = Some(Conn {
            stream,
            gen,
            handler,
            read_buf: Vec::new(),
            consumed: 0,
            write_buf: Vec::new(),
            write_pos: 0,
            interest_out: false,
            last_activity: Instant::now(),
            write_since: None,
            closing: None,
            eof: false,
            eof_notified: false,
            drain_notified: false,
        });
        if self.core.draining.load(Ordering::SeqCst) {
            if let Some(conn) = self.slab[slot].as_mut() {
                conn.drain_notified = true;
            }
            self.with_conn(slot, tap, |handler, ctx| handler.on_drain(ctx));
        } else {
            // Edge-triggered registration: bytes that raced the add must
            // be read now or the edge is lost.
            self.read_ready(slot, tap);
        }
        self.maybe_finalize(slot);
    }

    fn deliver(&mut self, token: Token, msg: M, tap: Option<&dyn StreamTap>) {
        let slot = slot_of(token);
        let live = self
            .slab
            .get(slot)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.gen == gen_of(token));
        if !live {
            return; // the connection died before its completion arrived
        }
        let mut msg = Some(msg);
        self.with_conn(slot, tap, |handler, ctx| {
            if let Some(msg) = msg.take() {
                handler.on_message(msg, ctx);
            }
        });
        self.maybe_finalize(slot);
    }

    fn handle_io(&mut self, ev: PollEvent, tap: Option<&dyn StreamTap>) {
        let slot = slot_of(ev.token);
        let live = self
            .slab
            .get(slot)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.gen == gen_of(ev.token));
        if !live {
            return;
        }
        if ev.writable() {
            self.flush(slot, tap);
        }
        if ev.readable() {
            self.read_ready(slot, tap);
        }
        self.maybe_finalize(slot);
    }

    /// Edge-triggered read: drain the socket to `WouldBlock` (or the
    /// buffer cap), then hand the bytes to the handler once.
    fn read_ready(&mut self, slot: usize, tap: Option<&dyn StreamTap>) {
        let Some(conn) = self.slab[slot].as_mut() else {
            return;
        };
        if conn.closing.is_some() {
            return;
        }
        let mut got_bytes = false;
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            if conn.read_buf.len() - conn.consumed >= self.config.max_buffer {
                conn.closing = Some(CloseReason::Overflow);
                break;
            }
            // Reclaim consumed prefix before growing the buffer.
            if conn.consumed > 4096 && conn.consumed * 2 >= conn.read_buf.len() {
                conn.read_buf.drain(..conn.consumed);
                conn.consumed = 0;
            }
            let mut cap = READ_CHUNK;
            match tap.and_then(StreamTap::read_fault) {
                // As-if EINTR: retry the syscall (under edge triggering
                // the round must not be abandoned, or the edge is lost).
                Some(TapFault::Transient) => continue,
                Some(TapFault::Short(n)) => cap = n.clamp(1, READ_CHUNK),
                Some(TapFault::Stall(d)) => thread::sleep(d.min(self.config.max_injected_stall)),
                None => {}
            }
            match conn.stream.read(&mut chunk[..cap]) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    got_bytes = true;
                    self.core
                        .counters
                        .bytes_in
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.eof = true;
                    break;
                }
            }
        }
        let eof_event = conn.eof && !conn.eof_notified;
        if got_bytes || eof_event {
            self.with_conn(slot, tap, |handler, ctx| handler.on_data(ctx));
        }
        if eof_event {
            if let Some(conn) = self.slab[slot].as_mut() {
                conn.eof_notified = true;
            }
            self.with_conn(slot, tap, |handler, ctx| handler.on_eof(ctx));
        }
    }

    /// Runs a handler callback with a [`ConnCtx`] borrowed from the
    /// slot, then flushes whatever the handler queued.
    fn with_conn(
        &mut self,
        slot: usize,
        tap: Option<&dyn StreamTap>,
        f: impl FnOnce(&mut Box<dyn Handler<M>>, &mut ConnCtx<'_>),
    ) {
        let draining = self.core.draining.load(Ordering::SeqCst);
        {
            let Some(conn) = self.slab[slot].as_mut() else {
                return;
            };
            let token = token_for(self.index, slot, conn.gen);
            let Conn {
                handler,
                read_buf,
                consumed,
                write_buf,
                closing,
                last_activity,
                ..
            } = conn;
            let mut ctx = ConnCtx {
                token,
                read_buf,
                consumed,
                write_buf,
                closing,
                last_activity,
                draining,
            };
            f(handler, &mut ctx);
        }
        self.flush(slot, tap);
    }

    /// Flushes queued response bytes; arms `EPOLLOUT` on backpressure.
    fn flush(&mut self, slot: usize, tap: Option<&dyn StreamTap>) {
        let Some(conn) = self.slab[slot].as_mut() else {
            return;
        };
        while conn.write_pos < conn.write_buf.len() {
            let mut cap = conn.write_buf.len() - conn.write_pos;
            match tap.and_then(StreamTap::write_fault) {
                Some(TapFault::Transient) => continue,
                Some(TapFault::Short(n)) => cap = n.clamp(1, cap),
                Some(TapFault::Stall(d)) => thread::sleep(d.min(self.config.max_injected_stall)),
                None => {}
            }
            let window = &conn.write_buf[conn.write_pos..conn.write_pos + cap];
            match conn.stream.write(window) {
                Ok(0) => {
                    // Dead transport: nothing more can be sent, so mark
                    // the buffer drained to unblock finalization.
                    if conn.closing.is_none() {
                        conn.closing = Some(CloseReason::Eof);
                    }
                    conn.write_pos = conn.write_buf.len();
                    break;
                }
                Ok(n) => {
                    conn.write_pos += n;
                    self.core
                        .counters
                        .bytes_out
                        .fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    if conn.closing.is_none() {
                        conn.closing = Some(CloseReason::Eof);
                    }
                    conn.write_pos = conn.write_buf.len();
                    break;
                }
            }
        }
        if conn.write_pos >= conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
            conn.write_since = None;
            if conn.interest_out {
                conn.interest_out = false;
                let token = token_for(self.index, slot, conn.gen);
                let _ = self
                    .poller
                    .modify(conn.stream.as_raw_fd(), token, sys::EPOLLIN);
            }
        } else {
            if conn.write_since.is_none() {
                conn.write_since = Some(Instant::now());
            }
            if !conn.interest_out {
                conn.interest_out = true;
                let token = token_for(self.index, slot, conn.gen);
                let _ = self.poller.modify(
                    conn.stream.as_raw_fd(),
                    token,
                    sys::EPOLLIN | sys::EPOLLOUT,
                );
            }
        }
    }

    /// Closes the slot now if a close is pending and the write buffer
    /// has drained. (A dead transport counts as drained: `flush` marks
    /// the buffer spent on write errors — so a half-closed peer still
    /// receives its queued response, while a fully dead one finalizes
    /// immediately. A peer that stops reading is bounded by the
    /// write-stall sweep.)
    fn maybe_finalize(&mut self, slot: usize) {
        let reason = match self.slab.get(slot).and_then(Option::as_ref) {
            Some(conn) => match conn.closing {
                Some(reason) if conn.write_pos >= conn.write_buf.len() => Some(reason),
                _ => None,
            },
            None => None,
        };
        if let Some(reason) = reason {
            self.finalize(slot, reason);
        }
    }

    fn finalize(&mut self, slot: usize, reason: CloseReason) {
        if let Some(conn) = self.slab[slot].take() {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.core.counters.record_close(reason);
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            self.free.push(slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    /// Newline-echo handler: echoes each line back, closes on "quit",
    /// and echoes posted messages prefixed with "msg:".
    struct Echo;

    impl Handler<String> for Echo {
        fn on_data(&mut self, conn: &mut ConnCtx<'_>) {
            while let Some(nl) = conn.data().iter().position(|&b| b == b'\n') {
                let line = conn.data()[..nl].to_vec();
                conn.consume(nl + 1);
                if line == b"quit" {
                    conn.close(CloseReason::App);
                    return;
                }
                conn.write(&line);
                conn.write(b"\n");
            }
        }

        fn on_message(&mut self, msg: String, conn: &mut ConnCtx<'_>) {
            conn.write(format!("msg:{msg}\n").as_bytes());
        }
    }

    fn start_echo(config: ReactorConfig) -> (Reactor<String>, TcpListener, std::net::SocketAddr) {
        let reactor = Reactor::start(
            config,
            Arc::new(|_| Box::new(Echo) as Box<dyn Handler<_>>),
            None,
        )
        .expect("reactor starts");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        (reactor, listener, addr)
    }

    #[test]
    fn echoes_lines_across_shards_and_drains_clean() {
        let (reactor, listener, addr) = start_echo(ReactorConfig {
            shards: 2,
            ..ReactorConfig::default()
        });
        let handle = reactor.handle();
        let mut clients = Vec::new();
        for i in 0..4 {
            let stream = TcpStream::connect(addr).expect("connect");
            let (server_side, _) = listener.accept().expect("accept");
            handle.register(server_side);
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut stream = stream;
            writeln!(stream, "hello-{i}").expect("write");
            let mut line = String::new();
            reader.read_line(&mut line).expect("read");
            assert_eq!(line.trim(), format!("hello-{i}"));
            clients.push((stream, reader));
        }
        assert_eq!(reactor.counters().accepted.load(Ordering::Relaxed), 4);
        drop(clients);
        handle.drain();
        reactor.join();
    }

    #[test]
    fn mailbox_messages_reach_the_right_connection() {
        let (reactor, listener, addr) = start_echo(ReactorConfig::default());
        let handle = reactor.handle();
        let mailbox = reactor.mailbox();

        let stream = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        handle.register(server_side);
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;

        // Learn the token by echo first (token is internal, so derive it
        // the way the serving layer does: the factory hands it to the
        // handler; here the first registered conn is shard 0, slot 0,
        // gen 0).
        writeln!(stream, "sync").expect("write");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line.trim(), "sync");

        mailbox.post(token_for(0, 0, 0), "done".to_owned());
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line.trim(), "msg:done");

        // A message for a stale generation is dropped, not delivered.
        mailbox.post(token_for(0, 0, 99), "ghost".to_owned());
        writeln!(stream, "after").expect("write");
        line.clear();
        reader.read_line(&mut line).expect("read");
        assert_eq!(line.trim(), "after", "ghost message must not arrive");

        drop(stream);
        handle.drain();
        reactor.join();
    }

    #[test]
    fn idle_connections_are_closed_and_counted() {
        let (reactor, listener, addr) = start_echo(ReactorConfig {
            idle_timeout: Duration::from_millis(120),
            ..ReactorConfig::default()
        });
        let handle = reactor.handle();
        let stream = TcpStream::connect(addr).expect("connect");
        let (server_side, _) = listener.accept().expect("accept");
        handle.register(server_side);

        // Never send anything: the reactor must cut the connection.
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read eof");
        assert_eq!(n, 0, "idle connection must be closed by the server");
        assert_eq!(reactor.counters().closed(CloseReason::Idle), 1);

        handle.drain();
        reactor.join();
    }

    #[test]
    fn tokens_round_trip_their_fields() {
        let t = token_for(5, 0x00ab_cdef, 0xdead_beef);
        assert_eq!(shard_of(t), 5);
        assert_eq!(slot_of(t), 0x00ab_cdef);
        assert_eq!(gen_of(t), 0xdead_beef);
        assert_ne!(t, WAKE_TOKEN);
    }
}
