//! Text format for gate-library capacitance data.
//!
//! The paper's flow back-annotates loads from "input capacitances of
//! fan-out gates"; those capacitances are library data a user will want to
//! supply for their own technology. The `libspec` format is a minimal,
//! line-oriented exchange format:
//!
//! ```text
//! # comment
//! library my28nm
//! wire 1.2
//! output_load 8.0
//! cell inv 2.1
//! cell nand2 2.6 2.6
//! cell mux2 4.0 3.5 3.5
//! ```
//!
//! `cell` lines list per-pin input capacitances in femtofarads (one value
//! per pin, or a single value applied to all pins). Cells omitted from the
//! spec keep the default test-library values.

use crate::library::{CellKind, Library, ALL_CELLS};
use crate::units::Capacitance;
use std::error::Error;
use std::fmt;

/// Errors produced while parsing a library spec.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseLibraryError {
    /// Malformed line (1-based line number and description).
    Syntax(usize, String),
    /// `cell` line referenced an unknown cell name.
    UnknownCell(usize, String),
    /// A capacitance was negative or not a number.
    BadValue(usize, String),
    /// A `cell` line had neither 1 nor arity-many values.
    WrongPinCount {
        /// 1-based line number.
        line: usize,
        /// The cell in question.
        cell: CellKind,
        /// Values provided.
        got: usize,
    },
}

impl fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLibraryError::Syntax(l, m) => write!(f, "line {l}: {m}"),
            ParseLibraryError::UnknownCell(l, c) => write!(f, "line {l}: unknown cell `{c}`"),
            ParseLibraryError::BadValue(l, v) => write!(f, "line {l}: bad capacitance `{v}`"),
            ParseLibraryError::WrongPinCount { line, cell, got } => write!(
                f,
                "line {line}: cell `{cell}` takes 1 or {} values, got {got}",
                cell.arity()
            ),
        }
    }
}

impl Error for ParseLibraryError {}

/// Parses a `libspec` document into a [`Library`] (unspecified cells keep
/// the test-library defaults).
///
/// # Errors
///
/// See [`ParseLibraryError`].
///
/// # Examples
///
/// ```
/// use charfree_netlist::{libspec, CellKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = libspec::parse("library t\nwire 1.5\ncell inv 2.0\n")?;
/// assert_eq!(lib.name(), "t");
/// assert_eq!(lib.wire_cap().femtofarads(), 1.5);
/// assert_eq!(lib.pin_cap(CellKind::Inv, 0).femtofarads(), 2.0);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Library, ParseLibraryError> {
    let mut library = Library::test_library();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let Some(keyword) = words.next() else {
            continue; // unreachable after the is_empty check, but harmless
        };
        let parse_cap = |tok: &str| -> Result<Capacitance, ParseLibraryError> {
            let v: f64 = tok
                .parse()
                .map_err(|_| ParseLibraryError::BadValue(line_no, tok.to_owned()))?;
            if v < 0.0 || !v.is_finite() {
                return Err(ParseLibraryError::BadValue(line_no, tok.to_owned()));
            }
            Ok(Capacitance(v))
        };
        match keyword {
            "library" => {
                let name = words.next().ok_or_else(|| {
                    ParseLibraryError::Syntax(line_no, "library needs a name".into())
                })?;
                library.set_name(name);
            }
            "wire" => {
                let tok = words.next().ok_or_else(|| {
                    ParseLibraryError::Syntax(line_no, "wire needs a value".into())
                })?;
                library.set_wire_cap(parse_cap(tok)?);
            }
            "output_load" => {
                let tok = words.next().ok_or_else(|| {
                    ParseLibraryError::Syntax(line_no, "output_load needs a value".into())
                })?;
                library.set_output_load(parse_cap(tok)?);
            }
            "cell" => {
                let cell_name = words.next().ok_or_else(|| {
                    ParseLibraryError::Syntax(line_no, "cell needs a name".into())
                })?;
                let cell = CellKind::from_name(cell_name)
                    .ok_or_else(|| ParseLibraryError::UnknownCell(line_no, cell_name.to_owned()))?;
                let values: Vec<Capacitance> = words.map(parse_cap).collect::<Result<_, _>>()?;
                match values.len() {
                    1 => library.set_pin_cap(cell, values[0]),
                    k if k == cell.arity() => {
                        for (pin, &cap) in values.iter().enumerate() {
                            library.set_pin_cap_at(cell, pin, cap);
                        }
                    }
                    got => {
                        return Err(ParseLibraryError::WrongPinCount {
                            line: line_no,
                            cell,
                            got,
                        });
                    }
                }
            }
            other => {
                return Err(ParseLibraryError::Syntax(
                    line_no,
                    format!("unknown keyword `{other}`"),
                ));
            }
        }
    }
    Ok(library)
}

/// Serializes a [`Library`] in `libspec` form; [`parse`] round-trips it.
pub fn write(library: &Library) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "library {}", library.name());
    let _ = writeln!(out, "wire {}", library.wire_cap().femtofarads());
    let _ = writeln!(out, "output_load {}", library.output_load().femtofarads());
    for cell in ALL_CELLS {
        let caps: Vec<String> = (0..cell.arity())
            .map(|pin| library.pin_cap(cell, pin).femtofarads().to_string())
            .collect();
        let _ = writeln!(out, "cell {} {}", cell.name(), caps.join(" "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_query() {
        let text = "
# a tiny tech
library t1
wire 1.5
output_load 9.0
cell inv 2.0
cell nand2 2.5 2.75
";
        let lib = parse(text).expect("valid spec");
        assert_eq!(lib.name(), "t1");
        assert_eq!(lib.wire_cap().femtofarads(), 1.5);
        assert_eq!(lib.output_load().femtofarads(), 9.0);
        assert_eq!(lib.pin_cap(CellKind::Inv, 0).femtofarads(), 2.0);
        assert_eq!(lib.pin_cap(CellKind::Nand2, 0).femtofarads(), 2.5);
        assert_eq!(lib.pin_cap(CellKind::Nand2, 1).femtofarads(), 2.75);
        // Unspecified cells keep defaults.
        assert_eq!(lib.pin_cap(CellKind::Xor2, 0).femtofarads(), 9.0);
    }

    #[test]
    fn round_trip() {
        let mut lib = Library::test_library();
        lib.set_name("rt");
        lib.set_wire_cap(Capacitance(3.25));
        lib.set_pin_cap_at(CellKind::Mux2, 0, Capacitance(11.0));
        let text = write(&lib);
        let back = parse(&text).expect("round-trips");
        assert_eq!(back.name(), "rt");
        assert_eq!(back.wire_cap(), lib.wire_cap());
        for cell in ALL_CELLS {
            for pin in 0..cell.arity() {
                assert_eq!(
                    back.pin_cap(cell, pin),
                    lib.pin_cap(cell, pin),
                    "{cell} {pin}"
                );
            }
        }
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse("bogus 1"),
            Err(ParseLibraryError::Syntax(1, _))
        ));
        assert!(matches!(
            parse("cell nothere 1.0"),
            Err(ParseLibraryError::UnknownCell(1, _))
        ));
        assert!(matches!(
            parse("cell inv -1.0"),
            Err(ParseLibraryError::BadValue(1, _))
        ));
        assert!(matches!(
            parse("cell inv abc"),
            Err(ParseLibraryError::BadValue(1, _))
        ));
        assert!(matches!(
            parse("cell mux2 1.0 2.0"),
            Err(ParseLibraryError::WrongPinCount { got: 2, .. })
        ));
        assert!(matches!(
            parse("wire"),
            Err(ParseLibraryError::Syntax(1, _))
        ));
        let e = parse("cell mux2 1.0 2.0").expect_err("wrong pins");
        assert!(e.to_string().contains("mux2"));
    }

    #[test]
    fn affects_back_annotation() {
        let text = "library fat\nwire 100.0\ncell inv 50.0\n";
        let fat = parse(text).expect("valid");
        let thin = Library::test_library();
        let netlist_fat = crate::benchmarks::parity(&fat);
        let netlist_thin = crate::benchmarks::parity(&thin);
        assert!(netlist_fat.total_load() > netlist_thin.total_load());
    }
}
