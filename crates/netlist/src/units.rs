//! Physical quantities used throughout the workspace.
//!
//! Newtypes keep femtofarads, volts and femtojoules from being mixed up
//! (C-NEWTYPE). The paper works at the abstraction `e = Vdd² · C`, so only
//! capacitance, voltage, energy and power are needed.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Capacitance in femtofarads (fF) — the unit of the paper's Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Capacitance(pub f64);

impl Capacitance {
    /// Zero capacitance.
    pub const ZERO: Capacitance = Capacitance(0.0);

    /// Constructs from a femtofarad value.
    ///
    /// # Panics
    ///
    /// Panics if `ff` is negative or NaN.
    pub fn from_femtofarads(ff: f64) -> Self {
        assert!(ff >= 0.0, "capacitance must be non-negative, got {ff}");
        Capacitance(ff)
    }

    /// The value in femtofarads.
    #[inline]
    pub fn femtofarads(self) -> f64 {
        self.0
    }
}

impl Add for Capacitance {
    type Output = Capacitance;
    fn add(self, rhs: Self) -> Self {
        Capacitance(self.0 + rhs.0)
    }
}

impl AddAssign for Capacitance {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Capacitance {
    type Output = Capacitance;
    fn sub(self, rhs: Self) -> Self {
        Capacitance(self.0 - rhs.0)
    }
}

impl Mul<f64> for Capacitance {
    type Output = Capacitance;
    fn mul(self, rhs: f64) -> Self {
        Capacitance(self.0 * rhs)
    }
}

impl Sum for Capacitance {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Capacitance(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Capacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fF", self.0)
    }
}

/// Supply voltage in volts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Voltage(pub f64);

impl Voltage {
    /// A typical 1998-era supply, 3.3 V.
    pub const VDD_3V3: Voltage = Voltage(3.3);

    /// The value in volts.
    #[inline]
    pub fn volts(self) -> f64 {
        self.0
    }
}

impl Default for Voltage {
    fn default() -> Self {
        Voltage::VDD_3V3
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} V", self.0)
    }
}

/// Energy in femtojoules (fF·V² = fJ).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(pub f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// The supply energy drawn when switching capacitance `c` charges at
    /// supply `vdd`: `e = Vdd² · C` (Eq. 1).
    ///
    /// # Examples
    ///
    /// ```
    /// use charfree_netlist::units::{Capacitance, Energy, Voltage};
    /// let e = Energy::from_switched(Capacitance(90.0), Voltage(1.0));
    /// assert_eq!(e.femtojoules(), 90.0);
    /// ```
    pub fn from_switched(c: Capacitance, vdd: Voltage) -> Self {
        Energy(vdd.0 * vdd.0 * c.0)
    }

    /// The value in femtojoules.
    #[inline]
    pub fn femtojoules(self) -> f64 {
        self.0
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Self) -> Self {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Energy(iter.map(|e| e.0).sum())
    }
}

impl Div<f64> for Energy {
    /// Energy over time is power; dividing by a cycle time in ns yields µW
    /// at fJ scale. We keep it dimensionless here: `Energy / f64 -> Power`.
    type Output = Power;
    fn div(self, period_ns: f64) -> Power {
        Power(self.0 / period_ns)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} fJ", self.0)
    }
}

/// Power in microwatts (fJ / ns = µW).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Power(pub f64);

impl Power {
    /// The value in microwatts.
    #[inline]
    pub fn microwatts(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} µW", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacitance_arithmetic() {
        let a = Capacitance(40.0);
        let b = Capacitance(50.0);
        assert_eq!((a + b).femtofarads(), 90.0);
        assert_eq!((b - a).femtofarads(), 10.0);
        assert_eq!((a * 2.0).femtofarads(), 80.0);
        let total: Capacitance = [a, b].into_iter().sum();
        assert_eq!(total.femtofarads(), 90.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacitance_rejected() {
        let _ = Capacitance::from_femtofarads(-1.0);
    }

    #[test]
    fn energy_from_switching() {
        // Paper Fig. 2: C(11,00) = 90 fF; at Vdd = 3.3 V this is
        // 90 * 10.89 fJ.
        let e = Energy::from_switched(Capacitance(90.0), Voltage::VDD_3V3);
        assert!((e.femtojoules() - 90.0 * 3.3 * 3.3).abs() < 1e-12);
    }

    #[test]
    fn power_is_energy_over_time() {
        let p = Energy(100.0) / 10.0;
        assert_eq!(p.microwatts(), 10.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Capacitance(1.5).to_string(), "1.5 fF");
        assert_eq!(Voltage(3.3).to_string(), "3.3 V");
        assert_eq!(Energy(2.0).to_string(), "2 fJ");
        assert_eq!(Power(4.0).to_string(), "4 µW");
    }
}
