//! ISCAS-85 `.bench` netlist reader and writer.
//!
//! The `.bench` format is the other lingua franca of 1990s benchmark
//! suites (ISCAS-85/89) next to BLIF:
//!
//! ```text
//! # c17
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Supported functions: `AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR` (any
//! arity ≥ 2, decomposed onto 2/3-input library cells), `NOT`, `BUF`/
//! `BUFF`, and `MUX` (3 pins: select, a, b). Sequential `DFF` elements are
//! rejected — the golden model is combinational.

use crate::library::CellKind;
use crate::netlist::{Netlist, NetlistError, SignalId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors produced by the `.bench` reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchError {
    /// Malformed line (1-based number and description).
    Syntax(usize, String),
    /// Unknown gate function name.
    UnknownFunction(usize, String),
    /// A net is used but never defined.
    Undefined(String),
    /// A net is defined more than once.
    MultipleDrivers(String),
    /// Definitions form a combinational cycle.
    Cycle(String),
    /// Netlist construction failed.
    Netlist(NetlistError),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Syntax(l, m) => write!(f, "line {l}: {m}"),
            BenchError::UnknownFunction(l, n) => write!(f, "line {l}: unknown function `{n}`"),
            BenchError::Undefined(n) => write!(f, "net `{n}` is used but never defined"),
            BenchError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            BenchError::Cycle(n) => write!(f, "combinational cycle through `{n}`"),
            BenchError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for BenchError {}

impl From<NetlistError> for BenchError {
    fn from(e: NetlistError) -> Self {
        BenchError::Netlist(e)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Func {
    And,
    Nand,
    Or,
    Nor,
    Xor,
    Xnor,
    Not,
    Buf,
    Mux,
}

impl Func {
    fn parse(name: &str) -> Option<Func> {
        match name.to_ascii_uppercase().as_str() {
            "AND" => Some(Func::And),
            "NAND" => Some(Func::Nand),
            "OR" => Some(Func::Or),
            "NOR" => Some(Func::Nor),
            "XOR" => Some(Func::Xor),
            "XNOR" => Some(Func::Xnor),
            "NOT" | "INV" => Some(Func::Not),
            "BUF" | "BUFF" => Some(Func::Buf),
            "MUX" => Some(Func::Mux),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Definition {
    func: Func,
    inputs: Vec<String>,
    output: String,
    line: usize,
}

/// Parses `.bench` text into a mapped gate-level [`Netlist`].
///
/// Wide AND/OR/NAND/NOR/XOR/XNOR gates are decomposed into balanced trees
/// of 2/3-input library cells (with a trailing inverter for the negated
/// forms).
///
/// # Errors
///
/// See [`BenchError`]; `DFF` lines are rejected as sequential.
///
/// # Examples
///
/// ```
/// use charfree_netlist::bench_format;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c17ish = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// t = NAND(a, b)
/// y = NOT(t)
/// ";
/// let netlist = bench_format::parse("c17ish", c17ish)?;
/// assert_eq!(netlist.num_inputs(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse(name: &str, text: &str) -> Result<Netlist, BenchError> {
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut defs: Vec<Definition> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("INPUT") {
            inputs.push(extract_paren(rest, line, line_no)?);
        } else if let Some(rest) = upper.strip_prefix("OUTPUT") {
            outputs.push(extract_paren(rest, line, line_no)?);
        } else if upper.contains("DFF") {
            return Err(BenchError::Syntax(
                line_no,
                "sequential elements (DFF) are not supported".into(),
            ));
        } else if let Some(eq) = line.find('=') {
            let output = line[..eq].trim().to_owned();
            let rhs = line[eq + 1..].trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| BenchError::Syntax(line_no, "missing `(`".into()))?;
            let close = rhs
                .rfind(')')
                .ok_or_else(|| BenchError::Syntax(line_no, "missing `)`".into()))?;
            let func_name = rhs[..open].trim();
            let func = Func::parse(func_name)
                .ok_or_else(|| BenchError::UnknownFunction(line_no, func_name.to_owned()))?;
            let pins: Vec<String> = rhs[open + 1..close]
                .split(',')
                .map(|p| p.trim().to_owned())
                .filter(|p| !p.is_empty())
                .collect();
            let arity_ok = match func {
                Func::Not | Func::Buf => pins.len() == 1,
                Func::Mux => pins.len() == 3,
                _ => pins.len() >= 2,
            };
            if !arity_ok {
                return Err(BenchError::Syntax(
                    line_no,
                    format!("`{func_name}` got {} operand(s)", pins.len()),
                ));
            }
            defs.push(Definition {
                func,
                inputs: pins,
                output,
                line: line_no,
            });
        } else {
            return Err(BenchError::Syntax(
                line_no,
                format!("unexpected line `{line}`"),
            ));
        }
    }

    elaborate(name, inputs, outputs, defs)
}

fn extract_paren(rest: &str, original: &str, line_no: usize) -> Result<String, BenchError> {
    let rest = rest.trim();
    if !rest.starts_with('(') || !rest.ends_with(')') {
        return Err(BenchError::Syntax(
            line_no,
            format!("bad directive `{original}`"),
        ));
    }
    // Use the original (case-preserved) text for the net name.
    let open = original
        .find('(')
        .ok_or_else(|| BenchError::Syntax(line_no, format!("bad directive `{original}`")))?;
    let close = original
        .rfind(')')
        .ok_or_else(|| BenchError::Syntax(line_no, format!("bad directive `{original}`")))?;
    Ok(original[open + 1..close].trim().to_owned())
}

fn emit(
    netlist: &mut Netlist,
    def: &Definition,
    pins: &[SignalId],
) -> Result<SignalId, NetlistError> {
    // Balanced 2/3-input reduction for the wide associative functions.
    // Intermediate nets are named `<output>_t<k>` so they can never collide
    // with nets defined later in the file (auto names only check against
    // already-interned signals).
    fn reduce(
        netlist: &mut Netlist,
        mut sigs: Vec<SignalId>,
        two: CellKind,
        three: CellKind,
        prefix: &str,
        counter: &mut usize,
    ) -> Result<SignalId, NetlistError> {
        let mut fresh = |netlist: &mut Netlist, kind: CellKind, ins: &[SignalId]| {
            let name = format!("{prefix}_t{counter}");
            *counter += 1;
            netlist.add_gate_named(kind, ins, name)
        };
        while sigs.len() > 1 {
            let mut next = Vec::with_capacity(sigs.len() / 2 + 1);
            let mut rest = sigs.as_slice();
            while !rest.is_empty() {
                match rest.len() {
                    1 => {
                        next.push(rest[0]);
                        rest = &rest[1..];
                    }
                    2 | 4 => {
                        next.push(fresh(netlist, two, &rest[..2])?);
                        rest = &rest[2..];
                    }
                    _ => {
                        next.push(fresh(netlist, three, &rest[..3])?);
                        rest = &rest[3..];
                    }
                }
            }
            sigs = next;
        }
        Ok(sigs[0])
    }
    fn reduce_xor(
        netlist: &mut Netlist,
        mut sigs: Vec<SignalId>,
        prefix: &str,
        counter: &mut usize,
    ) -> Result<SignalId, NetlistError> {
        while sigs.len() > 1 {
            let mut next = Vec::with_capacity(sigs.len() / 2 + 1);
            for pair in sigs.chunks(2) {
                match pair {
                    [a, b] => {
                        let name = format!("{prefix}_t{counter}");
                        *counter += 1;
                        next.push(netlist.add_gate_named(CellKind::Xor2, &[*a, *b], name)?);
                    }
                    [a] => next.push(*a),
                    _ => unreachable!("chunks(2)"),
                }
            }
            sigs = next;
        }
        Ok(sigs[0])
    }
    let mut counter = 0usize;

    let named = |netlist: &mut Netlist, kind: CellKind, ins: &[SignalId]| {
        netlist.add_gate_named(kind, ins, def.output.clone())
    };
    match def.func {
        Func::Not => named(netlist, CellKind::Inv, &[pins[0]]),
        Func::Buf => named(netlist, CellKind::Buf, &[pins[0]]),
        Func::Mux => named(netlist, CellKind::Mux2, pins),
        Func::And if pins.len() == 2 => named(netlist, CellKind::And2, pins),
        Func::Or if pins.len() == 2 => named(netlist, CellKind::Or2, pins),
        Func::Nand if pins.len() == 2 => named(netlist, CellKind::Nand2, pins),
        Func::Nor if pins.len() == 2 => named(netlist, CellKind::Nor2, pins),
        Func::Xor if pins.len() == 2 => named(netlist, CellKind::Xor2, pins),
        Func::Xnor if pins.len() == 2 => named(netlist, CellKind::Xnor2, pins),
        Func::And => {
            let t = reduce(
                netlist,
                pins.to_vec(),
                CellKind::And2,
                CellKind::And3,
                &def.output,
                &mut counter,
            )?;
            named(netlist, CellKind::Buf, &[t])
        }
        Func::Or => {
            let t = reduce(
                netlist,
                pins.to_vec(),
                CellKind::Or2,
                CellKind::Or3,
                &def.output,
                &mut counter,
            )?;
            named(netlist, CellKind::Buf, &[t])
        }
        Func::Nand => {
            let t = reduce(
                netlist,
                pins.to_vec(),
                CellKind::And2,
                CellKind::And3,
                &def.output,
                &mut counter,
            )?;
            named(netlist, CellKind::Inv, &[t])
        }
        Func::Nor => {
            let t = reduce(
                netlist,
                pins.to_vec(),
                CellKind::Or2,
                CellKind::Or3,
                &def.output,
                &mut counter,
            )?;
            named(netlist, CellKind::Inv, &[t])
        }
        Func::Xor => {
            let t = reduce_xor(netlist, pins.to_vec(), &def.output, &mut counter)?;
            named(netlist, CellKind::Buf, &[t])
        }
        Func::Xnor => {
            let t = reduce_xor(netlist, pins.to_vec(), &def.output, &mut counter)?;
            named(netlist, CellKind::Inv, &[t])
        }
    }
}

fn elaborate(
    name: &str,
    inputs: Vec<String>,
    outputs: Vec<String>,
    defs: Vec<Definition>,
) -> Result<Netlist, BenchError> {
    let mut driver_of: HashMap<&str, usize> = HashMap::new();
    for (i, d) in defs.iter().enumerate() {
        if driver_of.insert(d.output.as_str(), i).is_some() || inputs.contains(&d.output) {
            return Err(BenchError::MultipleDrivers(d.output.clone()));
        }
    }

    let mut netlist = Netlist::new(name);
    let mut sig: HashMap<String, SignalId> = HashMap::new();
    for input in &inputs {
        let id = netlist
            .add_input(input.clone())
            .map_err(BenchError::Netlist)?;
        sig.insert(input.clone(), id);
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<usize, Mark> = HashMap::new();
    for start in 0..defs.len() {
        if marks.get(&start) == Some(&Mark::Done) {
            continue;
        }
        let mut stack = vec![start];
        while let Some(&node) = stack.last() {
            match marks.get(&node) {
                Some(Mark::Done) => {
                    stack.pop();
                }
                Some(Mark::Visiting) => {
                    let def = &defs[node];
                    let mut pins = Vec::with_capacity(def.inputs.len());
                    for pin in &def.inputs {
                        match sig.get(pin.as_str()) {
                            Some(&id) => pins.push(id),
                            None => return Err(BenchError::Cycle(pin.clone())),
                        }
                    }
                    let out = emit(&mut netlist, def, &pins)?;
                    sig.insert(def.output.clone(), out);
                    marks.insert(node, Mark::Done);
                    stack.pop();
                }
                None => {
                    marks.insert(node, Mark::Visiting);
                    let def = &defs[node];
                    for pin in &def.inputs {
                        if sig.contains_key(pin.as_str()) {
                            continue;
                        }
                        match driver_of.get(pin.as_str()) {
                            Some(&dep) => match marks.get(&dep) {
                                Some(Mark::Done) => {}
                                Some(Mark::Visiting) => {
                                    return Err(BenchError::Cycle(pin.clone()));
                                }
                                None => stack.push(dep),
                            },
                            None => {
                                let _ = def.line;
                                return Err(BenchError::Undefined(pin.clone()));
                            }
                        }
                    }
                }
            }
        }
    }

    for out in &outputs {
        let id = sig
            .get(out.as_str())
            .copied()
            .ok_or_else(|| BenchError::Undefined(out.clone()))?;
        netlist.mark_output(id).map_err(BenchError::Netlist)?;
    }
    netlist.validate().map_err(BenchError::Netlist)?;
    Ok(netlist)
}

/// Serializes a mapped netlist in `.bench` syntax. Complex cells with no
/// direct `.bench` function (`MUX`, AOI/OAI) are emitted as `MUX` /
/// expanded into their AND/OR/NOT form, so the output always re-parses.
pub fn write(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# {}", netlist.name());
    for &i in netlist.inputs() {
        let _ = writeln!(out, "INPUT({})", netlist.signal_name(i));
    }
    for &o in netlist.outputs() {
        let _ = writeln!(out, "OUTPUT({})", netlist.signal_name(o));
    }
    for (gid, gate) in netlist.gates() {
        let pin = |k: usize| netlist.signal_name(gate.inputs()[k]).to_owned();
        let y = netlist.signal_name(gate.output());
        match gate.kind() {
            CellKind::Inv => {
                let _ = writeln!(out, "{y} = NOT({})", pin(0));
            }
            CellKind::Buf => {
                let _ = writeln!(out, "{y} = BUFF({})", pin(0));
            }
            CellKind::Nand2 => {
                let _ = writeln!(out, "{y} = NAND({}, {})", pin(0), pin(1));
            }
            CellKind::Nand3 => {
                let _ = writeln!(out, "{y} = NAND({}, {}, {})", pin(0), pin(1), pin(2));
            }
            CellKind::Nand4 => {
                let _ = writeln!(
                    out,
                    "{y} = NAND({}, {}, {}, {})",
                    pin(0),
                    pin(1),
                    pin(2),
                    pin(3)
                );
            }
            CellKind::Nor2 => {
                let _ = writeln!(out, "{y} = NOR({}, {})", pin(0), pin(1));
            }
            CellKind::Nor3 => {
                let _ = writeln!(out, "{y} = NOR({}, {}, {})", pin(0), pin(1), pin(2));
            }
            CellKind::Nor4 => {
                let _ = writeln!(
                    out,
                    "{y} = NOR({}, {}, {}, {})",
                    pin(0),
                    pin(1),
                    pin(2),
                    pin(3)
                );
            }
            CellKind::And2 => {
                let _ = writeln!(out, "{y} = AND({}, {})", pin(0), pin(1));
            }
            CellKind::And3 => {
                let _ = writeln!(out, "{y} = AND({}, {}, {})", pin(0), pin(1), pin(2));
            }
            CellKind::Or2 => {
                let _ = writeln!(out, "{y} = OR({}, {})", pin(0), pin(1));
            }
            CellKind::Or3 => {
                let _ = writeln!(out, "{y} = OR({}, {}, {})", pin(0), pin(1), pin(2));
            }
            CellKind::Xor2 => {
                let _ = writeln!(out, "{y} = XOR({}, {})", pin(0), pin(1));
            }
            CellKind::Xnor2 => {
                let _ = writeln!(out, "{y} = XNOR({}, {})", pin(0), pin(1));
            }
            CellKind::Mux2 => {
                let _ = writeln!(out, "{y} = MUX({}, {}, {})", pin(0), pin(1), pin(2));
            }
            CellKind::Aoi21 => {
                // !(p0·p1 + p2): expand through helper nets.
                let _ = writeln!(out, "{y}_and = AND({}, {})", pin(0), pin(1));
                let _ = writeln!(out, "{y} = NOR({y}_and, {})", pin(2));
            }
            CellKind::Oai21 => {
                let _ = writeln!(out, "{y}_or = OR({}, {})", pin(0), pin(1));
                let _ = writeln!(out, "{y} = NAND({y}_or, {})", pin(2));
            }
        }
        let _ = gid;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::Library;

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; n.num_signals()];
        for (i, &sigid) in n.inputs().iter().enumerate() {
            values[sigid.index()] = inputs[i];
        }
        for (_, gate) in n.gates() {
            let ins: Vec<bool> = gate.inputs().iter().map(|s| values[s.index()]).collect();
            values[gate.output().index()] = gate.kind().eval(&ins);
        }
        n.outputs().iter().map(|o| values[o.index()]).collect()
    }

    const C17: &str = "
# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

    #[test]
    fn parse_c17_and_check_function() {
        let n = parse("c17", C17).expect("valid bench");
        assert_eq!(n.num_inputs(), 5);
        assert_eq!(n.outputs().len(), 2);
        assert_eq!(n.num_gates(), 6);
        // Reference model of c17.
        let nand = |a: bool, b: bool| !(a && b);
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let (i1, i2, i3, i6, i7) = (v[0], v[1], v[2], v[3], v[4]);
            let g10 = nand(i1, i3);
            let g11 = nand(i3, i6);
            let g16 = nand(i2, g11);
            let g19 = nand(g11, i7);
            let want = vec![nand(g10, g16), nand(g16, g19)];
            assert_eq!(eval(&n, &v), want, "bits={bits:05b}");
        }
    }

    #[test]
    fn wide_gates_decompose() {
        let text = "
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
INPUT(e)
OUTPUT(y)
OUTPUT(z)
y = NAND(a, b, c, d, e)
z = XNOR(a, b, c)
";
        let n = parse("wide", text).expect("valid");
        for bits in 0..32u32 {
            let v: Vec<bool> = (0..5).map(|i| bits >> i & 1 == 1).collect();
            let want_y = !(v.iter().all(|&x| x));
            let want_z = !(v[0] ^ v[1] ^ v[2]);
            assert_eq!(eval(&n, &v), vec![want_y, want_z], "bits={bits:05b}");
        }
    }

    #[test]
    fn round_trip_benchmarks() {
        let library = Library::test_library();
        for netlist in [
            benchmarks::paper_unit(),
            benchmarks::cm85(&library),
            benchmarks::mux(&library), // exercises MUX emission
            benchmarks::x2(&library),  // exercises AOI/OAI expansion
        ] {
            let text = write(&netlist);
            let back = parse(netlist.name(), &text).expect("round-trips");
            assert_eq!(
                back.num_inputs(),
                netlist.num_inputs(),
                "{}",
                netlist.name()
            );
            for trial in 0..64u32 {
                let asg: Vec<bool> = (0..netlist.num_inputs())
                    .map(|i| trial.wrapping_mul(2654435761).rotate_left(i as u32) & 4 != 0)
                    .collect();
                assert_eq!(
                    eval(&back, &asg),
                    eval(&netlist, &asg),
                    "{}",
                    netlist.name()
                );
            }
        }
    }

    #[test]
    fn errors() {
        assert!(matches!(
            parse("t", "INPUT(a)\nOUTPUT(y)\ny = DFF(a)"),
            Err(BenchError::Syntax(..))
        ));
        assert!(matches!(
            parse("t", "INPUT(a)\nOUTPUT(y)\ny = FROB(a, a)"),
            Err(BenchError::UnknownFunction(..))
        ));
        assert!(matches!(
            parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(q)"),
            Err(BenchError::Undefined(_))
        ));
        assert!(matches!(
            parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)"),
            Err(BenchError::MultipleDrivers(_))
        ));
        assert!(matches!(
            parse(
                "t",
                "INPUT(a)\nOUTPUT(y)\nu = NOT(v)\nv = NOT(u)\ny = AND(a, u)"
            ),
            Err(BenchError::Cycle(_))
        ));
        assert!(matches!(
            parse("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a, a)"),
            Err(BenchError::Syntax(..))
        ));
    }
}
