//! The gate-level netlist data structure (the paper's *golden model*).
//!
//! A [`Netlist`] is a DAG of library gates over named signals. Construction
//! is inherently topological — a gate can only be added once all of its
//! input signals exist — so combinational loops cannot be expressed and the
//! gate vector is always a valid evaluation order.

use crate::library::{CellKind, Library};
use crate::units::Capacitance;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifier of a signal (net) within one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// Index into [`Netlist`] signal storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a gate instance within one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// Index into [`Netlist`] gate storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One gate instance.
#[derive(Debug, Clone)]
pub struct Gate {
    kind: CellKind,
    inputs: Vec<SignalId>,
    output: SignalId,
    /// Output load capacitance `C_j`; zero until back-annotated.
    load: Capacitance,
}

impl Gate {
    /// The library cell implementing this gate.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input signals, in pin order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Output signal.
    pub fn output(&self) -> SignalId {
        self.output
    }

    /// Output load capacitance `C_j`.
    pub fn load(&self) -> Capacitance {
        self.load
    }
}

#[derive(Debug, Clone)]
struct Signal {
    name: String,
    driver: Option<GateId>,
}

/// Errors arising while building or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal with this name already exists.
    DuplicateSignal(String),
    /// A gate was given the wrong number of input pins.
    WrongArity {
        /// The offending cell.
        cell: CellKind,
        /// Expected pin count.
        expected: usize,
        /// Provided pin count.
        got: usize,
    },
    /// A referenced signal does not belong to this netlist.
    UnknownSignal(String),
    /// The netlist has no primary outputs.
    NoOutputs,
    /// A non-input signal has no driver.
    Undriven(String),
    /// A sum-of-products cover cannot be synthesized into the gate library
    /// (constant function, tautological cube, or literal/input mismatch).
    UnsynthesizableCover(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateSignal(n) => write!(f, "duplicate signal name `{n}`"),
            NetlistError::WrongArity {
                cell,
                expected,
                got,
            } => {
                write!(f, "cell `{cell}` takes {expected} inputs, got {got}")
            }
            NetlistError::UnknownSignal(n) => write!(f, "unknown signal `{n}`"),
            NetlistError::NoOutputs => write!(f, "netlist has no primary outputs"),
            NetlistError::Undriven(n) => write!(f, "signal `{n}` has no driver"),
            NetlistError::UnsynthesizableCover(why) => {
                write!(f, "unsynthesizable cover: {why}")
            }
        }
    }
}

impl Error for NetlistError {}

/// A combinational gate-level netlist with back-annotated capacitances.
///
/// # Examples
///
/// The paper's example unit (Fig. 2a): `g1 = x1'`, `g2 = x2'`,
/// `g3 = x1 + x2`.
///
/// ```
/// use charfree_netlist::{CellKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("unit_u");
/// let x1 = n.add_input("x1")?;
/// let x2 = n.add_input("x2")?;
/// let g1 = n.add_gate(CellKind::Inv, &[x1])?;
/// let g2 = n.add_gate(CellKind::Inv, &[x2])?;
/// let g3 = n.add_gate(CellKind::Or2, &[x1, x2])?;
/// n.mark_output(g1)?;
/// n.mark_output(g2)?;
/// n.mark_output(g3)?;
/// assert_eq!(n.num_gates(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    signals: Vec<Signal>,
    gates: Vec<Gate>,
    inputs: Vec<SignalId>,
    outputs: Vec<SignalId>,
    by_name: HashMap<String, SignalId>,
}

impl Netlist {
    /// Creates an empty netlist called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            signals: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The netlist (model) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn intern_signal(
        &mut self,
        name: String,
        driver: Option<GateId>,
    ) -> Result<SignalId, NetlistError> {
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateSignal(name));
        }
        let id = SignalId(self.signals.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.signals.push(Signal { name, driver });
        Ok(id)
    }

    /// Declares a primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateSignal`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<SignalId, NetlistError> {
        let id = self.intern_signal(name.into(), None)?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a gate with an auto-generated output-signal name (`_n<k>`).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::WrongArity`] if `inputs.len()` does not match
    /// the cell arity, or [`NetlistError::UnknownSignal`] if an input id is
    /// out of range.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        inputs: &[SignalId],
    ) -> Result<SignalId, NetlistError> {
        // Pick a fresh auto name even when `_n<k>` names were imported
        // from a file (e.g. re-parsing our own BLIF/bench output).
        let mut k = self.gates.len();
        let name = loop {
            let candidate = format!("_n{k}");
            if !self.by_name.contains_key(&candidate) {
                break candidate;
            }
            k += 1;
        };
        self.add_gate_named(kind, inputs, name)
    }

    /// Adds a gate whose output signal is called `out_name`.
    ///
    /// # Errors
    ///
    /// As [`Netlist::add_gate`], plus [`NetlistError::DuplicateSignal`] for
    /// a name clash.
    pub fn add_gate_named(
        &mut self,
        kind: CellKind,
        inputs: &[SignalId],
        out_name: impl Into<String>,
    ) -> Result<SignalId, NetlistError> {
        if inputs.len() != kind.arity() {
            return Err(NetlistError::WrongArity {
                cell: kind,
                expected: kind.arity(),
                got: inputs.len(),
            });
        }
        for &s in inputs {
            if s.index() >= self.signals.len() {
                return Err(NetlistError::UnknownSignal(format!("#{}", s.0)));
            }
        }
        let gate_id = GateId(self.gates.len() as u32);
        let out = self.intern_signal(out_name.into(), Some(gate_id))?;
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output: out,
            load: Capacitance::ZERO,
        });
        Ok(out)
    }

    /// Marks `signal` as a primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::UnknownSignal`] if the id is out of range.
    pub fn mark_output(&mut self, signal: SignalId) -> Result<(), NetlistError> {
        if signal.index() >= self.signals.len() {
            return Err(NetlistError::UnknownSignal(format!("#{}", signal.0)));
        }
        self.outputs.push(signal);
        Ok(())
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[SignalId] {
        &self.outputs
    }

    /// Number of primary inputs (`n` in the paper's Table 1).
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of gates (`N` in the paper's Table 1).
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Number of signals (inputs + gate outputs).
    pub fn num_signals(&self) -> usize {
        self.signals.len()
    }

    /// The gates in topological (construction) order.
    pub fn gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId(i as u32), g))
    }

    /// A single gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// The gate driving `signal`, if any (primary inputs have none).
    pub fn driver(&self, signal: SignalId) -> Option<GateId> {
        self.signals[signal.index()].driver
    }

    /// The name of `signal`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` is out of range.
    pub fn signal_name(&self, signal: SignalId) -> &str {
        &self.signals[signal.index()].name
    }

    /// Looks a signal up by name.
    pub fn find_signal(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// Overrides the load capacitance of the gate driving the netlist
    /// (mostly useful for hand-built examples such as the paper's Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if `gate` is out of range.
    pub fn set_gate_load(&mut self, gate: GateId, load: Capacitance) {
        self.gates[gate.index()].load = load;
    }

    /// Sum of all gate load capacitances (the worst-case switched
    /// capacitance if every gate rose at once).
    pub fn total_load(&self) -> Capacitance {
        self.gates.iter().map(|g| g.load).sum()
    }

    /// For every signal, the `(gate, pin)` pairs it feeds.
    pub fn fanouts(&self) -> Vec<Vec<(GateId, usize)>> {
        let mut fo: Vec<Vec<(GateId, usize)>> = vec![Vec::new(); self.signals.len()];
        for (gid, gate) in self.gates() {
            for (pin, &sig) in gate.inputs.iter().enumerate() {
                fo[sig.index()].push((gid, pin));
            }
        }
        fo
    }

    /// Logic depth of every gate (longest path from any primary input,
    /// inputs have depth 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut sig_level = vec![0u32; self.signals.len()];
        let mut gate_level = vec![0u32; self.gates.len()];
        for (gid, gate) in self.gates() {
            let lvl = gate
                .inputs
                .iter()
                .map(|s| sig_level[s.index()])
                .max()
                .unwrap_or(0)
                + 1;
            gate_level[gid.index()] = lvl;
            sig_level[gate.output.index()] = lvl;
        }
        gate_level
    }

    /// Maximum logic depth.
    pub fn depth(&self) -> u32 {
        self.levels().into_iter().max().unwrap_or(0)
    }

    /// Back-annotates every gate's output load from `library`:
    /// `C_j = wire_cap + Σ (input-pin caps of fanout pins) + output_load`
    /// (the last term only for primary outputs). This is the paper's
    /// "input capacitances of fan-out gates were used as load capacitances
    /// for the driving ones".
    pub fn annotate_loads(&mut self, library: &Library) {
        let fo = self.fanouts();
        let is_output: Vec<bool> = {
            let mut v = vec![false; self.signals.len()];
            for &o in &self.outputs {
                v[o.index()] = true;
            }
            v
        };
        for i in 0..self.gates.len() {
            let out = self.gates[i].output;
            let mut load = library.wire_cap();
            for &(gid, pin) in &fo[out.index()] {
                load += library.pin_cap(self.gates[gid.index()].kind, pin);
            }
            if is_output[out.index()] {
                load += library.output_load();
            }
            self.gates[i].load = load;
        }
    }

    /// Checks structural sanity.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::NoOutputs`] if no primary output is marked.
    /// * [`NetlistError::Undriven`] if a non-input signal has no driver
    ///   (cannot currently be constructed through the public API, but can
    ///   arrive through BLIF parsing).
    pub fn validate(&self) -> Result<(), NetlistError> {
        if self.outputs.is_empty() {
            return Err(NetlistError::NoOutputs);
        }
        let mut driven = vec![false; self.signals.len()];
        for &i in &self.inputs {
            driven[i.index()] = true;
        }
        for g in &self.gates {
            driven[g.output.index()] = true;
        }
        for (i, s) in self.signals.iter().enumerate() {
            if !driven[i] {
                return Err(NetlistError::Undriven(s.name.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_unit() -> Netlist {
        let mut n = Netlist::new("unit_u");
        let x1 = n.add_input("x1").expect("fresh");
        let x2 = n.add_input("x2").expect("fresh");
        let g1 = n.add_gate_named(CellKind::Inv, &[x1], "g1").expect("ok");
        let g2 = n.add_gate_named(CellKind::Inv, &[x2], "g2").expect("ok");
        let g3 = n
            .add_gate_named(CellKind::Or2, &[x1, x2], "g3")
            .expect("ok");
        n.mark_output(g1).expect("ok");
        n.mark_output(g2).expect("ok");
        n.mark_output(g3).expect("ok");
        n
    }

    #[test]
    fn build_and_inspect() {
        let n = paper_unit();
        assert_eq!(n.name(), "unit_u");
        assert_eq!(n.num_inputs(), 2);
        assert_eq!(n.num_gates(), 3);
        assert_eq!(n.num_signals(), 5);
        assert_eq!(n.outputs().len(), 3);
        assert!(n.validate().is_ok());
        assert_eq!(n.depth(), 1);
        assert_eq!(n.find_signal("g3").map(|s| n.signal_name(s)), Some("g3"));
        let g3 = n
            .driver(n.find_signal("g3").expect("exists"))
            .expect("driven");
        assert_eq!(n.gate(g3).kind(), CellKind::Or2);
        assert_eq!(n.gate(g3).inputs().len(), 2);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Netlist::new("t");
        n.add_input("a").expect("fresh");
        assert_eq!(
            n.add_input("a"),
            Err(NetlistError::DuplicateSignal("a".into()))
        );
    }

    #[test]
    fn arity_checked() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let err = n.add_gate(CellKind::Nand2, &[a]).expect_err("wrong arity");
        assert!(matches!(err, NetlistError::WrongArity { .. }));
    }

    #[test]
    fn unknown_signal_rejected() {
        let mut n = Netlist::new("t");
        let err = n
            .add_gate(CellKind::Inv, &[SignalId(7)])
            .expect_err("bogus id");
        assert!(matches!(err, NetlistError::UnknownSignal(_)));
        assert!(matches!(
            n.mark_output(SignalId(9)),
            Err(NetlistError::UnknownSignal(_))
        ));
    }

    #[test]
    fn no_outputs_fails_validation() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let _ = n.add_gate(CellKind::Inv, &[a]).expect("ok");
        assert_eq!(n.validate(), Err(NetlistError::NoOutputs));
    }

    #[test]
    fn fanout_and_levels() {
        let n = paper_unit();
        let fo = n.fanouts();
        let x1 = n.find_signal("x1").expect("exists");
        // x1 feeds g1 (pin 0) and g3 (pin 0).
        assert_eq!(fo[x1.index()].len(), 2);
        let levels = n.levels();
        assert!(levels.iter().all(|&l| l == 1));
    }

    #[test]
    fn load_annotation_from_library() {
        let mut n = paper_unit();
        let lib = Library::test_library();
        n.annotate_loads(&lib);
        // Every gate output is a primary output with no fanout gates:
        // load = wire + output_load.
        let expect = lib.wire_cap() + lib.output_load();
        for (_, g) in n.gates() {
            assert_eq!(g.load(), expect);
        }
        assert_eq!(n.total_load(), expect * 3.0);
    }

    #[test]
    fn load_annotation_counts_fanin_pins() {
        let mut n = Netlist::new("t");
        let a = n.add_input("a").expect("fresh");
        let inv = n.add_gate(CellKind::Inv, &[a]).expect("ok");
        let x1 = n.add_gate(CellKind::Xor2, &[inv, a]).expect("ok");
        n.mark_output(x1).expect("ok");
        let lib = Library::test_library();
        n.annotate_loads(&lib);
        let inv_gate = n.driver(inv).expect("driven");
        // inv drives one xor pin: wire (2) + xor pin (9) = 11.
        assert_eq!(n.gate(inv_gate).load(), Capacitance(11.0));
    }

    #[test]
    fn manual_load_override() {
        let mut n = paper_unit();
        let g = n
            .driver(n.find_signal("g1").expect("exists"))
            .expect("driven");
        n.set_gate_load(g, Capacitance(40.0));
        assert_eq!(n.gate(g).load(), Capacitance(40.0));
    }

    #[test]
    fn error_display() {
        let e = NetlistError::WrongArity {
            cell: CellKind::Nand2,
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("nand2"));
        assert!(NetlistError::NoOutputs.to_string().contains("output"));
    }
}
