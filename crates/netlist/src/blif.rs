//! BLIF (Berkeley Logic Interchange Format) reader and writer.
//!
//! The reader accepts the subset used by the MCNC'91 combinational
//! benchmarks: `.model`, `.inputs`, `.outputs`, `.names` (PLA covers),
//! `.gate` (mapped cells of our [`Library`](crate::Library) with formal
//! pins `a b c d` and output `O`), line continuations with `\`, and `#`
//! comments. `.names` nodes are decomposed into library gates through
//! [`synthesize_sop`](crate::sop), so a parsed model is
//! always a mapped gate-level netlist ready for capacitance
//! back-annotation.
//!
//! The writer emits `.gate` lines, which the reader accepts — round-trips
//! preserve logic, structure and gate count.

use crate::library::CellKind;
use crate::netlist::{Netlist, NetlistError, SignalId};
use crate::sop::{synthesize_sop, Cube, Sop};
use std::collections::{HashMap, HashSet};
use std::error::Error;
use std::fmt;

/// Errors produced by the BLIF reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlifError {
    /// A directive was malformed. Carries the 1-based line number and a
    /// description.
    Syntax(usize, String),
    /// The model drives a signal from two different nodes.
    MultipleDrivers(String),
    /// A signal is used but never defined.
    Undefined(String),
    /// Node definitions form a combinational cycle.
    Cycle(String),
    /// A constant node (empty or tautological cover) was encountered;
    /// the gate-level golden model cannot express constants.
    Constant(String),
    /// A `.gate` referenced a cell outside the library.
    UnknownCell(String),
    /// Construction of the netlist failed.
    Netlist(NetlistError),
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlifError::Syntax(line, msg) => write!(f, "line {line}: {msg}"),
            BlifError::MultipleDrivers(s) => write!(f, "signal `{s}` has multiple drivers"),
            BlifError::Undefined(s) => write!(f, "signal `{s}` is used but never defined"),
            BlifError::Cycle(s) => write!(f, "combinational cycle through `{s}`"),
            BlifError::Constant(s) => {
                write!(f, "node `{s}` is constant; constants are not supported")
            }
            BlifError::UnknownCell(c) => write!(f, "unknown library cell `{c}`"),
            BlifError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for BlifError {}

impl From<NetlistError> for BlifError {
    fn from(e: NetlistError) -> Self {
        BlifError::Netlist(e)
    }
}

#[derive(Debug)]
enum NodeDef {
    Names { inputs: Vec<String>, sop: Sop },
    Gate { cell: CellKind, inputs: Vec<String> },
}

#[derive(Debug, Default)]
struct RawModel {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    /// output name → definition
    nodes: Vec<(String, NodeDef)>,
}

/// Parses BLIF text into a mapped gate-level [`Netlist`].
///
/// # Errors
///
/// See [`BlifError`]. Latch directives (`.latch`) are rejected — the golden
/// model is combinational.
///
/// # Examples
///
/// ```
/// use charfree_netlist::blif;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let text = "\
/// .model and_or
/// .inputs a b c
/// .outputs f
/// .names a b t
/// 11 1
/// .names t c f
/// 1- 1
/// -1 1
/// .end
/// ";
/// let netlist = blif::parse(text)?;
/// assert_eq!(netlist.num_inputs(), 3);
/// assert_eq!(netlist.outputs().len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(text: &str) -> Result<Netlist, BlifError> {
    let raw = tokenize(text)?;
    elaborate(raw)
}

fn tokenize(text: &str) -> Result<RawModel, BlifError> {
    // Join continuation lines, strip comments.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(p) => &line[..p],
            None => line,
        };
        let trimmed = line.trim_end();
        let (content, cont) = match trimmed.strip_suffix('\\') {
            Some(c) => (c, true),
            None => (trimmed, false),
        };
        if pending.is_empty() {
            pending_line = idx + 1;
        }
        pending.push_str(content);
        pending.push(' ');
        if !cont {
            let full = pending.trim().to_owned();
            if !full.is_empty() {
                logical.push((pending_line, full));
            }
            pending.clear();
        }
    }
    if !pending.trim().is_empty() {
        logical.push((pending_line, pending.trim().to_owned()));
    }

    let mut model = RawModel::default();
    // A `.names` block being accumulated: (first line number, signals,
    // cubes seen so far, output polarity once known).
    type NamesBlock = (usize, Vec<String>, Vec<Cube>, Option<bool>);
    let mut current_names: Option<NamesBlock> = None;

    fn flush_names(
        model: &mut RawModel,
        current: &mut Option<NamesBlock>,
    ) -> Result<(), BlifError> {
        if let Some((line, mut sigs, cubes, polarity)) = current.take() {
            let Some(output) = sigs.pop() else {
                return Err(BlifError::Syntax(line, ".names without signals".into()));
            };
            if cubes.is_empty() {
                return Err(BlifError::Constant(output));
            }
            let sop = Sop {
                num_inputs: sigs.len(),
                cubes,
                polarity: polarity.unwrap_or(true),
            };
            if sop.num_inputs == 0 {
                return Err(BlifError::Constant(output));
            }
            model
                .nodes
                .push((output, NodeDef::Names { inputs: sigs, sop }));
        }
        Ok(())
    }

    for (line_no, line) in logical {
        if let Some(rest) = line.strip_prefix('.') {
            flush_names(&mut model, &mut current_names)?;
            let mut words = rest.split_whitespace();
            let directive = words.next().unwrap_or("");
            match directive {
                "model" => {
                    model.name = words.next().unwrap_or("unnamed").to_owned();
                }
                "inputs" => model.inputs.extend(words.map(str::to_owned)),
                "outputs" => model.outputs.extend(words.map(str::to_owned)),
                "names" => {
                    let sigs: Vec<String> = words.map(str::to_owned).collect();
                    if sigs.is_empty() {
                        return Err(BlifError::Syntax(line_no, ".names without signals".into()));
                    }
                    current_names = Some((line_no, sigs, Vec::new(), None));
                }
                "gate" => {
                    let cell_name = words
                        .next()
                        .ok_or_else(|| BlifError::Syntax(line_no, ".gate without cell".into()))?;
                    let cell = CellKind::from_name(cell_name)
                        .ok_or_else(|| BlifError::UnknownCell(cell_name.to_owned()))?;
                    let mut pins: HashMap<String, String> = HashMap::new();
                    for w in words {
                        let (formal, actual) = w.split_once('=').ok_or_else(|| {
                            BlifError::Syntax(line_no, format!("bad pin binding `{w}`"))
                        })?;
                        pins.insert(formal.to_owned(), actual.to_owned());
                    }
                    let output = pins.remove("O").ok_or_else(|| {
                        BlifError::Syntax(line_no, ".gate missing output pin O".into())
                    })?;
                    let formal_names = ["a", "b", "c", "d"];
                    let mut inputs = Vec::with_capacity(cell.arity());
                    for formal in formal_names.iter().take(cell.arity()) {
                        let actual = pins.remove(*formal).ok_or_else(|| {
                            BlifError::Syntax(line_no, format!(".gate missing pin {formal}"))
                        })?;
                        inputs.push(actual);
                    }
                    if !pins.is_empty() {
                        return Err(BlifError::Syntax(
                            line_no,
                            format!(".gate has extra pins: {:?}", pins.keys()),
                        ));
                    }
                    model.nodes.push((output, NodeDef::Gate { cell, inputs }));
                }
                "end" => {}
                "latch" => {
                    return Err(BlifError::Syntax(
                        line_no,
                        "sequential models (.latch) are not supported".into(),
                    ));
                }
                // Ignore common benign directives.
                "default_input_arrival" | "default_output_required" | "exdc" => {}
                other => {
                    return Err(BlifError::Syntax(
                        line_no,
                        format!("unsupported directive `.{other}`"),
                    ));
                }
            }
        } else if let Some((_, ref sigs, ref mut cubes, ref mut polarity)) = current_names {
            let mut parts = line.split_whitespace();
            let num_inputs = sigs.len() - 1;
            let (cube_str, out_str) = if num_inputs == 0 {
                ("", parts.next().unwrap_or(""))
            } else {
                (parts.next().unwrap_or(""), parts.next().unwrap_or(""))
            };
            if parts.next().is_some() {
                return Err(BlifError::Syntax(
                    line_no,
                    "trailing tokens in cover".into(),
                ));
            }
            let cube = Cube::parse(cube_str)
                .filter(|c| c.0.len() == num_inputs)
                .ok_or_else(|| BlifError::Syntax(line_no, format!("bad cube `{cube_str}`")))?;
            let out = match out_str {
                "1" => true,
                "0" => false,
                other => {
                    return Err(BlifError::Syntax(
                        line_no,
                        format!("bad output value `{other}`"),
                    ));
                }
            };
            match polarity {
                None => *polarity = Some(out),
                Some(p) if *p == out => {}
                Some(_) => {
                    return Err(BlifError::Syntax(
                        line_no,
                        "mixed ON/OFF-set covers are not supported".into(),
                    ));
                }
            }
            cubes.push(cube);
        } else {
            return Err(BlifError::Syntax(
                line_no,
                format!("unexpected line `{line}`"),
            ));
        }
    }
    flush_names(&mut model, &mut current_names)?;
    Ok(model)
}

fn elaborate(raw: RawModel) -> Result<Netlist, BlifError> {
    // Index node definitions by output name; check single drivers.
    let mut def_index: HashMap<&str, usize> = HashMap::new();
    for (i, (out, _)) in raw.nodes.iter().enumerate() {
        if def_index.insert(out.as_str(), i).is_some() {
            return Err(BlifError::MultipleDrivers(out.clone()));
        }
        if raw.inputs.iter().any(|n| n == out) {
            return Err(BlifError::MultipleDrivers(out.clone()));
        }
    }

    let mut netlist = Netlist::new(raw.name.clone());
    let mut sig: HashMap<String, SignalId> = HashMap::new();
    for name in &raw.inputs {
        let id = netlist.add_input(name.clone())?;
        sig.insert(name.clone(), id);
    }

    // DFS topological elaboration.
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Visiting,
        Done,
    }
    let mut marks: HashMap<usize, Mark> = HashMap::new();

    fn visit(
        node: usize,
        raw: &RawModel,
        def_index: &HashMap<&str, usize>,
        marks: &mut HashMap<usize, Mark>,
        netlist: &mut Netlist,
        sig: &mut HashMap<String, SignalId>,
    ) -> Result<(), BlifError> {
        match marks.get(&node) {
            Some(Mark::Done) => return Ok(()),
            Some(Mark::Visiting) => {
                return Err(BlifError::Cycle(raw.nodes[node].0.clone()));
            }
            None => {}
        }
        marks.insert(node, Mark::Visiting);
        let (out_name, def) = &raw.nodes[node];
        let input_names: &[String] = match def {
            NodeDef::Names { inputs, .. } => inputs,
            NodeDef::Gate { inputs, .. } => inputs,
        };
        for name in input_names {
            if !sig.contains_key(name.as_str()) {
                match def_index.get(name.as_str()) {
                    Some(&dep) => {
                        visit(dep, raw, def_index, marks, netlist, sig)?;
                    }
                    None => return Err(BlifError::Undefined(name.clone())),
                }
            }
        }
        let input_ids: Vec<SignalId> = input_names.iter().map(|n| sig[n.as_str()]).collect();
        let out_id = match def {
            NodeDef::Names { sop, .. } => {
                let inner = synthesize_sop(netlist, sop, &input_ids)?;
                // Give the node's output signal its BLIF name via a rename:
                // synthesize_sop produced an internal name, so alias through
                // the signal map (power models only care about structure).
                inner
            }
            NodeDef::Gate { cell, .. } => {
                netlist.add_gate_named(*cell, &input_ids, out_name.clone())?
            }
        };
        sig.insert(out_name.clone(), out_id);
        marks.insert(node, Mark::Done);
        Ok(())
    }

    for i in 0..raw.nodes.len() {
        visit(i, &raw, &def_index, &mut marks, &mut netlist, &mut sig)?;
    }

    let mut seen_outputs: HashSet<&str> = HashSet::new();
    for out in &raw.outputs {
        if !seen_outputs.insert(out.as_str()) {
            continue;
        }
        let id = sig
            .get(out.as_str())
            .copied()
            .ok_or_else(|| BlifError::Undefined(out.clone()))?;
        netlist.mark_output(id)?;
    }
    netlist.validate()?;
    Ok(netlist)
}

/// Serializes a mapped netlist as BLIF `.gate` lines.
///
/// The output parses back through [`parse`] into a structurally identical
/// netlist.
///
/// # Examples
///
/// ```
/// use charfree_netlist::{blif, CellKind, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n = Netlist::new("tiny");
/// let a = n.add_input("a")?;
/// let inv = n.add_gate(CellKind::Inv, &[a])?;
/// n.mark_output(inv)?;
/// let text = blif::write(&n);
/// let back = blif::parse(&text)?;
/// assert_eq!(back.num_gates(), 1);
/// # Ok(())
/// # }
/// ```
pub fn write(netlist: &Netlist) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", netlist.name());
    let _ = write!(out, ".inputs");
    for &i in netlist.inputs() {
        let _ = write!(out, " {}", netlist.signal_name(i));
    }
    out.push('\n');
    let _ = write!(out, ".outputs");
    for &o in netlist.outputs() {
        let _ = write!(out, " {}", netlist.signal_name(o));
    }
    out.push('\n');
    let formals = ["a", "b", "c", "d"];
    for (_, gate) in netlist.gates() {
        let _ = write!(out, ".gate {}", gate.kind().name());
        for (pin, &s) in gate.inputs().iter().enumerate() {
            let _ = write!(out, " {}={}", formals[pin], netlist.signal_name(s));
        }
        let _ = writeln!(out, " O={}", netlist.signal_name(gate.output()));
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;

    fn eval(n: &Netlist, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; n.num_signals()];
        for (i, &sigid) in n.inputs().iter().enumerate() {
            values[sigid.index()] = inputs[i];
        }
        for (_, gate) in n.gates() {
            let ins: Vec<bool> = gate.inputs().iter().map(|s| values[s.index()]).collect();
            values[gate.output().index()] = gate.kind().eval(&ins);
        }
        n.outputs().iter().map(|o| values[o.index()]).collect()
    }

    const MAJORITY: &str = "\
# 3-input majority
.model maj3
.inputs a b c
.outputs m
.names a b c m
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parse_majority() {
        let n = parse(MAJORITY).expect("valid blif");
        assert_eq!(n.name(), "maj3");
        assert_eq!(n.num_inputs(), 3);
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let want = (asg[0] as u8 + asg[1] as u8 + asg[2] as u8) >= 2;
            assert_eq!(eval(&n, &asg)[0], want, "bits={bits:b}");
        }
    }

    #[test]
    fn parse_off_set_and_chained_names() {
        let text = "\
.model chain
.inputs a b
.outputs f
.names a b t
11 0
.names t f
0 1
.end
";
        // t = !(ab); f = !t = ab.
        let n = parse(text).expect("valid");
        for bits in 0..4u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0];
            assert_eq!(eval(&n, &asg)[0], asg[0] && asg[1]);
        }
    }

    #[test]
    fn out_of_order_definitions_are_sorted() {
        let text = "\
.model ooo
.inputs a b
.outputs f
.names t a f
11 1
.names a b t
-1 1
1- 1
.end
";
        let n = parse(text).expect("valid");
        // t = a + b, f = t & a = a.
        for bits in 0..4u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0];
            assert_eq!(eval(&n, &asg)[0], asg[0]);
        }
    }

    #[test]
    fn continuation_lines() {
        let text = ".model cont\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let n = parse(text).expect("valid");
        assert_eq!(n.num_inputs(), 2);
    }

    #[test]
    fn gate_lines_roundtrip() {
        let text = "\
.model gates
.inputs a b s
.outputs y
.gate mux2 a=s b=a c=b O=y
.end
";
        let n = parse(text).expect("valid");
        assert_eq!(n.num_gates(), 1);
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            let want = if asg[2] { asg[1] } else { asg[0] };
            assert_eq!(eval(&n, &asg)[0], want);
        }
        let text2 = write(&n);
        let n2 = parse(&text2).expect("round-trips");
        assert_eq!(n2.num_gates(), n.num_gates());
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert_eq!(eval(&n2, &asg), eval(&n, &asg));
        }
    }

    #[test]
    fn full_roundtrip_preserves_behavior_and_loads() {
        let n = parse(MAJORITY).expect("valid");
        let text = write(&n);
        let mut n2 = parse(&text).expect("round-trips");
        assert_eq!(n2.num_gates(), n.num_gates());
        let lib = Library::test_library();
        n2.annotate_loads(&lib);
        assert!(n2.total_load().femtofarads() > 0.0);
        for bits in 0..8u32 {
            let asg = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
            assert_eq!(eval(&n2, &asg), eval(&n, &asg));
        }
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            parse(".model m\n.inputs a\n.outputs f\n.names a f\n"),
            Err(BlifError::Constant(_))
        ));
        assert!(matches!(
            parse(".model m\n.inputs a\n.outputs f\n.latch a f\n"),
            Err(BlifError::Syntax(..))
        ));
        assert!(matches!(
            parse(".model m\n.inputs a\n.outputs f\n.names q f\n1 1\n.end"),
            Err(BlifError::Undefined(_))
        ));
        assert!(matches!(
            parse(".model m\n.inputs a\n.outputs f\n.names f f\n1 1\n.end"),
            Err(BlifError::Cycle(_))
        ));
        assert!(matches!(
            parse(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.names a f\n0 1\n.end"),
            Err(BlifError::MultipleDrivers(_))
        ));
        assert!(matches!(
            parse(".model m\n.inputs a\n.outputs f\n.gate bogus a=a O=f\n.end"),
            Err(BlifError::UnknownCell(_))
        ));
        assert!(matches!(
            parse(".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n00 0\n.end"),
            Err(BlifError::Syntax(..))
        ));
    }

    #[test]
    fn cycle_via_two_nodes_detected() {
        let text = "\
.model cyc
.inputs a
.outputs f
.names g a f
11 1
.names f a g
11 1
.end
";
        assert!(matches!(parse(text), Err(BlifError::Cycle(_))));
    }

    #[test]
    fn error_display_messages() {
        let e = BlifError::Syntax(3, "bad".into());
        assert!(e.to_string().contains("line 3"));
        assert!(BlifError::Undefined("x".into()).to_string().contains('x'));
    }
}
